//! Supervised end-to-end pipeline driver: runs the checkpointed flow,
//! prints the per-stage ledger (resume provenance, attempts, wall time,
//! solve/arc counters), and powers the CI kill-and-resume drill.
//!
//! Flags and environment hooks:
//!
//! - `--fast` — reduced grids and uncore (CI smoke; default is the paper's
//!   full configuration with caching under `data/`).
//! - `--bench` — measure a cold run vs. a fully resumed run in a scratch
//!   cache and write `BENCH_flow.json` at the repo root.
//! - `--audit=off|warn|gate` (or `--audit <policy>`) — audit-firewall
//!   policy; overrides `CRYO_AUDIT` (default `warn`).
//! - `--audit-report <path>` — dump the machine-readable audit report as
//!   JSON: the pipeline's accumulated findings/repairs on success, or the
//!   terminal finding list when the run dies with an audit failure.
//! - `--surrogate[=<spec>]` (or `--surrogate <spec>`) — predict the cold
//!   corner with the learned surrogate instead of SPICE-characterizing it;
//!   bare `--surrogate` means `predict:0.75`, otherwise `<spec>` is any
//!   `CRYO_SURROGATE` value (`off` or `predict:<max_rel_err>`).
//! - `--surrogate-report <path>` — dump the surrogate summary (model hash,
//!   residual stats, per-cell fallback decisions) as JSON after a
//!   successful predicted run.
//! - `CRYO_KILL_AFTER_STAGE=<stage>` — checkpoint through `<stage>`, then
//!   die by SIGKILL (a real crash: no destructors, no flushing), leaving
//!   the pipeline store behind for the next invocation to resume.
//! - `CRYO_EXPECT_RESUMED_THROUGH=<stage>` — after the run, assert every
//!   stage up to and including `<stage>` was loaded from its checkpoint
//!   with zero re-simulation; exit non-zero otherwise.

use std::time::Instant;

use cryo_cells::SurrogateSummary;
use cryo_core::supervise::{PipelineReport, Stage, Supervisor, SupervisorConfig};
use cryo_core::{AuditPolicy, CoreError, CryoFlow, FlowConfig, SurrogatePolicy};
use cryo_liberty::AuditReport;

/// Value of `--name=<v>` or `--name <v>`, if present.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let prefix = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == name {
            return args.get(i + 1).cloned();
        }
    }
    None
}

fn write_audit_report(path: &str, audit: &AuditReport) {
    let json = serde_json::to_string(audit).expect("audit report serializes");
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write audit report {path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "wrote audit report to {path} ({} finding(s), {} repaired)",
        audit.findings.len(),
        audit.repaired.len()
    );
}

/// `--surrogate[=<spec>]` / `--surrogate <spec>`; a bare flag means
/// `predict:0.75`. Returns `None` when the flag is absent.
fn surrogate_spec() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut spec = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--surrogate=") {
            spec = Some(v.to_string());
        } else if a == "--surrogate" {
            spec = Some(match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => "predict:0.75".to_string(),
            });
        }
    }
    spec
}

fn write_surrogate_report(path: &str, summary: Option<&SurrogateSummary>) {
    let json = serde_json::to_string(&summary.cloned()).expect("surrogate summary serializes");
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write surrogate report {path}: {e}");
        std::process::exit(2);
    });
    match summary {
        Some(s) => eprintln!(
            "wrote surrogate report to {path} (model {}, {} predicted, {} fallback(s))",
            s.model_hash,
            s.predicted,
            s.fallbacks.len()
        ),
        None => eprintln!("wrote surrogate report to {path} (surrogate off: null)"),
    }
}

fn stage_by_name(name: &str) -> Stage {
    Stage::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
            eprintln!("unknown stage `{name}`; expected one of {known:?}");
            std::process::exit(2);
        })
}

fn print_ledger(rep: &PipelineReport, wall_s: f64) {
    println!("=== supervised flow: pipeline {} ===", rep.pipeline_key);
    println!("{:<12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>10}",
        "stage", "resumed", "attempts", "wall(s)", "dc", "tran", "arc_evals");
    for r in &rep.stages {
        println!(
            "{:<12} {:>8} {:>9} {:>10.3} {:>9} {:>9} {:>10}",
            r.stage.name(),
            if r.from_checkpoint { "yes" } else { "no" },
            r.attempts,
            r.wall_s,
            r.dc_solves,
            r.tran_solves,
            r.arc_evals
        );
    }
    println!("total wall: {wall_s:.3} s, completed: {}", rep.completed);
    if let Some(v) = &rep.verdict {
        println!(
            "verdict: fmax {:.0} MHz (300 K) -> {:.0} MHz (10 K), {:.1} mW @ 10 K \
             (cooling budget {}), kNN {:.1} us ({} decoherence), degraded arcs {}/{}",
            v.fmax_300_hz / 1e6,
            v.fmax_10_hz / 1e6,
            v.total_power_10k_w * 1e3,
            if v.fits_cooling_budget { "OK" } else { "EXCEEDED" },
            v.knn_classify_s * 1e6,
            if v.within_decoherence { "inside" } else { "OUTSIDE" },
            v.degraded_arcs_300,
            v.degraded_arcs_10,
        );
    }
}

fn run(
    sup: &Supervisor,
    audit_report: Option<&str>,
    surrogate_report: Option<&str>,
) -> (PipelineReport, f64) {
    let t = Instant::now();
    match sup.run() {
        Ok(rep) => {
            if let Some(path) = audit_report {
                write_audit_report(path, &rep.audit);
            }
            if let Some(path) = surrogate_report {
                write_surrogate_report(path, rep.surrogate.as_ref());
            }
            (rep, t.elapsed().as_secs_f64())
        }
        Err(e) => {
            if let (Some(path), CoreError::AuditFailed { report, .. }) = (audit_report, &e) {
                write_audit_report(path, report);
            }
            eprintln!("supervised flow failed: {e}");
            std::process::exit(1);
        }
    }
}

fn bench(fast: bool) {
    // Cold vs. resumed wall time in a scratch cache: the resume contract's
    // headline number. Uses the fast configuration unless the caller
    // explicitly asked for the paper's full grids.
    let dir = std::env::temp_dir().join(format!("cryo_flow_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = if fast {
        FlowConfig::fast(&dir)
    } else {
        FlowConfig::full(&dir)
    };
    let sup = Supervisor::new(CryoFlow::new(cfg), SupervisorConfig::default());
    let (cold_rep, cold_s) = run(&sup, None, None);
    print_ledger(&cold_rep, cold_s);
    let (res_rep, resumed_s) = run(&sup, None, None);
    print_ledger(&res_rep, resumed_s);
    assert!(res_rep.stages.iter().all(|r| r.from_checkpoint));
    let stages: Vec<String> = cold_rep
        .stages
        .iter()
        .map(|r| format!("{{ \"stage\": \"{}\", \"cold_s\": {:.6} }}", r.stage.name(), r.wall_s))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"flow_supervised\",\n  \"description\": \"Supervised end-to-end \
         pipeline ({} config), cold run vs. fully checkpoint-resumed run in a fresh cache, \
         via `cargo run --release -p cryo-bench --bin flow_supervised -- {}--bench`.\",\n  \
         \"cold_s\": {cold_s:.3},\n  \"resumed_s\": {resumed_s:.3},\n  \
         \"cold_over_resumed\": {:.1},\n  \"cold_stage_breakdown\": [\n    {}\n  ]\n}}\n",
        if fast { "fast" } else { "full" },
        if fast { "--fast " } else { "" },
        cold_s / resumed_s.max(1e-9),
        stages.join(",\n    ")
    );
    std::fs::write("BENCH_flow.json", json).expect("write BENCH_flow.json");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("wrote BENCH_flow.json (cold {cold_s:.3} s, resumed {resumed_s:.3} s)");
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    if std::env::args().any(|a| a == "--bench") {
        bench(fast);
        return;
    }
    let kill_after = std::env::var("CRYO_KILL_AFTER_STAGE")
        .ok()
        .map(|n| stage_by_name(&n));
    let mut cfg = if fast {
        FlowConfig::fast("data")
    } else {
        let mut cfg = FlowConfig::full("data");
        cfg.char_300k.progress = true;
        cfg.char_10k.progress = true;
        cfg
    };
    if let Some(p) = arg_value("--audit") {
        cfg.audit_policy = AuditPolicy::parse(&p).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(spec) = surrogate_spec() {
        cfg.surrogate_policy = SurrogatePolicy::parse(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    let audit_report = arg_value("--audit-report");
    let surrogate_report = arg_value("--surrogate-report");
    let sup = Supervisor::new(
        CryoFlow::new(cfg),
        SupervisorConfig {
            halt_after: kill_after,
            ..SupervisorConfig::default()
        },
    );
    let (rep, wall_s) = run(&sup, audit_report.as_deref(), surrogate_report.as_deref());
    print_ledger(&rep, wall_s);
    if !rep.audit.is_clean() {
        println!("audit: {}", rep.audit.summary());
    }
    if let Some(s) = &rep.surrogate {
        println!(
            "surrogate: model {}, {} cell(s) predicted, {} SPICE fallback(s){}{}",
            s.model_hash,
            s.predicted,
            s.fallbacks.len(),
            if s.fallbacks.is_empty() { "" } else { ": " },
            s.fallbacks.join(", ")
        );
    }

    if let Some(stage) = kill_after {
        // Die the hard way: the checkpoint files on disk are all the next
        // run gets, exactly like a crashed or OOM-killed job.
        println!("checkpointed through {}; sending SIGKILL to self", stage.name());
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        // If `kill` is unavailable we still honor the contract of "did
        // not finish cleanly".
        std::process::exit(137);
    }

    if let Ok(name) = std::env::var("CRYO_EXPECT_RESUMED_THROUGH") {
        let through = stage_by_name(&name);
        let upto = Stage::ALL.iter().position(|s| *s == through).unwrap();
        for r in &rep.stages[..=upto] {
            if !r.from_checkpoint || r.dc_solves + r.tran_solves + r.arc_evals != 0 {
                eprintln!(
                    "stage {} was NOT resumed from checkpoint (resumed={}, dc={}, tran={}, \
                     arc_evals={})",
                    r.stage.name(),
                    r.from_checkpoint,
                    r.dc_solves,
                    r.tran_solves,
                    r.arc_evals
                );
                std::process::exit(1);
            }
        }
        println!(
            "resume verified: stages through {} replayed from checkpoints with zero re-simulation",
            through.name()
        );
    }
}
