//! Switching-activity sources: gate-level toggle simulation and
//! region-based activity profiles.

use std::collections::HashMap;

use cryo_liberty::Library;
use cryo_netlist::design::{Design, DriverRef};

use crate::{PowerError, Result};

/// Per-net toggle counts from a logic simulation.
#[derive(Debug, Clone)]
pub struct ToggleCounts {
    /// Toggles per net over the simulated window.
    pub toggles: Vec<u64>,
    /// Number of clock cycles simulated.
    pub cycles: u64,
}

impl ToggleCounts {
    /// Average toggles per cycle for a net.
    #[must_use]
    pub fn activity(&self, net: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[net] as f64 / self.cycles as f64
        }
    }

    /// Mean activity across all nets.
    #[must_use]
    pub fn mean_activity(&self) -> f64 {
        if self.toggles.is_empty() || self.cycles == 0 {
            return 0.0;
        }
        self.toggles.iter().sum::<u64>() as f64 / (self.toggles.len() as f64 * self.cycles as f64)
    }
}

/// Cycle-based gate-level logic simulation counting net toggles.
///
/// Per cycle: primary inputs take the next vector, combinational logic
/// settles (topological evaluation), flip-flops then capture their `D`
/// values. Toggles are counted on every net, including flip-flop outputs
/// and a double count on the clock nets (rise + fall per cycle).
///
/// # Errors
///
/// - [`PowerError::VectorWidth`] if vectors do not match the primary inputs.
/// - [`PowerError::UnmappedCell`] / [`PowerError::MissingFunction`] for
///   library holes.
pub fn simulate_toggles(
    design: &Design,
    lib: &Library,
    vectors: &[Vec<bool>],
) -> Result<ToggleCounts> {
    let n_nets = design.net_count();
    let n_pi = design.primary_inputs.len();
    for v in vectors {
        if v.len() != n_pi {
            return Err(PowerError::VectorWidth {
                expected: n_pi,
                got: v.len(),
            });
        }
    }
    let conn = design.connectivity();

    // Topological order of combinational instances (registers break cycles).
    let mut is_seq = vec![false; design.instances().len()];
    for (i, inst) in design.instances().iter().enumerate() {
        let cell = lib.cell(&inst.cell).map_err(|_| PowerError::UnmappedCell {
            instance: inst.name.clone(),
            cell: inst.cell.clone(),
        })?;
        is_seq[i] = cell.is_sequential();
    }
    let comb_driver_of = |net: usize| -> Option<usize> {
        conn.drivers[net].iter().find_map(|d| match d {
            DriverRef::Cell { instance, .. } if !is_seq[*instance] => Some(*instance),
            _ => None,
        })
    };
    let n_inst = design.instances().len();
    let mut indegree = vec![0usize; n_inst];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (i, inst) in design.instances().iter().enumerate() {
        if is_seq[i] {
            continue;
        }
        for (_, net) in &inst.inputs {
            if let Some(src) = comb_driver_of(*net) {
                indegree[i] += 1;
                fanout[src].push(i);
            }
        }
    }
    let mut order: Vec<usize> = (0..n_inst)
        .filter(|&i| !is_seq[i] && indegree[i] == 0)
        .collect();
    let mut head = 0;
    while head < order.len() {
        let i = order[head];
        head += 1;
        for &nx in &fanout[i] {
            indegree[nx] -= 1;
            if indegree[nx] == 0 {
                order.push(nx);
            }
        }
    }

    let mut values = vec![false; n_nets];
    let mut ff_state: HashMap<usize, bool> = HashMap::new();
    let mut toggles = vec![0u64; n_nets];

    let eval_inst = |i: usize, values: &[bool], lib: &Library| -> Result<Vec<(usize, bool)>> {
        let inst = &design.instances()[i];
        let cell = lib.cell(&inst.cell).expect("checked earlier");
        let mut outs = Vec::new();
        for (pin, net) in &inst.outputs {
            let f = cell
                .pin(pin)
                .and_then(|p| p.function.clone())
                .ok_or_else(|| PowerError::MissingFunction {
                    instance: inst.name.clone(),
                    pin: pin.clone(),
                })?;
            let mut bits = 0u16;
            for (bi, fname) in f.inputs().iter().enumerate() {
                if let Some((_, in_net)) = inst.inputs.iter().find(|(p, _)| p == fname) {
                    if values[*in_net] {
                        bits |= 1 << bi;
                    }
                }
            }
            outs.push((*net, f.eval(bits)));
        }
        Ok(outs)
    };

    for vector in vectors {
        // Apply inputs.
        for (k, &pi) in design.primary_inputs.iter().enumerate() {
            if values[pi] != vector[k] {
                toggles[pi] += 1;
                values[pi] = vector[k];
            }
        }
        // Clock toggles twice per cycle.
        if let Some(clk) = design.clock {
            toggles[clk] += 2;
        }
        // Settle combinational logic.
        for &i in &order {
            for (net, v) in eval_inst(i, &values, lib)? {
                if values[net] != v {
                    toggles[net] += 1;
                    values[net] = v;
                }
            }
        }
        // Macro outputs: pseudo-random data pattern toggling half the bits
        // per access keeps downstream logic active (macro contents are not
        // logically modelled).
        // (Deterministic: flip alternating outputs every cycle.)
        for (mi, m) in design.macros().iter().enumerate() {
            for (k, &net) in m.outputs.iter().enumerate() {
                if (k + mi) % 2 == 0 {
                    values[net] = !values[net];
                    toggles[net] += 1;
                }
            }
        }
        // Register capture at the clock edge.
        let mut captured: Vec<(usize, bool)> = Vec::new();
        for (i, inst) in design.instances().iter().enumerate() {
            if !is_seq[i] {
                continue;
            }
            let cell = lib.cell(&inst.cell).expect("checked earlier");
            let ff = cell.ff.as_ref().expect("sequential cell has ff view");
            let d_val = inst
                .inputs
                .iter()
                .find(|(p, _)| *p == ff.next_state)
                .is_some_and(|(_, n)| values[*n]);
            // Active-low clear forces zero.
            let cleared = ff.clear.as_ref().is_some_and(|rn| {
                inst.inputs
                    .iter()
                    .find(|(p, _)| p == rn)
                    .is_some_and(|(_, n)| !values[*n])
            });
            let q = ff_state.entry(i).or_insert(false);
            let new_q = if cleared { false } else { d_val };
            if *q != new_q {
                *q = new_q;
                for (_, net) in &inst.outputs {
                    captured.push((*net, new_q));
                }
            }
        }
        for (net, v) in captured {
            if values[net] != v {
                toggles[net] += 1;
                values[net] = v;
            }
        }
        // Re-settle after the edge so downstream logic sees new Q values.
        for &i in &order {
            for (net, v) in eval_inst(i, &values, lib)? {
                if values[net] != v {
                    toggles[net] += 1;
                    values[net] = v;
                }
            }
        }
    }

    Ok(ToggleCounts {
        toggles,
        cycles: vectors.len() as u64,
    })
}

/// Per-region switching activity for the scalable power path.
///
/// `alpha(region)` is the average toggles-per-cycle of a net inside the
/// region; `sram_reads_per_cycle(macro)` counts accesses. The `cryo-core`
/// flow fills these from the RISC-V pipeline model's per-block utilization
/// for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    region_alpha: HashMap<String, f64>,
    macro_access: HashMap<String, f64>,
    /// Activity applied to regions not explicitly listed.
    pub default_alpha: f64,
}

impl ActivityProfile {
    /// Empty profile with a default activity.
    #[must_use]
    pub fn with_default(default_alpha: f64) -> Self {
        Self {
            region_alpha: HashMap::new(),
            macro_access: HashMap::new(),
            default_alpha,
        }
    }

    /// Set a region's toggles-per-cycle.
    pub fn set_region(&mut self, region: &str, alpha: f64) -> &mut Self {
        self.region_alpha.insert(region.to_string(), alpha);
        self
    }

    /// Set a macro's accesses-per-cycle.
    pub fn set_macro_access(&mut self, name: &str, per_cycle: f64) -> &mut Self {
        self.macro_access.insert(name.to_string(), per_cycle);
        self
    }

    /// Activity for a region.
    #[must_use]
    pub fn alpha(&self, region: &str) -> f64 {
        // The clock network toggles every cycle regardless of workload.
        if region == "clock" {
            return *self.region_alpha.get(region).unwrap_or(&2.0);
        }
        *self.region_alpha.get(region).unwrap_or(&self.default_alpha)
    }

    /// Accesses-per-cycle for a macro (by name prefix match). When several
    /// prefixes match, the longest wins (ties broken lexicographically) so
    /// the answer never depends on hash-map iteration order.
    #[must_use]
    pub fn macro_accesses(&self, name: &str) -> f64 {
        self.macro_access
            .iter()
            .filter(|(k, _)| name.starts_with(k.as_str()))
            .max_by(|(ka, _), (kb, _)| ka.len().cmp(&kb.len()).then_with(|| kb.cmp(ka)))
            .map_or(0.0, |(_, v)| *v)
    }

    /// All explicit region activities, sorted by region name. The stable
    /// order makes the profile checkpointable: serialize these pairs, then
    /// rebuild with [`ActivityProfile::set_region`].
    #[must_use]
    pub fn regions_sorted(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .region_alpha
            .iter()
            .map(|(k, a)| (k.clone(), *a))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All explicit macro access rates, sorted by prefix.
    #[must_use]
    pub fn macro_accesses_sorted(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .macro_access
            .iter()
            .map(|(k, a)| (k.clone(), *a))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Scale every explicit region activity by `factor` (calibration knob).
    pub fn scale(&mut self, factor: f64) {
        for v in self.region_alpha.values_mut() {
            if v.is_finite() {
                *v *= factor;
            }
        }
        self.default_alpha *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_defaults_and_overrides() {
        let mut p = ActivityProfile::with_default(0.1);
        p.set_region("alu", 0.4);
        p.set_macro_access("l1d", 0.3);
        assert_eq!(p.alpha("alu"), 0.4);
        assert_eq!(p.alpha("random"), 0.1);
        assert_eq!(p.alpha("clock"), 2.0);
        assert_eq!(p.macro_accesses("l1d_data"), 0.3);
        assert_eq!(p.macro_accesses("l2_bank0"), 0.0);
    }

    #[test]
    fn sorted_views_round_trip_and_prefix_match_is_deterministic() {
        let mut p = ActivityProfile::with_default(0.1);
        p.set_region("ifu", 0.3).set_region("alu", 0.4);
        p.set_macro_access("l1", 0.2).set_macro_access("l1d", 0.5);
        assert_eq!(
            p.regions_sorted(),
            vec![("alu".to_string(), 0.4), ("ifu".to_string(), 0.3)]
        );
        assert_eq!(
            p.macro_accesses_sorted(),
            vec![("l1".to_string(), 0.2), ("l1d".to_string(), 0.5)]
        );
        // Both "l1" and "l1d" prefix-match "l1d_bank0"; the longest wins,
        // independent of hash-map iteration order.
        assert_eq!(p.macro_accesses("l1d_bank0"), 0.5);
        assert_eq!(p.macro_accesses("l1i_bank0"), 0.2);
        // Rebuilding from the sorted views reproduces the profile.
        let mut q = ActivityProfile::with_default(p.default_alpha);
        for (r, a) in p.regions_sorted() {
            q.set_region(&r, a);
        }
        for (m, a) in p.macro_accesses_sorted() {
            q.set_macro_access(&m, a);
        }
        assert_eq!(p, q);
    }

    #[test]
    fn scaling_preserves_structure() {
        let mut p = ActivityProfile::with_default(0.1);
        p.set_region("alu", 0.4);
        p.scale(0.5);
        assert!((p.alpha("alu") - 0.2).abs() < 1e-12);
        assert!((p.default_alpha - 0.05).abs() < 1e-12);
    }
}
