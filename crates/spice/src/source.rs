//! Independent source waveform descriptions.

/// Waveform of an independent voltage source.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Constant value, volts.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial level, volts.
        v0: f64,
        /// Pulsed level, volts.
        v1: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time (0 → 1 transition), seconds.
        rise: f64,
        /// Fall time (1 → 0 transition), seconds.
        fall: f64,
        /// Pulse width at `v1`, seconds.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear waveform: `(time, value)` points sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Source {
    /// Constant source.
    #[must_use]
    pub fn dc(value: f64) -> Self {
        Source::Dc(value)
    }

    /// A single rising or falling ramp from `v_from` to `v_to`, starting at
    /// `t0` and lasting `slew_time` seconds — the canonical characterization
    /// stimulus.
    #[must_use]
    pub fn ramp(v_from: f64, v_to: f64, t0: f64, slew_time: f64) -> Self {
        Source::Pwl(vec![(0.0, v_from), (t0, v_from), (t0 + slew_time, v_to)])
    }

    /// Evaluate the source at time `t` (seconds).
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Source::Dc(v) => *v,
            Source::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let tp = if period.is_finite() && *period > 0.0 {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if tp < *rise {
                    v0 + (v1 - v0) * tp / rise.max(1e-18)
                } else if tp < rise + width {
                    *v1
                } else if tp < rise + width + fall {
                    v1 + (v0 - v1) * (tp - rise - width) / fall.max(1e-18)
                } else {
                    *v0
                }
            }
            Source::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|p| p.0 < t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0).max(1e-18)
            }
        }
    }

    /// Value at `t = 0`, used as the DC operating-point level.
    #[must_use]
    pub fn initial(&self) -> f64 {
        self.value(0.0)
    }

    /// Latest time at which the waveform still changes (used to pick
    /// transient windows); `None` for DC.
    #[must_use]
    pub fn last_event(&self) -> Option<f64> {
        match self {
            Source::Dc(_) => None,
            Source::Pulse {
                delay,
                rise,
                width,
                fall,
                ..
            } => Some(delay + rise + width + fall),
            Source::Pwl(points) => points.last().map(|p| p.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let s = Source::dc(0.7);
        assert_eq!(s.value(0.0), 0.7);
        assert_eq!(s.value(1.0), 0.7);
        assert_eq!(s.last_event(), None);
    }

    #[test]
    fn ramp_interpolates() {
        let s = Source::ramp(0.0, 0.7, 1e-9, 2e-9);
        assert_eq!(s.value(0.0), 0.0);
        assert_eq!(s.value(1e-9), 0.0);
        assert!((s.value(2e-9) - 0.35).abs() < 1e-12);
        assert_eq!(s.value(4e-9), 0.7);
        assert!((s.last_event().unwrap() - 3e-9).abs() < 1e-18);
    }

    #[test]
    fn pulse_shape() {
        let s = Source::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.5,
            width: 2.0,
            period: f64::INFINITY,
        };
        assert_eq!(s.value(0.5), 0.0);
        assert!((s.value(1.25) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(2.0), 1.0);
        assert!((s.value(3.75) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(5.0), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let s = Source::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.4,
            period: 1.0,
        };
        assert!((s.value(0.25) - s.value(1.25)).abs() < 1e-12);
        assert!((s.value(0.75) - s.value(2.75)).abs() < 1e-12);
    }

    #[test]
    fn pwl_clamps_outside_range() {
        let s = Source::Pwl(vec![(1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(s.value(0.0), 2.0);
        assert_eq!(s.value(3.0), 4.0);
        assert!((s.value(1.5) - 3.0).abs() < 1e-12);
    }
}
