//! The cryostat-power scenario (the paper's Sec. VII discussion): explore
//! frequency scaling and burst duty-cycling against the 100 mW cooling
//! budget at 10 K.
//!
//! Run with: `cargo run --release --example power_budget_explorer`

use cryo_soc::core::flow::COOLING_BUDGET_10K;
use cryo_soc::core::{CryoFlow, FlowConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = CryoFlow::new(FlowConfig::fast("data"));
    let lib300 = flow.library(300.0)?;
    let lib10 = flow.library(10.0)?;
    let design = flow.soc();
    let mean300 = lib300.stats().mean_delay;
    let t300 = flow.timing(&design, &lib300, mean300)?;
    let t10 = flow.timing(&design, &lib10, mean300)?;
    println!(
        "SoC: {} cells; fmax {:.0} MHz @300K, {:.0} MHz @10K",
        design.cell_count(),
        t300.fmax() / 1e6,
        t10.fmax() / 1e6
    );

    // Workload activity (kNN), calibrated at the 300 K anchor.
    let knn = flow.run_workload(Workload::Knn { n: 27 })?;
    let base = flow.activity_profile(&knn.stats);
    let scale = flow.calibrate_activity_scale(&design, &lib300, &base, t300.fmax())?;
    let mut profile = base;
    profile.scale(scale);

    // --- 1. Frequency scaling at 10 K. ------------------------------------
    println!(
        "\nfrequency scaling at 10 K (budget {:.0} mW):",
        COOLING_BUDGET_10K * 1e3
    );
    println!("{:>10} {:>12} {:>10}", "clock", "total power", "fits?");
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let f = t10.fmax() * frac;
        let p = flow.power(&design, &lib10, &profile, f)?;
        println!(
            "{:>7.0} MHz {:>9.1} mW {:>10}",
            f / 1e6,
            p.total() * 1e3,
            if p.fits_budget(COOLING_BUDGET_10K) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // --- 2. Burst duty-cycling (Sec. VII: "short but high-power bursts"). --
    // Average power = duty × active + (1 − duty) × idle, where idle keeps
    // only the clock tree and leakage alive.
    let active = flow.power(&design, &lib10, &profile, t10.fmax())?;
    let mut idle_profile = flow.activity_profile(&knn.stats);
    idle_profile.scale(0.0); // clock keeps running; data activity gated off
    let idle = flow.power(&design, &lib10, &idle_profile, t10.fmax())?;
    println!(
        "\nburst processing at 10 K: active {:.1} mW, clock-gated idle {:.1} mW",
        active.total() * 1e3,
        idle.total() * 1e3
    );
    println!("{:>6} {:>14}", "duty", "average power");
    for duty in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let avg = duty * active.total() + (1.0 - duty) * idle.total();
        println!("{:>5.0}% {:>11.1} mW", duty * 100.0, avg * 1e3);
    }
    println!(
        "\nheadroom at full duty: {:+.1} mW under the cooling budget",
        (COOLING_BUDGET_10K - active.total()) * 1e3
    );

    // --- 3. The same SoC at 300 K for contrast (the paper's infeasibility). -
    let p300 = flow.power(&design, &lib300, &profile, t300.fmax())?;
    println!(
        "\nfor contrast at 300 K: {:.1} mW total ({:.0} mW of it SRAM leakage) — {}",
        p300.total() * 1e3,
        p300.sram_leakage_w * 1e3,
        if p300.fits_budget(COOLING_BUDGET_10K) {
            "fits"
        } else {
            "does NOT fit the cryostat budget"
        }
    );
    Ok(())
}
