//! Two-dimensional NLDM lookup tables.

use serde::{Deserialize, Serialize};

use crate::{LibertyError, Result};

/// A 2-D non-linear delay model table.
///
/// ```
/// use cryo_liberty::Lut2;
///
/// let lut = Lut2::new(
///     vec![1e-12, 10e-12],          // input slew axis
///     vec![1e-15, 10e-15],          // output load axis
///     vec![2e-12, 5e-12, 3e-12, 8e-12],
/// )?;
/// // Bilinear interpolation inside the grid:
/// let d = lut.lookup(5.5e-12, 5.5e-15);
/// assert!(d > 2e-12 && d < 8e-12);
/// # Ok::<(), cryo_liberty::LibertyError>(())
/// ```
///
/// `index1` is the input transition time (seconds) and `index2` the output
/// load capacitance (farads), matching Liberty's
/// `(input_net_transition, total_output_net_capacitance)` template. Lookups
/// interpolate bilinearly inside the grid and extrapolate linearly outside
/// it, which is how signoff STA tools treat out-of-grid slews and loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut2 {
    index1: Vec<f64>,
    index2: Vec<f64>,
    /// Row-major: `values[i1 * index2.len() + i2]`.
    values: Vec<f64>,
}

impl Lut2 {
    /// Build a table.
    ///
    /// # Errors
    ///
    /// [`LibertyError::MalformedTable`] if either axis is empty or unsorted,
    /// or the value count differs from `index1.len() * index2.len()`.
    pub fn new(index1: Vec<f64>, index2: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if index1.is_empty() || index2.is_empty() {
            return Err(LibertyError::MalformedTable {
                reason: "empty axis".to_string(),
            });
        }
        for axis in [&index1, &index2] {
            if axis.windows(2).any(|w| w[1] <= w[0]) {
                return Err(LibertyError::MalformedTable {
                    reason: "axis not strictly increasing".to_string(),
                });
            }
        }
        if values.len() != index1.len() * index2.len() {
            return Err(LibertyError::MalformedTable {
                reason: format!(
                    "expected {} values, got {}",
                    index1.len() * index2.len(),
                    values.len()
                ),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LibertyError::MalformedTable {
                reason: "non-finite table value".to_string(),
            });
        }
        Ok(Self {
            index1,
            index2,
            values,
        })
    }

    /// A degenerate 1×1 table holding a single value (used for arcs measured
    /// at one condition, e.g. SRAM macro interfaces).
    #[must_use]
    pub fn constant(value: f64) -> Self {
        Self {
            index1: vec![0.0],
            index2: vec![0.0],
            values: vec![value],
        }
    }

    /// Input-slew axis, seconds.
    #[must_use]
    pub fn index1(&self) -> &[f64] {
        &self.index1
    }

    /// Output-load axis, farads.
    #[must_use]
    pub fn index2(&self) -> &[f64] {
        &self.index2
    }

    /// Raw values, row-major over `(index1, index2)`.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Bilinear lookup at `(slew, load)` with linear extrapolation outside
    /// the characterized grid.
    #[must_use]
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i, fi) = Self::locate(&self.index1, slew);
        let (j, fj) = Self::locate(&self.index2, load);
        let n2 = self.index2.len();
        let at = |a: usize, b: usize| self.values[a * n2 + b];
        if self.index1.len() == 1 && n2 == 1 {
            return self.values[0];
        }
        if self.index1.len() == 1 {
            return at(0, j) * (1.0 - fj) + at(0, j + 1) * fj;
        }
        if n2 == 1 {
            return at(i, 0) * (1.0 - fi) + at(i + 1, 0) * fi;
        }
        let v00 = at(i, j);
        let v01 = at(i, j + 1);
        let v10 = at(i + 1, j);
        let v11 = at(i + 1, j + 1);
        v00 * (1.0 - fi) * (1.0 - fj)
            + v01 * (1.0 - fi) * fj
            + v10 * fi * (1.0 - fj)
            + v11 * fi * fj
    }

    /// Find the bracketing segment and fractional position of `x` on `axis`.
    /// Fractions outside `[0, 1]` produce linear extrapolation.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if axis.len() == 1 {
            return (0, 0.0);
        }
        let mut i = axis.partition_point(|&a| a < x);
        i = i.clamp(1, axis.len() - 1);
        let (a, b) = (axis[i - 1], axis[i]);
        ((i - 1), (x - a) / (b - a))
    }

    /// Mean of all table values (used for library-level statistics).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum table value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Scale every value by `factor`, returning a new table (used for
    /// derating studies).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            index1: self.index1.clone(),
            index2: self.index2.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Lut2 {
        // delay = 1e-12 + 2e-12 * slew_norm + 3e-12 * load_norm (separable),
        // sampled on a 3×3 grid.
        let s = [1e-12, 2e-12, 3e-12];
        let l = [1e-15, 2e-15, 3e-15];
        let mut vals = Vec::new();
        for si in s {
            for li in l {
                vals.push(1e-12 + 2.0 * si + 3e3 * li);
            }
        }
        Lut2::new(s.to_vec(), l.to_vec(), vals).unwrap()
    }

    #[test]
    fn exact_on_grid_points() {
        let t = table();
        assert!((t.lookup(2e-12, 2e-15) - (1e-12 + 4e-12 + 6e-12)).abs() < 1e-24);
    }

    #[test]
    fn bilinear_between_points() {
        let t = table();
        // Linear function is reproduced exactly by bilinear interpolation.
        let v = t.lookup(1.5e-12, 2.5e-15);
        let expect = 1e-12 + 2.0 * 1.5e-12 + 3e3 * 2.5e-15;
        assert!((v - expect).abs() < 1e-24);
    }

    #[test]
    fn linear_extrapolation_outside_grid() {
        let t = table();
        let v = t.lookup(5e-12, 6e-15);
        let expect = 1e-12 + 2.0 * 5e-12 + 3e3 * 6e-15;
        assert!((v - expect).abs() < 1e-24);
        let v_low = t.lookup(0.0, 0.0);
        assert!((v_low - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn constant_table() {
        let t = Lut2::constant(7e-12);
        assert_eq!(t.lookup(1e-9, 1e-12), 7e-12);
        assert_eq!(t.mean(), 7e-12);
        assert_eq!(t.max(), 7e-12);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Lut2::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Lut2::new(vec![1.0, 1.0], vec![1.0], vec![0.0, 0.0]).is_err());
        assert!(Lut2::new(vec![1.0, 2.0], vec![1.0], vec![0.0]).is_err());
        assert!(Lut2::new(vec![1.0], vec![1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn scaling() {
        let t = table().scaled(2.0);
        assert!((t.lookup(2e-12, 2e-15) - 2.0 * (1e-12 + 4e-12 + 6e-12)).abs() < 1e-24);
    }

    #[test]
    fn serde_round_trip() {
        let t = table();
        let json = serde_json::to_string(&t).unwrap();
        let back: Lut2 = serde_json::from_str(&json).unwrap();
        assert_eq!(t.index1(), back.index1());
        assert_eq!(t.index2(), back.index2());
        for (a, b) in t.values().iter().zip(back.values()) {
            assert!(
                (a - b).abs() <= 1e-15 * a.abs().max(1e-30),
                "{a:e} vs {b:e}"
            );
        }
    }
}
