//! Derivative-free optimisation used by the calibration stages.
//!
//! Compact-model extraction objective functions are noisy (the virtual wafer
//! injects instrument noise) and non-smooth in places, so the classic
//! Nelder–Mead simplex is the right tool — it is also what many commercial
//! extraction suites fall back to. The implementation supports box
//! constraints by clamping trial points into the feasible region.

/// Configuration for a [`nelder_mead`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmConfig {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence threshold on the simplex objective spread.
    pub f_tol: f64,
    /// Initial simplex scale as a fraction of each parameter's box width.
    pub init_scale: f64,
}

impl Default for NmConfig {
    fn default() -> Self {
        Self {
            max_evals: 2000,
            f_tol: 1e-7,
            init_scale: 0.12,
        }
    }
}

/// Result of a [`nelder_mead`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct NmResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at [`NmResult::x`].
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Whether the spread criterion was met before the budget ran out.
    pub converged: bool,
}

/// Minimise `f` over the box `bounds` starting from `x0` with the
/// Nelder–Mead simplex.
///
/// `bounds[i] = (lo, hi)` clamps coordinate `i`; `x0` is clamped into the box
/// before the initial simplex is built.
///
/// # Panics
///
/// Panics if `x0` is empty or `bounds.len() != x0.len()`.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], bounds: &[(f64, f64)], cfg: &NmConfig) -> NmResult
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "need at least one parameter");
    assert_eq!(bounds.len(), x0.len(), "one bound pair per parameter");
    let n = x0.len();
    let clamp = |x: &mut Vec<f64>| {
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            *xi = xi.clamp(lo, hi);
        }
    };

    // Initial simplex: x0 plus one displaced vertex per dimension.
    let mut start = x0.to_vec();
    clamp(&mut start);
    let mut simplex: Vec<Vec<f64>> = vec![start.clone()];
    for i in 0..n {
        let mut v = start.clone();
        let width = bounds[i].1 - bounds[i].0;
        let step = (cfg.init_scale * width).max(1e-12);
        v[i] = if v[i] + step <= bounds[i].1 {
            v[i] + step
        } else {
            v[i] - step
        };
        clamp(&mut v);
        simplex.push(v);
    }
    let mut evals = 0usize;
    let mut fv: Vec<f64> = simplex
        .iter()
        .map(|v| {
            evals += 1;
            f(v)
        })
        .collect();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut converged = false;

    while evals < cfg.max_evals {
        // Order vertices by objective.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| fv[a].partial_cmp(&fv[b]).unwrap());
        let reorder_s: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let reorder_f: Vec<f64> = idx.iter().map(|&i| fv[i]).collect();
        simplex = reorder_s;
        fv = reorder_f;

        if (fv[n] - fv[0]).abs() < cfg.f_tol * (1.0 + fv[0].abs()) {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for v in simplex.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        let blend = |a: f64, from: &[f64]| -> Vec<f64> {
            let mut out: Vec<f64> = centroid
                .iter()
                .zip(from)
                .map(|(c, w)| c + a * (c - w))
                .collect();
            clamp(&mut out);
            out
        };

        // Reflection.
        let xr = blend(alpha, &simplex[n]);
        evals += 1;
        let fr = f(&xr);
        if fr < fv[0] {
            // Expansion.
            let xe = blend(gamma, &simplex[n]);
            evals += 1;
            let fe = f(&xe);
            if fe < fr {
                simplex[n] = xe;
                fv[n] = fe;
            } else {
                simplex[n] = xr;
                fv[n] = fr;
            }
        } else if fr < fv[n - 1] {
            simplex[n] = xr;
            fv[n] = fr;
        } else {
            // Contraction (outside if the reflected point helps, else inside).
            let (xc, fc) = if fr < fv[n] {
                let xc = blend(rho, &simplex[n]);
                evals += 1;
                let fc = f(&xc);
                (xc, fc)
            } else {
                let xc = blend(-rho, &simplex[n]);
                evals += 1;
                let fc = f(&xc);
                (xc, fc)
            };
            if fc < fv[n].min(fr) {
                simplex[n] = xc;
                fv[n] = fc;
            } else {
                // Shrink toward the best vertex.
                for i in 1..=n {
                    let best = simplex[0].clone();
                    for (x, b) in simplex[i].iter_mut().zip(&best) {
                        *x = b + sigma * (*x - b);
                    }
                    evals += 1;
                    fv[i] = f(&simplex[i]);
                    if evals >= cfg.max_evals {
                        break;
                    }
                }
            }
        }
    }

    let mut best = 0;
    for i in 1..=n {
        if fv[i] < fv[best] {
            best = i;
        }
    }
    NmResult {
        x: simplex[best].clone(),
        fx: fv[best],
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2);
        let r = nelder_mead(
            f,
            &[0.0, 0.0],
            &[(-5.0, 5.0), (-5.0, 5.0)],
            &NmConfig::default(),
        );
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
        assert!((r.x[0] - 1.5).abs() < 1e-2);
        assert!((r.x[1] + 0.5).abs() < 1e-2);
    }

    #[test]
    fn minimises_rosenbrock() {
        let f = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            a * a + 100.0 * b * b
        };
        let cfg = NmConfig {
            max_evals: 6000,
            ..NmConfig::default()
        };
        let r = nelder_mead(f, &[-1.2, 1.0], &[(-3.0, 3.0), (-3.0, 3.0)], &cfg);
        assert!(r.fx < 1e-5, "fx = {}", r.fx);
    }

    #[test]
    fn respects_bounds() {
        // True minimum at x = -3, outside the box [0, 5].
        let f = |x: &[f64]| (x[0] + 3.0).powi(2);
        let r = nelder_mead(f, &[2.0], &[(0.0, 5.0)], &NmConfig::default());
        assert!(r.x[0] >= 0.0 && r.x[0] < 0.05, "x = {}", r.x[0]);
    }

    #[test]
    fn reports_eval_budget() {
        let f = |x: &[f64]| x[0] * x[0];
        let cfg = NmConfig {
            max_evals: 25,
            ..NmConfig::default()
        };
        let r = nelder_mead(f, &[4.0], &[(-10.0, 10.0)], &cfg);
        assert!(r.evals <= 27, "evals = {}", r.evals);
    }

    #[test]
    #[should_panic(expected = "one bound pair")]
    fn mismatched_bounds_panic() {
        let _ = nelder_mead(|x| x[0], &[0.0, 1.0], &[(0.0, 1.0)], &NmConfig::default());
    }
}
