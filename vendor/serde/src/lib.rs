//! Vendored subset of the `serde` API.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal serde whose data model is a JSON-shaped [`Value`] tree: types
//! implement [`Serialize`] by producing a `Value` and [`Deserialize`] by
//! consuming one. `serde_json` (also vendored) renders and parses that tree
//! with the same JSON conventions as real serde_json — unit enum variants as
//! bare strings, `Option` as `null`/payload, tuples as arrays — so the
//! characterization caches under `data/` written by the real crates stay
//! readable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model shared by the vendored serde/serde_json pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Key order is preserved (matches struct field order on serialize).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow the string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up an object key; `Null` when absent or not an object.
    ///
    /// Missing keys deserialize like explicit `null`, which is how `Option`
    /// fields default to `None`.
    #[must_use]
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error (also used as the generic serde error type).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserializable marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ------------------------------------------------------------------
// Primitive impls
// ------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::expected("integer", v))?;
                if n.fract() != 0.0
                    || n < <$t>::MIN as f64
                    || n > <$t>::MAX as f64
                {
                    return Err(Error::custom(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------------
// Containers
// ------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Array(items) => Err(Error::custom(format!(
                "expected array of length {N}, found length {}",
                items.len()
            ))),
            _ => Err(Error::expected("array", v)),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident . $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx])?,)+
                    )),
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected tuple of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    _ => Err(Error::expected("array", v)),
                }
            }
        }
    )*};
}

tuple_impl! {
    (A.0, B.1) => 2;
    (A.0, B.1, C.2) => 3;
    (A.0, B.1, C.2, D.3) => 4;
    (A.0, B.1, C.2, D.3, E.4) => 5;
    (A.0, B.1, C.2, D.3, E.4, F.5) => 6;
}

// ------------------------------------------------------------------
// Support entry points used by the derive macro
// ------------------------------------------------------------------

/// Borrow the fields of an object value, naming the target type on error.
///
/// # Errors
///
/// [`Error`] when `v` is not an object.
pub fn object_fields<'v>(v: &'v Value, ty: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Object(_) => Ok(v),
        _ => Err(Error::custom(format!(
            "expected object for {ty}, found {}",
            v.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(2.5).to_value(), Value::Number(2.5));
    }

    #[test]
    fn missing_object_key_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(obj.get("b"), &Value::Null);
        assert_eq!(Option::<u16>::from_value(obj.get("b")).unwrap(), None);
    }

    #[test]
    fn tuple_and_array_shapes() {
        let t = (3u16, 1.5f64).to_value();
        assert_eq!(
            t,
            Value::Array(vec![Value::Number(3.0), Value::Number(1.5)])
        );
        let back: (u16, f64) = Deserialize::from_value(&t).unwrap();
        assert_eq!(back, (3, 1.5));
        let arr: [f64; 3] = Deserialize::from_value(&[1.0, 2.0, 3.0].to_value()).unwrap();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn integers_reject_fractions() {
        assert!(u16::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
    }
}
