//! Supervised end-to-end pipeline runner.
//!
//! [`Supervisor`] drives the paper's full flow — calibrate → characterize
//! (300 K, 10 K) → STA per corner → workload activity → power → classify —
//! with the robustness contract of DESIGN.md §9:
//!
//! - **Stage checkpoints.** Every completed stage serializes its artifact
//!   into a [`CheckpointStore`] keyed by the pipeline configuration. A run
//!   killed at any stage boundary resumes at the first incomplete stage
//!   with zero repeated SPICE or STA work; the per-stage
//!   [`StageRecord::from_checkpoint`] flag and the folded simulator/arc
//!   counters prove it.
//! - **Deadline budgets.** Each stage runs on a watchdog-supervised worker
//!   thread with a per-stage budget, clamped by the remaining overall
//!   wall-clock budget. Overruns become structured
//!   [`CoreError::StageTimeout`] — never a hang. (The overrunning worker
//!   thread is detached and leaked; it holds no locks and its checkpoint
//!   is simply never written.)
//! - **Retry with backoff.** Transient stage failures are retried with
//!   doubling backoff; configuration, coverage, and timeout errors are
//!   terminal.
//! - **Cross-layer fault injection.** The flow's [`FaultPlan`] is
//!   re-installed on every worker thread and the stage context is labelled
//!   `stage:<name>`, so `CRYO_FAULTS` scopes can target a single stage and
//!   parallel/serial runs stay byte-identical.
//! - **Degraded-mode signoff.** STA stages run under the configured
//!   [`MissingArcPolicy`], so a partially characterized corner still
//!   produces a complete, explicitly flagged timing report.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use cryo_cells::{cache, topology, CharReport, CheckpointStore, SurrogateSummary};
use cryo_liberty::{audit_cross_corner, audit_library, AuditReport, Library};
use cryo_power::{ActivityProfile, PowerReport};
use cryo_spice::{fault, FaultPlan};
use cryo_sta::{audit_timing, counters, MissingArcPolicy, TimingReport};
use serde::{Deserialize, Serialize};

use crate::audit::{self, AuditPolicy};
use crate::flow::{CryoFlow, Workload, COOLING_BUDGET_10K, DECOHERENCE_TIME, FIG7_CLOCK};
use crate::surrogate::SurrogatePolicy;
use crate::{CoreError, Result};

// ----------------------------------------------------------------------
// Stages
// ----------------------------------------------------------------------

/// The supervised pipeline's stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Environment validation plus model-card/SoC fingerprints.
    Calibrate,
    /// Characterize the 300 K library corner.
    Charlib300,
    /// Characterize the 10 K library corner.
    Charlib10,
    /// STA at the 300 K corner.
    Sta300,
    /// STA at the 10 K corner.
    Sta10,
    /// Workload simulation → switching-activity profile.
    Activity,
    /// Activity-scale calibration + power signoff at both corners.
    Power,
    /// Fold everything into the paper's feasibility verdict.
    Classify,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 8] = [
        Stage::Calibrate,
        Stage::Charlib300,
        Stage::Charlib10,
        Stage::Sta300,
        Stage::Sta10,
        Stage::Activity,
        Stage::Power,
        Stage::Classify,
    ];

    /// Stable lowercase name; used as the checkpoint blob name and in
    /// `stage:<name>` fault-injection contexts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Calibrate => "calibrate",
            Stage::Charlib300 => "charlib300",
            Stage::Charlib10 => "charlib10",
            Stage::Sta300 => "sta300",
            Stage::Sta10 => "sta10",
            Stage::Activity => "activity",
            Stage::Power => "power",
            Stage::Classify => "classify",
        }
    }
}

// ----------------------------------------------------------------------
// Stage artifacts (all round-trip through the checkpoint store)
// ----------------------------------------------------------------------

/// Calibrate-stage artifact: fingerprints of everything downstream stages
/// depend on, recorded so a resumed run can be audited against the inputs
/// that produced its checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrateArtifact {
    /// FNV-64 digest of the n-FinFET model card.
    pub nfet_digest: String,
    /// FNV-64 digest of the p-FinFET model card.
    pub pfet_digest: String,
    /// FNV-64 digest of the SoC generator configuration.
    pub soc_digest: String,
    /// Whether a fault-injection plan is armed for this run.
    pub faults_armed: bool,
    /// Effective characterization worker count (0 = auto-detect).
    pub jobs: usize,
}

/// Characterization-stage artifact: the library itself plus its per-cell
/// report, so a resumed run skips SPICE entirely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharArtifact {
    /// The characterized (possibly degraded) library corner.
    pub lib: Library,
    /// Per-cell characterization outcomes.
    pub report: CharReport,
    /// The corner's mean arc delay — the 300 K value anchors the 10 K
    /// macro-timing derate.
    pub mean_delay: f64,
}

/// Activity-stage artifact: the switching profile in its sorted,
/// checkpointable representation (see `ActivityProfile::regions_sorted`)
/// plus the workload's steady-state cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityArtifact {
    /// Fallback toggle rate for unmatched regions.
    pub default_alpha: f64,
    /// Per-region toggle rates, sorted by region name.
    pub regions: Vec<(String, f64)>,
    /// Per-macro access rates, sorted by macro name.
    pub macro_accesses: Vec<(String, f64)>,
    /// Steady-state cycles per classified qubit.
    pub cycles_per_item: f64,
}

/// One corner's power summary with a deterministic (sorted) region map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCorner {
    /// Corner name.
    pub corner: String,
    /// Dynamic power, watts.
    pub dynamic_w: f64,
    /// Standard-cell leakage, watts.
    pub logic_leakage_w: f64,
    /// SRAM macro leakage, watts.
    pub sram_leakage_w: f64,
    /// Total average power, watts.
    pub total_w: f64,
    /// Dynamic power per region, sorted by region name.
    pub per_region_dynamic: Vec<(String, f64)>,
}

impl PowerCorner {
    fn from_report(r: &PowerReport) -> Self {
        let mut per_region: Vec<(String, f64)> = r
            .per_region_dynamic
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        per_region.sort_by(|a, b| a.0.cmp(&b.0));
        PowerCorner {
            corner: r.corner.clone(),
            dynamic_w: r.dynamic_w,
            logic_leakage_w: r.logic_leakage_w,
            sram_leakage_w: r.sram_leakage_w,
            total_w: r.total(),
            per_region_dynamic: per_region,
        }
    }
}

/// Power-stage artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerArtifact {
    /// Calibrated global activity scale (DESIGN.md §5).
    pub activity_scale: f64,
    /// 300 K corner summary.
    pub p300: PowerCorner,
    /// 10 K corner summary.
    pub p10: PowerCorner,
}

/// Classify-stage artifact: the paper's feasibility verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifyArtifact {
    /// Maximum clock at 300 K, hertz.
    pub fmax_300_hz: f64,
    /// Maximum clock at 10 K, hertz.
    pub fmax_10_hz: f64,
    /// `fmax_10 / fmax_300` — slightly below 1: the cryogenic Vth shift
    /// lengthens the critical path ~4.6 % (paper Table 1).
    pub cryo_fmax_ratio: f64,
    /// Total SoC power at 10 K, watts.
    pub total_power_10k_w: f64,
    /// Whether the 10 K power fits the cryostat's cooling budget.
    pub fits_cooling_budget: bool,
    /// kNN classification latency for the supervised qubit count, seconds.
    pub knn_classify_s: f64,
    /// Whether classification finishes inside the decoherence window.
    pub within_decoherence: bool,
    /// Degraded (stand-in) arc count in the 300 K timing report.
    pub degraded_arcs_300: usize,
    /// Degraded (stand-in) arc count in the 10 K timing report.
    pub degraded_arcs_10: usize,
}

// ----------------------------------------------------------------------
// Supervisor configuration + report
// ----------------------------------------------------------------------

/// Knobs for the supervised pipeline.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-stage deadline. A stage that runs longer becomes
    /// [`CoreError::StageTimeout`].
    pub stage_budget: Duration,
    /// Overall wall-clock budget for the whole pipeline; the effective
    /// per-stage deadline is clamped by what remains of this.
    pub overall_budget: Duration,
    /// Attempts per stage (1 = no retry). Coverage, configuration, and
    /// timeout errors are never retried.
    pub max_attempts: u32,
    /// Initial retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Missing-arc policy for the STA stages. The default borrows from
    /// drive siblings with a 10 % pessimism margin so a degraded library
    /// still reaches a complete, flagged report.
    pub missing_arc_policy: MissingArcPolicy,
    /// Stop (successfully, `completed = false`) after this stage's
    /// checkpoint is written — the in-process kill point used by the
    /// resume tests and the kill-and-resume CI job.
    pub halt_after: Option<Stage>,
    /// Qubit count for the activity workload and the classification-latency
    /// verdict.
    pub qubits: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            stage_budget: Duration::from_secs(600),
            overall_budget: Duration::from_secs(3600),
            max_attempts: 3,
            backoff: Duration::from_millis(50),
            missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.10 },
            halt_after: None,
            qubits: 20,
        }
    }
}

/// Per-stage execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Which stage.
    pub stage: Stage,
    /// `true` when the stage's artifact was loaded from its checkpoint
    /// (zero recomputation).
    pub from_checkpoint: bool,
    /// Attempts taken (0 when resumed from checkpoint).
    pub attempts: u32,
    /// Wall-clock time spent, seconds (≈0 when resumed).
    pub wall_s: f64,
    /// DC operating-point solves the stage ran.
    pub dc_solves: u64,
    /// Transient analyses the stage ran.
    pub tran_solves: u64,
    /// STA arc evaluations the stage ran.
    pub arc_evals: u64,
}

/// Outcome of a supervised pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Checkpoint-namespace key derived from every run-relevant input.
    pub pipeline_key: String,
    /// `false` when the run stopped at [`SupervisorConfig::halt_after`].
    pub completed: bool,
    /// One record per stage that ran (or resumed), in order.
    pub stages: Vec<StageRecord>,
    /// The final verdict; `None` unless the Classify stage ran.
    pub verdict: Option<ClassifyArtifact>,
    /// Accumulated audit outcome across every stage boundary: `Warn`-mode
    /// findings plus cells repaired by targeted re-characterization. Empty
    /// on a clean run (and omitted from serialization, so clean pipeline
    /// reports stay byte-identical to the pre-audit schema).
    pub audit: AuditReport,
    /// Surrogate-prediction summary lifted from the cold corner's
    /// characterization report when the run predicted that corner; `None`
    /// (and omitted from serialization) under [`SurrogatePolicy::Off`].
    pub surrogate: Option<SurrogateSummary>,
}

// The vendored serde derive cannot skip a field conditionally, and a clean
// run's report must serialize without the audit key, so both impls are
// written by hand (same pattern as `CharReport`/`TimingReport`).
impl Serialize for PipelineReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("pipeline_key".to_string(), self.pipeline_key.to_value()),
            ("completed".to_string(), self.completed.to_value()),
            ("stages".to_string(), self.stages.to_value()),
            ("verdict".to_string(), self.verdict.to_value()),
        ];
        if !self.audit.is_clean() {
            fields.push(("audit".to_string(), self.audit.to_value()));
        }
        if let Some(s) = &self.surrogate {
            fields.push(("surrogate".to_string(), s.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for PipelineReport {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let obj = serde::object_fields(v, "PipelineReport")?;
        fn field<T: Deserialize>(
            obj: &serde::Value,
            name: &str,
        ) -> std::result::Result<T, serde::Error> {
            Deserialize::from_value(obj.get(name))
                .map_err(|e| serde::Error::custom(format!("PipelineReport.{name}: {e}")))
        }
        Ok(Self {
            pipeline_key: field(obj, "pipeline_key")?,
            completed: field(obj, "completed")?,
            stages: field(obj, "stages")?,
            verdict: field(obj, "verdict")?,
            audit: field::<Option<AuditReport>>(obj, "audit")?.unwrap_or_default(),
            surrogate: field::<Option<SurrogateSummary>>(obj, "surrogate")?,
        })
    }
}

/// Validated environment configuration (satellite of the supervision
/// contract: malformed knobs fail structurally at flow start, not
/// mid-pipeline).
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Parsed `CRYO_FAULTS` plan, if set.
    pub fault_plan: Option<FaultPlan>,
    /// Parsed `CRYO_JOBS` override, if set.
    pub jobs: Option<usize>,
    /// Parsed `CRYO_AUDIT` policy (default when unset).
    pub audit_policy: AuditPolicy,
    /// Parsed `CRYO_SURROGATE` policy (default when unset).
    pub surrogate_policy: SurrogatePolicy,
    /// Parsed `CRYO_CORNERS` spec, if set.
    pub corner_spec: Option<crate::corners::CornerSpec>,
    /// Parsed `CRYO_KERNEL` selection, if set (both kernels are
    /// byte-identical; the knob exists for differential testing and
    /// excluded from every cache key).
    pub kernel: Option<cryo_spice::KernelKind>,
    /// Parsed `CRYO_WARMSTART` selection, if set.
    pub warmstart: Option<bool>,
}

/// Strictly validate `CRYO_FAULTS`, `CRYO_JOBS`, `CRYO_AUDIT`,
/// `CRYO_SURROGATE`, `CRYO_CORNERS`, `CRYO_KERNEL`, and `CRYO_WARMSTART`.
///
/// # Errors
///
/// [`CoreError::Config`] naming the variable, the rejected value, and the
/// parse failure.
pub fn validate_env() -> Result<EnvConfig> {
    let fault_plan = FaultPlan::from_env_checked().map_err(|reason| CoreError::Config {
        var: "CRYO_FAULTS".into(),
        value: std::env::var("CRYO_FAULTS").unwrap_or_default(),
        reason,
    })?;
    let jobs = cryo_cells::sched::env_jobs_checked().map_err(|reason| CoreError::Config {
        var: "CRYO_JOBS".into(),
        value: std::env::var("CRYO_JOBS").unwrap_or_default(),
        reason,
    })?;
    let audit_policy = AuditPolicy::from_env_checked().map_err(|reason| CoreError::Config {
        var: "CRYO_AUDIT".into(),
        value: std::env::var("CRYO_AUDIT").unwrap_or_default(),
        reason,
    })?;
    let surrogate_policy =
        SurrogatePolicy::from_env_checked().map_err(|reason| CoreError::Config {
            var: "CRYO_SURROGATE".into(),
            value: std::env::var("CRYO_SURROGATE").unwrap_or_default(),
            reason,
        })?;
    let corner_spec =
        crate::corners::CornerSpec::from_env_checked().map_err(|reason| CoreError::Config {
            var: "CRYO_CORNERS".into(),
            value: std::env::var("CRYO_CORNERS").unwrap_or_default(),
            reason,
        })?;
    let kernel = cryo_spice::kernel_from_env_checked().map_err(|reason| CoreError::Config {
        var: "CRYO_KERNEL".into(),
        value: std::env::var("CRYO_KERNEL").unwrap_or_default(),
        reason,
    })?;
    let warmstart =
        cryo_spice::warmstart_from_env_checked().map_err(|reason| CoreError::Config {
            var: "CRYO_WARMSTART".into(),
            value: std::env::var("CRYO_WARMSTART").unwrap_or_default(),
            reason,
        })?;
    Ok(EnvConfig {
        fault_plan,
        jobs,
        audit_policy,
        surrogate_policy,
        corner_spec,
        kernel,
        warmstart,
    })
}

// ----------------------------------------------------------------------
// Supervisor
// ----------------------------------------------------------------------

/// The supervised pipeline runner. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct Supervisor {
    flow: CryoFlow,
    cfg: SupervisorConfig,
}

impl Supervisor {
    /// Wrap a flow in a supervisor.
    #[must_use]
    pub fn new(flow: CryoFlow, cfg: SupervisorConfig) -> Self {
        Supervisor { flow, cfg }
    }

    /// The underlying flow.
    #[must_use]
    pub fn flow(&self) -> &CryoFlow {
        &self.flow
    }

    /// The supervisor configuration.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// The checkpoint-namespace key: an FNV-64 digest over both corners'
    /// cache keys, the SoC configuration, the seed, the coverage floor,
    /// and the missing-arc policy. Deliberately independent of `jobs` —
    /// a run interrupted at `jobs = 1` resumes under `jobs = 8` (the
    /// libraries are byte-identical either way).
    ///
    /// # Errors
    ///
    /// Cache-key construction failures.
    pub fn pipeline_key(&self) -> Result<String> {
        let fcfg = self.flow.config();
        let cells = topology::standard_cell_set();
        let tag = cache::cell_set_tag(&cells);
        let mut c300 = fcfg.char_300k.clone();
        let mut c10 = fcfg.char_10k.clone();
        c300.jobs = 1;
        c10.jobs = 1;
        let k300 = cache::cache_key(&self.flow.nfet, &self.flow.pfet, &c300, &tag)?;
        let k10 = cache::cache_key(&self.flow.nfet, &self.flow.pfet, &c10, &tag)?;
        Ok(fnv64(&format!(
            "{k300}|{k10}|{:?}|{}|{}|{:?}",
            fcfg.soc, fcfg.seed, fcfg.coverage_floor, self.cfg.missing_arc_policy
        )))
    }

    /// Drop every pipeline-level checkpoint for this configuration.
    ///
    /// # Errors
    ///
    /// Checkpoint-store I/O failures.
    pub fn clear_checkpoints(&self) -> Result<()> {
        let store = self.open_store()?;
        store.clear();
        Ok(())
    }

    fn open_store(&self) -> Result<CheckpointStore> {
        let key = self.pipeline_key()?;
        Ok(CheckpointStore::open(
            &self.flow.config().cache_dir,
            "pipeline",
            &key,
        )?)
    }

    /// Run the pipeline end to end (resuming from checkpoints), honoring
    /// budgets, retries, fault injection, and the degraded-mode policy.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] on malformed environment knobs,
    /// [`CoreError::StageTimeout`] on budget overruns, and any stage error
    /// that survives the retry policy.
    #[allow(clippy::too_many_lines)] // one linear stage sequence
    pub fn run(&self) -> Result<PipelineReport> {
        let env = validate_env()?;
        let fcfg = self.flow.config();
        // Arm the plan on the supervisor thread; each stage worker
        // re-installs a clone so injection follows the work.
        let _fault_guard = fcfg.fault_plan.clone().map(fault::install_guard);
        let pipeline_key = self.pipeline_key()?;
        let store = self.open_store()?;
        let started = Instant::now();
        let mut records: Vec<StageRecord> = Vec::new();
        let mut pipeline_audit = AuditReport::default();
        let audit_policy = fcfg.audit_policy;

        let halted = |stage: Stage| self.cfg.halt_after == Some(stage);
        let partial = |records: Vec<StageRecord>,
                       audit: AuditReport,
                       surrogate: Option<SurrogateSummary>| PipelineReport {
            pipeline_key: pipeline_key.clone(),
            completed: false,
            stages: records,
            verdict: None,
            audit,
            surrogate,
        };

        // Calibrate ----------------------------------------------------
        let flow = self.flow.clone();
        let jobs = env.jobs.unwrap_or(fcfg.jobs);
        let faults_armed = fcfg.fault_plan.is_some();
        let _cal: CalibrateArtifact =
            self.stage(Stage::Calibrate, started, &store, &mut records, move || {
                Ok(CalibrateArtifact {
                    nfet_digest: fnv64(&format!("{:?}", flow.nfet)),
                    pfet_digest: fnv64(&format!("{:?}", flow.pfet)),
                    soc_digest: fnv64(&format!("{:?}", flow.config().soc)),
                    faults_armed,
                    jobs,
                })
            })?;
        if audit_policy.is_on() {
            // The device audit runs on the cards every downstream stage
            // will actually consume — a `corrupt=vth` poison is caught
            // here, before a single SPICE run spends time on it. There is
            // no repair path for a bad card: under Gate this is terminal.
            let (nfet, pfet) = self.flow.effective_cards();
            let cards = audit::audit_model_cards(Stage::Calibrate.name(), &nfet, &pfet);
            self.settle(Stage::Calibrate, cards, audit_policy, &mut pipeline_audit)?;
        }
        if halted(Stage::Calibrate) {
            return Ok(partial(records, pipeline_audit, None));
        }

        // Characterization ---------------------------------------------
        let flow = self.flow.clone();
        let char300: CharArtifact =
            self.stage(Stage::Charlib300, started, &store, &mut records, move || {
                let (lib, report) = flow.library_with_report(300.0)?;
                let mean_delay = lib.stats().mean_delay;
                Ok(CharArtifact {
                    lib,
                    report,
                    mean_delay,
                })
            })?;
        let char300 = if audit_policy.is_on() {
            self.audit_charlib(Stage::Charlib300, char300, None, &store, &mut pipeline_audit)?
        } else {
            char300
        };
        if halted(Stage::Charlib300) {
            return Ok(partial(records, pipeline_audit, None));
        }

        let flow = self.flow.clone();
        let char10: CharArtifact = match fcfg.surrogate_policy {
            SurrogatePolicy::PredictWithFallback { max_rel_err } => {
                // Predicted corner: distinct checkpoint blob so it can
                // never be resumed as (or clobber) a SPICE artifact.
                let warm = char300.lib.clone();
                self.stage_blob(
                    Stage::Charlib10,
                    "charlib10_sur",
                    started,
                    &store,
                    &mut records,
                    move || {
                        let (lib, report) =
                            flow.surrogate_library_with_report(10.0, &warm, max_rel_err)?;
                        let mean_delay = lib.stats().mean_delay;
                        Ok(CharArtifact {
                            lib,
                            report,
                            mean_delay,
                        })
                    },
                )?
            }
            SurrogatePolicy::Off => {
                self.stage(Stage::Charlib10, started, &store, &mut records, move || {
                    let (lib, report) = flow.library_with_report(10.0)?;
                    let mean_delay = lib.stats().mean_delay;
                    Ok(CharArtifact {
                        lib,
                        report,
                        mean_delay,
                    })
                })?
            }
        };
        let char10 = if audit_policy.is_on() || char10.report.surrogate.is_some() {
            // The cold corner additionally audits against the warm one:
            // a uniform delay scaling passes every per-library invariant
            // but lands outside the physical cross-corner band. A
            // predicted corner is re-audited even with `CRYO_AUDIT` off —
            // predictions are untrusted by construction.
            self.audit_charlib(
                Stage::Charlib10,
                char10,
                Some(&char300.lib),
                &store,
                &mut pipeline_audit,
            )?
        } else {
            char10
        };
        if halted(Stage::Charlib10) {
            return Ok(partial(
                records,
                pipeline_audit,
                char10.report.surrogate.clone(),
            ));
        }

        // STA per corner ------------------------------------------------
        let flow = self.flow.clone();
        let lib = char300.lib.clone();
        let mean300 = char300.mean_delay;
        let policy = self.cfg.missing_arc_policy;
        let mut sta300: TimingReport =
            self.stage(Stage::Sta300, started, &store, &mut records, move || {
                let design = flow.soc();
                flow.timing_with_policy(&design, &lib, mean300, policy)
            })?;
        if audit_policy.is_on() {
            let found = audit_timing(Stage::Sta300.name(), &sta300);
            sta300.audit = found.clone();
            self.settle(Stage::Sta300, found, audit_policy, &mut pipeline_audit)?;
        }
        if halted(Stage::Sta300) {
            return Ok(partial(
                records,
                pipeline_audit,
                char10.report.surrogate.clone(),
            ));
        }

        let flow = self.flow.clone();
        let lib = char10.lib.clone();
        let mut sta10: TimingReport =
            self.stage(Stage::Sta10, started, &store, &mut records, move || {
                let design = flow.soc();
                flow.timing_with_policy(&design, &lib, mean300, policy)
            })?;
        if audit_policy.is_on() {
            let found = audit_timing(Stage::Sta10.name(), &sta10);
            sta10.audit = found.clone();
            self.settle(Stage::Sta10, found, audit_policy, &mut pipeline_audit)?;
        }
        if halted(Stage::Sta10) {
            return Ok(partial(
                records,
                pipeline_audit,
                char10.report.surrogate.clone(),
            ));
        }

        // Activity ------------------------------------------------------
        let flow = self.flow.clone();
        let qubits = self.cfg.qubits;
        let act: ActivityArtifact =
            self.stage(Stage::Activity, started, &store, &mut records, move || {
                let run = flow.run_workload(Workload::Knn { n: qubits })?;
                let profile = flow.activity_profile(&run.stats);
                Ok(ActivityArtifact {
                    default_alpha: profile.default_alpha,
                    regions: profile.regions_sorted(),
                    macro_accesses: profile.macro_accesses_sorted(),
                    cycles_per_item: run.cycles_per_item,
                })
            })?;
        if audit_policy.is_on() {
            let found = audit::audit_activity(Stage::Activity.name(), &act);
            self.settle(Stage::Activity, found, audit_policy, &mut pipeline_audit)?;
        }
        if halted(Stage::Activity) {
            return Ok(partial(
                records,
                pipeline_audit,
                char10.report.surrogate.clone(),
            ));
        }

        // Power ---------------------------------------------------------
        let flow = self.flow.clone();
        let lib300 = char300.lib.clone();
        let lib10 = char10.lib.clone();
        let act_for_power = act.clone();
        let pow: PowerArtifact =
            self.stage(Stage::Power, started, &store, &mut records, move || {
                let design = flow.soc();
                let mut profile = rebuild_profile(&act_for_power);
                let scale =
                    flow.calibrate_activity_scale(&design, &lib300, &profile, FIG7_CLOCK)?;
                profile.scale(scale);
                let p300 = flow.power(&design, &lib300, &profile, FIG7_CLOCK)?;
                let p10 = flow.power(&design, &lib10, &profile, FIG7_CLOCK)?;
                Ok(PowerArtifact {
                    activity_scale: scale,
                    p300: PowerCorner::from_report(&p300),
                    p10: PowerCorner::from_report(&p10),
                })
            })?;
        if audit_policy.is_on() {
            let mut found = audit::audit_power_corner(Stage::Power.name(), &pow.p300);
            found.merge(audit::audit_power_corner(Stage::Power.name(), &pow.p10));
            self.settle(Stage::Power, found, audit_policy, &mut pipeline_audit)?;
        }
        if halted(Stage::Power) {
            return Ok(partial(
                records,
                pipeline_audit,
                char10.report.surrogate.clone(),
            ));
        }

        // Classify ------------------------------------------------------
        let qubits = self.cfg.qubits;
        let cycles_per_item = act.cycles_per_item;
        let total_10k = pow.p10.total_w;
        let fmax_300 = sta300.fmax();
        let fmax_10 = sta10.fmax();
        let degraded_300 = sta300.degraded_arcs.len();
        let degraded_10 = sta10.degraded_arcs.len();
        let verdict: ClassifyArtifact =
            self.stage(Stage::Classify, started, &store, &mut records, move || {
                let knn_classify_s = qubits as f64 * cycles_per_item / FIG7_CLOCK;
                Ok(ClassifyArtifact {
                    fmax_300_hz: fmax_300,
                    fmax_10_hz: fmax_10,
                    cryo_fmax_ratio: fmax_10 / fmax_300,
                    total_power_10k_w: total_10k,
                    fits_cooling_budget: total_10k < COOLING_BUDGET_10K,
                    knn_classify_s,
                    within_decoherence: knn_classify_s < DECOHERENCE_TIME,
                    degraded_arcs_300: degraded_300,
                    degraded_arcs_10: degraded_10,
                })
            })?;
        if audit_policy.is_on() {
            let found = audit::audit_classify(Stage::Classify.name(), &verdict);
            self.settle(Stage::Classify, found, audit_policy, &mut pipeline_audit)?;
        }

        Ok(PipelineReport {
            pipeline_key,
            completed: self.cfg.halt_after != Some(Stage::Classify),
            stages: records,
            verdict: Some(verdict),
            audit: pipeline_audit,
            surrogate: char10.report.surrogate.clone(),
        })
    }

    /// Dispose of one stage's audit outcome: warn on every finding, fail
    /// the run under [`AuditPolicy::Gate`] when open findings remain, and
    /// fold the rest into the pipeline-level report.
    fn settle(
        &self,
        stage: Stage,
        found: AuditReport,
        policy: AuditPolicy,
        pipeline_audit: &mut AuditReport,
    ) -> Result<()> {
        if found.is_clean() {
            return Ok(());
        }
        for f in &found.findings {
            eprintln!("warning: audit {}: {f}", stage.name());
        }
        if policy == AuditPolicy::Gate && !found.findings.is_empty() {
            return Err(CoreError::AuditFailed {
                stage: stage.name().to_string(),
                report: found,
            });
        }
        pipeline_audit.merge(found);
        Ok(())
    }

    /// Audit a characterization artifact at its stage boundary — this
    /// covers checkpoint-resumed artifacts that bypassed the flow-level
    /// audit — including the cross-corner band against `warm` for the
    /// cold corner. Under [`AuditPolicy::Gate`], violations quarantine
    /// only the offending cells and trigger targeted re-characterization
    /// (clean cells resume from checkpoints, zero re-simulation); the
    /// repaired artifact overwrites the stage checkpoint so later resumes
    /// see the clean library. Violations that survive repair are terminal.
    ///
    /// A **predicted** artifact (one carrying a surrogate summary) always
    /// gates, whatever the audit policy: a dirty resumed prediction is
    /// repaired by re-running the surrogate stage — its internal
    /// audit-gated fallback re-characterizes exactly the distrusted cells
    /// — rather than by [`CryoFlow::repair_library`], which would seed
    /// predicted tables into the SPICE checkpoint namespace.
    fn audit_charlib(
        &self,
        stage: Stage,
        art: CharArtifact,
        warm: Option<&Library>,
        store: &CheckpointStore,
        pipeline_audit: &mut AuditReport,
    ) -> Result<CharArtifact> {
        let fcfg = self.flow.config();
        let (temp, char_cfg) = if stage == Stage::Charlib10 {
            (10.0, &fcfg.char_10k)
        } else {
            (300.0, &fcfg.char_300k)
        };
        let predicted = art.report.surrogate.is_some();
        let blob_name = if predicted {
            "charlib10_sur"
        } else {
            stage.name()
        };
        let audit_cfg = audit::lib_audit_config(char_cfg);
        let run_audit = |lib: &Library| {
            let mut a = audit_library(stage.name(), lib, &audit_cfg);
            if let Some(w) = warm {
                a.merge(audit_cross_corner(stage.name(), w, lib, &audit_cfg));
            }
            a
        };
        // Repairs already performed at the flow level ride along.
        pipeline_audit.merge(AuditReport {
            findings: Vec::new(),
            repaired: art.report.audit.repaired.clone(),
        });
        let found = run_audit(&art.lib);
        if found.is_clean() {
            return Ok(art);
        }
        for f in &found.findings {
            eprintln!("warning: audit {}: {f}", stage.name());
        }
        if fcfg.audit_policy != AuditPolicy::Gate && !predicted {
            pipeline_audit.merge(found);
            return Ok(art);
        }
        let offenders = found.offending_cells();
        let (lib, mut report) = if predicted {
            let SurrogatePolicy::PredictWithFallback { max_rel_err } = fcfg.surrogate_policy
            else {
                // A predicted artifact resumed with the surrogate now
                // off: there is no repair path that would not launder
                // predictions into SPICE artifacts. Terminal.
                return Err(CoreError::AuditFailed {
                    stage: stage.name().to_string(),
                    report: found,
                });
            };
            let Some(w) = warm else {
                return Err(CoreError::AuditFailed {
                    stage: stage.name().to_string(),
                    report: found,
                });
            };
            self.flow.surrogate_library_with_report(temp, w, max_rel_err)?
        } else {
            self.flow.repair_library(temp, &art.lib, &offenders)?
        };
        let recheck = run_audit(&lib);
        if !recheck.is_clean() {
            return Err(CoreError::AuditFailed {
                stage: stage.name().to_string(),
                report: recheck,
            });
        }
        report.audit = AuditReport {
            findings: Vec::new(),
            repaired: offenders,
        };
        pipeline_audit.merge(report.audit.clone());
        let mean_delay = lib.stats().mean_delay;
        let art = CharArtifact {
            lib,
            report,
            mean_delay,
        };
        let payload = serde_json::to_string(&art).expect("stage artifacts serialize");
        store.store_blob(blob_name, &payload)?;
        Ok(art)
    }

    /// Run one stage under the supervision contract: resume from its
    /// checkpoint when present, otherwise execute `body` on a watchdog-
    /// supervised worker with retry-with-backoff, fold the worker's
    /// simulator/arc counters into the calling thread, and checkpoint the
    /// artifact.
    fn stage<T, F>(
        &self,
        stage: Stage,
        started: Instant,
        store: &CheckpointStore,
        records: &mut Vec<StageRecord>,
        body: F,
    ) -> Result<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn() -> Result<T> + Send + Sync + 'static,
    {
        self.stage_blob(stage, stage.name(), started, store, records, body)
    }

    /// [`Supervisor::stage`] with an explicit checkpoint-blob name, so
    /// variants of a stage (the surrogate-predicted cold corner vs the
    /// SPICE one) keep distinct resume artifacts and can never
    /// cross-contaminate each other.
    fn stage_blob<T, F>(
        &self,
        stage: Stage,
        blob_name: &str,
        started: Instant,
        store: &CheckpointStore,
        records: &mut Vec<StageRecord>,
        body: F,
    ) -> Result<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn() -> Result<T> + Send + Sync + 'static,
    {
        if let Some(blob) = store.load_blob(blob_name) {
            if let Ok(artifact) = serde_json::from_str::<T>(&blob) {
                records.push(StageRecord {
                    stage,
                    from_checkpoint: true,
                    attempts: 0,
                    wall_s: 0.0,
                    dc_solves: 0,
                    tran_solves: 0,
                    arc_evals: 0,
                });
                return Ok(artifact);
            }
            // Artifact from an older schema: recompute and overwrite.
        }

        let body = Arc::new(body);
        let stage_start = Instant::now();
        let (mut dc, mut tran, mut evals) = (0u64, 0u64, 0u64);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let remaining = self
                .cfg
                .overall_budget
                .checked_sub(started.elapsed())
                .unwrap_or(Duration::ZERO);
            let wait = self.cfg.stage_budget.min(remaining);

            let (tx, rx) = mpsc::channel();
            let plan = fault::current_plan();
            let work = Arc::clone(&body);
            let label = format!("stage:{}", stage.name());
            thread::Builder::new()
                .name(format!("stage-{}", stage.name()))
                .spawn(move || {
                    let _guard = plan.map(fault::install_guard);
                    if fault::is_active() {
                        fault::set_context(&label);
                    }
                    let out = work();
                    let _ = tx.send((out, fault::take_sim_counts(), counters::take_eval_count()));
                })
                .expect("spawn stage worker");

            match rx.recv_timeout(wait) {
                Ok((out, sims, arc_evals)) => {
                    fault::add_sim_counts(sims);
                    counters::add_eval_count(arc_evals);
                    dc += sims.dc;
                    tran += sims.tran;
                    evals += arc_evals;
                    match out {
                        Ok(artifact) => {
                            let payload = serde_json::to_string(&artifact)
                                .expect("stage artifacts serialize");
                            store.store_blob(blob_name, &payload)?;
                            records.push(StageRecord {
                                stage,
                                from_checkpoint: false,
                                attempts: attempt,
                                wall_s: stage_start.elapsed().as_secs_f64(),
                                dc_solves: dc,
                                tran_solves: tran,
                                arc_evals: evals,
                            });
                            return Ok(artifact);
                        }
                        Err(e) => {
                            if attempt >= self.cfg.max_attempts || !retryable(&e) {
                                return Err(e);
                            }
                            thread::sleep(self.cfg.backoff * (1u32 << (attempt - 1).min(16)));
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The worker is leaked: it holds no locks, and its
                    // checkpoint is never written, so the stage reruns on
                    // the next invocation.
                    return Err(CoreError::StageTimeout {
                        stage: stage.name().to_string(),
                        budget_s: wait.as_secs_f64(),
                    });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("stage {} worker panicked", stage.name());
                }
            }
        }
    }
}

/// Whether an error is worth retrying. Coverage shortfalls, configuration
/// rejections, timeouts, and post-repair audit failures are deterministic —
/// retrying only burns budget. Shared with the corner farm, whose signoff
/// shortfall is equally deterministic.
pub(crate) fn retryable(e: &CoreError) -> bool {
    !matches!(
        e,
        CoreError::Coverage { .. }
            | CoreError::Config { .. }
            | CoreError::StageTimeout { .. }
            | CoreError::AuditFailed { .. }
            | CoreError::FarmCoverage { .. }
    )
}

/// Rebuild an [`ActivityProfile`] from its checkpointed sorted form.
fn rebuild_profile(a: &ActivityArtifact) -> ActivityProfile {
    let mut p = ActivityProfile::with_default(a.default_alpha);
    for (region, alpha) in &a.regions {
        p.set_region(region, *alpha);
    }
    for (name, per_cycle) in &a.macro_accesses {
        p.set_macro_access(name, *per_cycle);
    }
    p
}

/// FNV-1a 64-bit digest, 16 hex digits.
fn fnv64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable_and_unique() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Stage::ALL.len());
        assert_eq!(names[0], "calibrate");
        assert_eq!(names[7], "classify");
    }

    #[test]
    fn pipeline_key_is_deterministic_and_jobs_invariant() {
        let dir = std::env::temp_dir().join("cryo_supervise_key_test");
        let mut cfg = crate::FlowConfig::fast(&dir);
        cfg.fault_plan = None;
        let mut cfg8 = cfg.clone();
        cfg8.jobs = 8;
        let s1 = Supervisor::new(CryoFlow::new(cfg.clone()), SupervisorConfig::default());
        let s2 = Supervisor::new(CryoFlow::new(cfg), SupervisorConfig::default());
        let s8 = Supervisor::new(CryoFlow::new(cfg8), SupervisorConfig::default());
        let k = s1.pipeline_key().unwrap();
        assert_eq!(k, s2.pipeline_key().unwrap());
        assert_eq!(k, s8.pipeline_key().unwrap(), "jobs must not shift the key");
        let sup_cfg = SupervisorConfig {
            missing_arc_policy: MissingArcPolicy::Fail,
            ..SupervisorConfig::default()
        };
        let s_fail = Supervisor::new(s1.flow().clone(), sup_cfg);
        assert_ne!(
            k,
            s_fail.pipeline_key().unwrap(),
            "policy participates in the key"
        );
    }

    #[test]
    fn fnv64_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv64("a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn retry_policy_spares_deterministic_failures() {
        assert!(!retryable(&CoreError::Config {
            var: "CRYO_FAULTS".into(),
            value: "x".into(),
            reason: "bad".into(),
        }));
        assert!(!retryable(&CoreError::StageTimeout {
            stage: "sta300".into(),
            budget_s: 0.1,
        }));
        assert!(retryable(&CoreError::Power(
            cryo_power::PowerError::NonFiniteAccumulation {
                instance: "u1".into(),
            }
        )));
    }

    #[test]
    fn rebuilt_profile_round_trips_sorted_views() {
        let mut p = ActivityProfile::with_default(0.07);
        p.set_region("alu", 0.5).set_region("ifu", 0.25);
        p.set_macro_access("l1d", 0.75);
        let art = ActivityArtifact {
            default_alpha: p.default_alpha,
            regions: p.regions_sorted(),
            macro_accesses: p.macro_accesses_sorted(),
            cycles_per_item: 41.5,
        };
        let rebuilt = rebuild_profile(&art);
        assert_eq!(rebuilt.regions_sorted(), p.regions_sorted());
        assert_eq!(rebuilt.macro_accesses_sorted(), p.macro_accesses_sorted());
        assert_eq!(rebuilt.default_alpha, p.default_alpha);
    }
}
