//! Staged compact-model parameter extraction.
//!
//! Reproduces the extraction order of Sec. III-A of the paper:
//!
//! 1. **Subthreshold** (300 K, linear region): work-function threshold
//!    (`VTH0`), interface traps and source/drain coupling (`CIT`/`CDSC`),
//!    and the leakage floor.
//! 2. **Mobility** (300 K, linear region, moderate inversion): `U0`, `UA`,
//!    `EU`.
//! 3. **Series resistance** (300 K, linear region, strong inversion):
//!    `RSW`/`RDW`.
//! 4. **DIBL + velocity saturation** (300 K, saturation region): `ETA0`,
//!    `PDIBL2`, `VSAT`, `MEXP`, `PCLM`.
//! 5. **Cryogenic coefficients** (10 K, both regions): `T0`, `TVTH`, `UA1`,
//!    `UD1`, `AT`.
//!
//! Each stage minimises the RMS log-current error on its designated curves
//! with Nelder–Mead, touching only its own parameters — mirroring how device
//! engineers keep earlier-stage fits pinned while extracting later effects.

use crate::metrics::{log_current_rms, IvCurve, IvDataset};
use crate::model::FinFet;
use crate::optimize::{nelder_mead, NmConfig};
use crate::params::ModelCard;
use crate::silicon::{VDS_LIN, VDS_SAT};
use crate::{DeviceError, Result};

/// Residual summary for one calibration stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResidual {
    /// Stage name.
    pub stage: &'static str,
    /// RMS log-current error (decades) before the stage ran.
    pub before: f64,
    /// RMS log-current error (decades) after the stage converged.
    pub after: f64,
    /// Objective evaluations spent.
    pub evals: usize,
}

/// Outcome of a full calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The fitted model card.
    pub card: ModelCard,
    /// Per-stage residuals in execution order.
    pub stages: Vec<StageResidual>,
    /// Final RMS log-current error across every curve in the dataset.
    pub final_rms: f64,
}

impl CalibrationReport {
    /// Worst per-stage post-fit residual (decades).
    #[must_use]
    pub fn worst_stage_residual(&self) -> f64 {
        self.stages.iter().map(|s| s.after).fold(0.0, f64::max)
    }
}

/// Calibration configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Acceptable final RMS error in decades of current.
    pub target_rms: f64,
    /// Evaluation budget per stage.
    pub evals_per_stage: usize,
    /// Instrument floor passed to the error metric, amperes.
    pub noise_floor: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            target_rms: 0.20,
            evals_per_stage: 900,
            noise_floor: 2.5e-11,
        }
    }
}

/// Staged extractor binding a measurement dataset to a starting card.
#[derive(Debug, Clone)]
pub struct Calibrator {
    dataset: IvDataset,
    config: CalibrationConfig,
}

/// Which parameters a stage optimises, expressed as getters/setters.
struct Stage {
    name: &'static str,
    /// `(lo, hi)` bounds per parameter.
    bounds: Vec<(f64, f64)>,
    read: fn(&ModelCard) -> Vec<f64>,
    write: fn(&mut ModelCard, &[f64]),
    /// Curves `(temp, vds)` the stage fits against.
    conditions: Vec<(f64, f64)>,
}

impl Calibrator {
    /// Create a calibrator over `dataset`.
    #[must_use]
    pub fn new(dataset: IvDataset, config: CalibrationConfig) -> Self {
        Self { dataset, config }
    }

    /// The dataset being fitted.
    #[must_use]
    pub fn dataset(&self) -> &IvDataset {
        &self.dataset
    }

    fn stage_error(&self, card: &ModelCard, conditions: &[(f64, f64)]) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for &(temp, vds) in conditions {
            let Ok(reference) = self.dataset.curve(temp, vds) else {
                continue;
            };
            let dev = FinFet::new(card, temp, 1);
            let model = IvCurve::sweep(&dev, vds, reference.vgs_max(), reference.points.len() - 1);
            let e = log_current_rms(reference, &model, self.config.noise_floor);
            total += e * e;
            n += 1;
        }
        if n == 0 {
            f64::INFINITY
        } else {
            (total / n as f64).sqrt()
        }
    }

    fn stages() -> Vec<Stage> {
        vec![
            Stage {
                name: "subthreshold",
                bounds: vec![(0.05, 0.45), (0.0, 0.30), (1e-13, 8e-11)],
                read: |c| vec![c.vth0, c.cdsc + c.cit, c.i_floor],
                write: |c, x| {
                    c.vth0 = x[0];
                    // Split the lumped ideality between CDSC and CIT with the
                    // nominal 55/45 proportion; only the sum is observable.
                    c.cdsc = 0.55 * x[1];
                    c.cit = 0.45 * x[1];
                    c.i_floor = x[2];
                },
                conditions: vec![(300.0, VDS_LIN)],
            },
            Stage {
                name: "mobility",
                bounds: vec![(0.005, 0.10), (0.2, 3.0), (1.0, 2.5)],
                read: |c| vec![c.u0, c.ua, c.eu],
                write: |c, x| {
                    c.u0 = x[0];
                    c.ua = x[1];
                    c.eu = x[2];
                },
                conditions: vec![(300.0, VDS_LIN)],
            },
            Stage {
                name: "series_resistance",
                bounds: vec![(1_000.0, 40_000.0)],
                read: |c| vec![c.rsw],
                write: |c, x| {
                    c.rsw = x[0];
                    c.rdw = x[0];
                },
                conditions: vec![(300.0, VDS_LIN)],
            },
            Stage {
                name: "dibl_vsat",
                bounds: vec![(0.0, 0.15), (0.0, 1.0), (3e4, 2e5), (1.5, 8.0), (0.0, 0.3)],
                read: |c| vec![c.eta0, c.pdibl2, c.vsat, c.mexp, c.pclm],
                write: |c, x| {
                    c.eta0 = x[0];
                    c.pdibl2 = x[1];
                    c.vsat = x[2];
                    c.mexp = x[3];
                    c.pclm = x[4];
                },
                conditions: vec![(300.0, VDS_SAT), (300.0, VDS_LIN)],
            },
            Stage {
                name: "cryogenic",
                bounds: vec![
                    (20.0, 90.0),
                    (0.02, 0.20),
                    (0.0, 5.0),
                    (0.0, 5.0),
                    (0.0, 0.4),
                ],
                read: |c| vec![c.t0, c.tvth, c.ua1, c.ud1, c.at],
                write: |c, x| {
                    c.t0 = x[0];
                    c.tvth = x[1];
                    c.ua1 = x[2];
                    c.ud1 = x[3];
                    c.at = x[4];
                },
                conditions: vec![(10.0, VDS_LIN), (10.0, VDS_SAT)],
            },
        ]
    }

    /// Run the staged extraction starting from `initial`.
    ///
    /// # Errors
    ///
    /// [`DeviceError::MissingSweep`] if the dataset lacks the 300 K linear
    /// curve (nothing can be extracted without it), or
    /// [`DeviceError::CalibrationFailed`] if the overall residual ends above
    /// the configured target.
    pub fn run(&self, initial: &ModelCard) -> Result<CalibrationReport> {
        self.dataset
            .curve(300.0, VDS_LIN)
            .map_err(|_| DeviceError::MissingSweep {
                what: "300 K linear-region transfer curve",
            })?;
        let mut card = initial.clone();
        let mut stages_out = Vec::new();
        for stage in Self::stages() {
            let before = self.stage_error(&card, &stage.conditions);
            let x0 = (stage.read)(&card);
            let base = card.clone();
            let objective = |x: &[f64]| {
                let mut trial = base.clone();
                (stage.write)(&mut trial, x);
                self.stage_error(&trial, &stage.conditions)
            };
            let cfg = NmConfig {
                max_evals: self.config.evals_per_stage,
                ..NmConfig::default()
            };
            let result = nelder_mead(objective, &x0, &stage.bounds, &cfg);
            // Keep the stage result only if it improved the fit.
            if result.fx <= before {
                (stage.write)(&mut card, &result.x);
            }
            stages_out.push(StageResidual {
                stage: stage.name,
                before,
                after: result.fx.min(before),
                evals: result.evals,
            });
        }
        let all: Vec<(f64, f64)> = self
            .dataset
            .curves
            .iter()
            .map(|c| (c.temp, c.vds))
            .collect();
        let final_rms = self.stage_error(&card, &all);
        if final_rms > self.config.target_rms {
            return Err(DeviceError::CalibrationFailed {
                stage: "overall",
                residual: final_rms,
                target: self.config.target_rms,
            });
        }
        Ok(CalibrationReport {
            card,
            stages: stages_out,
            final_rms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;
    use crate::silicon::VirtualWafer;

    /// A deliberately detuned starting point, as a fresh PDK bring-up would
    /// begin from.
    fn detuned(polarity: Polarity) -> ModelCard {
        let mut card = ModelCard::nominal(polarity);
        card.vth0 *= 1.35;
        card.u0 *= 0.70;
        card.ua *= 1.4;
        card.rsw *= 1.8;
        card.rdw = card.rsw;
        card.eta0 *= 0.5;
        card.vsat *= 1.3;
        card.t0 *= 1.4;
        card.tvth *= 0.6;
        card
    }

    #[test]
    fn calibration_recovers_nfet() {
        let wafer = VirtualWafer::new(11);
        let ds = wafer.measure_campaign(Polarity::N);
        let cal = Calibrator::new(ds, CalibrationConfig::default());
        let report = cal
            .run(&detuned(Polarity::N))
            .expect("calibration converges");
        assert!(report.final_rms < 0.20, "final rms = {}", report.final_rms);
        // Hidden reference comparison (test-only oracle).
        let truth = wafer.hidden_reference(Polarity::N);
        assert!(
            (report.card.vth0 - truth.vth0).abs() < 0.03,
            "VTH0: fitted {} vs true {}",
            report.card.vth0,
            truth.vth0
        );
    }

    #[test]
    fn calibration_recovers_pfet() {
        let wafer = VirtualWafer::new(12);
        let ds = wafer.measure_campaign(Polarity::P);
        let cal = Calibrator::new(ds, CalibrationConfig::default());
        let report = cal
            .run(&detuned(Polarity::P))
            .expect("calibration converges");
        assert!(report.final_rms < 0.20, "final rms = {}", report.final_rms);
    }

    #[test]
    fn stages_run_in_paper_order() {
        let names: Vec<&str> = Calibrator::stages().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "subthreshold",
                "mobility",
                "series_resistance",
                "dibl_vsat",
                "cryogenic"
            ]
        );
    }

    #[test]
    fn stages_never_regress() {
        let wafer = VirtualWafer::new(13);
        let ds = wafer.measure_campaign(Polarity::N);
        let cal = Calibrator::new(ds, CalibrationConfig::default());
        let report = cal.run(&detuned(Polarity::N)).unwrap();
        for s in &report.stages {
            assert!(
                s.after <= s.before + 1e-12,
                "stage {} regressed: {} -> {}",
                s.stage,
                s.before,
                s.after
            );
        }
    }

    #[test]
    fn missing_room_temperature_data_is_an_error() {
        let wafer = VirtualWafer::new(14);
        let mut ds = wafer.measure_campaign(Polarity::N);
        ds.curves.retain(|c| c.temp < 100.0);
        let cal = Calibrator::new(ds, CalibrationConfig::default());
        let err = cal.run(&ModelCard::nominal(Polarity::N)).unwrap_err();
        assert!(matches!(err, DeviceError::MissingSweep { .. }));
    }
}
