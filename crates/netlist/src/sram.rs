//! SRAM macro electrical model.
//!
//! The ASAP7 PDK ships SRAM IP with physical size and timing but **no power
//! data**; the paper fills that gap from its own calibrated transistor model
//! (Sec. V-A, citing its ref. \[24\]). This module does the same: leakage follows the
//! device model's off-current at the macro's temperature, and access energy
//! follows a bitline/peripheral capacitance estimate.
//!
//! One geometry factor — the effective leaking width per bit cell including
//! its share of the periphery — is calibrated once so that the paper's
//! 581 KB of on-chip SRAM leaks ≈193 mW at 300 K at nominal 0.7 V with
//! ultra-low-Vth devices (DESIGN.md §5). The 10 K value is then a pure
//! prediction of the device model.

use cryo_device::{FinFet, ModelCard};

/// Effective leaking fins per bit cell (array + periphery share),
/// calibrated at 300 K per DESIGN.md §5.
pub const LEAK_FINS_PER_BIT: f64 = 10.9;

/// An SRAM macro: capacity plus derived timing/power figures.
#[derive(Debug, Clone, PartialEq)]
pub struct SramMacro {
    /// Macro name, e.g. `L2_BANK`.
    pub name: String,
    /// Capacity in kilobytes.
    pub kbytes: f64,
    /// Word width in bits (per access).
    pub word_bits: u32,
    /// Clock-to-data-out delay at 300 K, seconds.
    pub clk_to_out_300k: f64,
    /// Input setup requirement, seconds.
    pub setup: f64,
}

impl SramMacro {
    /// A macro sized like the paper's L1 instruction/data arrays (16 KB).
    #[must_use]
    pub fn l1(name: &str) -> Self {
        Self {
            name: name.to_string(),
            kbytes: 16.0,
            word_bits: 64,
            clk_to_out_300k: 0.42e-9,
            setup: 0.05e-9,
        }
    }

    /// A macro sized like one bank of the paper's 512 KB L2.
    #[must_use]
    pub fn l2_bank(name: &str, kbytes: f64) -> Self {
        Self {
            name: name.to_string(),
            kbytes,
            word_bits: 128,
            clk_to_out_300k: 0.78e-9,
            setup: 0.06e-9,
        }
    }

    /// A small register-file style macro.
    #[must_use]
    pub fn regfile(name: &str, kbytes: f64) -> Self {
        Self {
            name: name.to_string(),
            kbytes,
            word_bits: 64,
            clk_to_out_300k: 0.28e-9,
            setup: 0.04e-9,
        }
    }

    /// Number of bits stored.
    #[must_use]
    pub fn bits(&self) -> f64 {
        self.kbytes * 1024.0 * 8.0
    }

    /// Leakage power at the given operating point, watts.
    ///
    /// Derived from the n-FinFET off-current (`Vgs = 0`, `Vds = Vdd`) at
    /// `temp`, scaled by the calibrated per-bit effective width.
    #[must_use]
    pub fn leakage(&self, nfet: &ModelCard, temp: f64, vdd: f64) -> f64 {
        let dev = FinFet::new(nfet, temp, 1);
        let ioff = dev.ids(0.0, vdd).abs();
        ioff * LEAK_FINS_PER_BIT * self.bits() * vdd
    }

    /// Energy per read/write access, joules.
    ///
    /// Bitline + wordline + periphery capacitance estimate: grows with the
    /// square root of capacity (row/column split).
    #[must_use]
    pub fn access_energy(&self, vdd: f64) -> f64 {
        let kb = self.kbytes.max(0.25);
        // fF switched per access: word width bitlines plus decode/sense.
        let c_ff = 6.0 * f64::from(self.word_bits) * (kb / 16.0).sqrt() + 400.0;
        c_ff * 1e-15 * vdd * vdd
    }

    /// Clock-to-out delay at a corner, scaled from 300 K by the same factor
    /// the characterized logic cells shifted (`delay_scale` =
    /// corner mean delay / 300 K mean delay).
    #[must_use]
    pub fn clk_to_out(&self, delay_scale: f64) -> f64 {
        self.clk_to_out_300k * delay_scale
    }
}

/// Total leakage of a set of macros, watts.
#[must_use]
pub fn total_leakage(macros: &[SramMacro], nfet: &ModelCard, temp: f64, vdd: f64) -> f64 {
    macros.iter().map(|m| m.leakage(nfet, temp, vdd)).sum()
}

/// Convenience: the paper's on-chip memory configuration (16 KB L1I +
/// 16 KB L1D + tags + 512 KB L2 + register files ≈ 581 KB total).
#[must_use]
pub fn paper_memory_set() -> Vec<SramMacro> {
    let mut macros = vec![
        SramMacro::l1("l1i_data"),
        SramMacro::l1("l1d_data"),
        SramMacro::regfile("l1i_tags", 2.0),
        SramMacro::regfile("l1d_tags", 2.0),
        SramMacro::regfile("int_regfile", 0.5),
        SramMacro::regfile("fp_regfile", 0.5),
        SramMacro::regfile("tlb", 2.0),
        SramMacro::regfile("l2_tags", 30.0),
    ];
    // 512 KB L2 in four banks.
    for bank in 0..4 {
        macros.push(SramMacro::l2_bank(&format!("l2_bank{bank}"), 128.0));
    }
    macros
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryo_device::Polarity;

    #[test]
    fn paper_set_totals_581_kb() {
        let total: f64 = paper_memory_set().iter().map(|m| m.kbytes).sum();
        assert!(
            (total - 581.0).abs() < 1.0,
            "the paper reports 581 KB of SRAM; we model {total} KB"
        );
    }

    #[test]
    fn leakage_calibration_hits_paper_scale_at_300k() {
        let nfet = ModelCard::nominal(Polarity::N);
        let total = total_leakage(&paper_memory_set(), &nfet, 300.0, 0.7);
        assert!(
            (0.15..0.25).contains(&total),
            "paper: ≈193 mW of SRAM leakage at 300 K, got {:.1} mW",
            total * 1e3
        );
    }

    #[test]
    fn leakage_collapses_at_10k() {
        let nfet = ModelCard::nominal(Polarity::N);
        let p300 = total_leakage(&paper_memory_set(), &nfet, 300.0, 0.7);
        let p10 = total_leakage(&paper_memory_set(), &nfet, 10.0, 0.7);
        let reduction = 1.0 - p10 / p300;
        assert!(
            reduction > 0.99,
            "paper: 99.76 % reduction; got {:.2} % ({:.3e} -> {:.3e} W)",
            reduction * 100.0,
            p300,
            p10
        );
        assert!(
            p10 < 1e-3,
            "10 K SRAM leakage under a milliwatt: {p10:.3e} W"
        );
    }

    #[test]
    fn access_energy_grows_with_capacity() {
        let small = SramMacro::l1("a").access_energy(0.7);
        let large = SramMacro::l2_bank("b", 128.0).access_energy(0.7);
        assert!(large > small);
        // Picojoule scale.
        assert!(small > 0.1e-12 && small < 50e-12, "{small:e}");
    }

    #[test]
    fn timing_scales_with_corner() {
        let m = SramMacro::l1("a");
        assert!((m.clk_to_out(1.0) - 0.42e-9).abs() < 1e-15);
        assert!(m.clk_to_out(1.05) > m.clk_to_out(1.0));
    }
}
