use cryo_cells::{topology, CharConfig, Characterizer};
use cryo_device::{ModelCard, Polarity};

fn main() {
    for temp in [300.0, 10.0] {
        let e = Characterizer::new(
            &ModelCard::nominal(Polarity::N),
            &ModelCard::nominal(Polarity::P),
            CharConfig::fast(temp),
        );
        for cell in [
            topology::inverter(1),
            topology::nand(2, 1),
            topology::xor2(1),
            topology::dff(1),
        ] {
            let c = e.characterize_cell(&cell).unwrap();
            println!(
                "{temp:>5}K {:>8}: avg leak {:.3e} W  states {:?}",
                c.name,
                c.average_leakage(),
                c.leakage_states
                    .iter()
                    .map(|(s, w)| format!("{s}:{w:.2e}"))
                    .collect::<Vec<_>>()
            );
        }
    }
}
