//! The paper's classification workloads as RISC-V assembly generators.
//!
//! Two classifiers (Sec. V-B), written the way a C compiler would lower
//! them for RV64IMFD:
//!
//! - **kNN** ([`knn_source`]): per measurement, squared Euclidean distances
//!   to the qubit's two calibration centers, compared without the square
//!   root (the paper's radicand optimization).
//! - **HDC** ([`hdc_source`]): thermometer quantization into item
//!   hypervectors (128 bit), XOR binding, and Hamming distances to the two
//!   class hypervectors via the **software** SWAR popcount — base RISC-V
//!   has no popcount instruction, which the paper identifies as the HDC
//!   bottleneck. With `use_cpop` the `Zbb cpop` instruction replaces the
//!   SWAR sequence (the paper's "hardware support" what-if).
//! - **Dhrystone-like** ([`dhrystone_source`]): the integer mix used as the
//!   "general average" workload for the power analysis.
//!
//! Results land in the `out` byte array (label `out`), one label per
//! measurement.

/// Number of quantization levels per I/Q axis (32 item hypervectors total,
/// as in the paper).
pub const HDC_LEVELS: usize = 16;

fn fbits(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

/// Generate the kNN classification program.
///
/// `centers[i] = [xc0, yc0, xc1, yc1]` per qubit; `meas[i] = (xm, ym)` is
/// the measurement to classify against qubit `i`'s centers.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn knn_source(centers: &[[f64; 4]], meas: &[(f64, f64)]) -> String {
    knn_source_rounds(centers, meas, 1)
}

/// [`knn_source`] with an outer repetition loop: the classification pass
/// runs `rounds` times, so steady-state (warm-cache) cycles per
/// classification can be measured as the marginal cost of extra rounds —
/// matching the paper's "average clock cycles" methodology.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or `rounds == 0`.
#[must_use]
pub fn knn_source_rounds(centers: &[[f64; 4]], meas: &[(f64, f64)], rounds: u64) -> String {
    assert_eq!(centers.len(), meas.len(), "one measurement per qubit");
    assert!(!centers.is_empty(), "need at least one qubit");
    assert!(rounds > 0, "at least one round");
    let n = centers.len();
    let mut s = String::new();
    s.push_str(&format!(
        ".text
    li s0, {rounds}
knn_round:
    la a0, cal
    la a1, meas
    la a2, out
    li a3, {n}
knn_loop:
    fld fa0, 0(a1)        # xm
    fld fa1, 8(a1)        # ym
    fld fa2, 0(a0)        # xc0
    fld fa3, 8(a0)        # yc0
    fld fa4, 16(a0)       # xc1
    fld fa5, 24(a0)       # yc1
    fsub.d fa6, fa0, fa2
    fsub.d fa7, fa1, fa3
    fmul.d fa6, fa6, fa6
    fmul.d fa7, fa7, fa7
    fadd.d fa6, fa6, fa7  # d0 (radicand; sqrt elided)
    fsub.d ft0, fa0, fa4
    fsub.d ft1, fa1, fa5
    fmul.d ft0, ft0, ft0
    fmul.d ft1, ft1, ft1
    fadd.d ft0, ft0, ft1  # d1
    flt.d t0, ft0, fa6    # label = (d1 < d0)
    sb t0, 0(a2)
    addi a0, a0, 32
    addi a1, a1, 16
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, knn_loop
    addi s0, s0, -1
    bnez s0, knn_round
    ecall
.data
cal:
"
    ));
    for c in centers {
        s.push_str(&format!(
            "    .dword {}, {}, {}, {}\n",
            fbits(c[0]),
            fbits(c[1]),
            fbits(c[2]),
            fbits(c[3])
        ));
    }
    s.push_str("meas:\n");
    for (x, y) in meas {
        s.push_str(&format!("    .dword {}, {}\n", fbits(*x), fbits(*y)));
    }
    s.push_str(&format!("out:\n    .zero {n}\n"));
    s
}

/// The SWAR software popcount of register `a4` into `a4`, clobbering `t5`.
/// Mask registers `s2..s5` must be preloaded.
fn swar_popcount() -> &'static str {
    "    srli t5, a4, 1
    and t5, t5, s2
    sub a4, a4, t5
    and t5, a4, s3
    srli a4, a4, 2
    and a4, a4, s3
    add a4, t5, a4
    srli t5, a4, 4
    add a4, a4, t5
    and a4, a4, s4
    mul a4, a4, s5
    srli a4, a4, 56
"
}

/// Generate the HDC classification program.
///
/// - `items_x`/`items_y`: `HDC_LEVELS` 128-bit item hypervectors each, as
///   `[lo, hi]` word pairs.
/// - `centers[i] = [c0_lo, c0_hi, c1_lo, c1_hi]` per qubit.
/// - `meas[i]` is classified against qubit `i`.
/// - `qmin`/`qscale` quantize a coordinate: `level = (v - qmin) * qscale`,
///   clamped to `0..HDC_LEVELS`.
/// - `use_cpop` replaces the software popcount with the `Zbb` instruction.
///
/// # Panics
///
/// Panics on inconsistent table sizes.
#[must_use]
pub fn hdc_source(
    items_x: &[[u64; 2]],
    items_y: &[[u64; 2]],
    centers: &[[u64; 4]],
    meas: &[(f64, f64)],
    qmin: f64,
    qscale: f64,
    use_cpop: bool,
) -> String {
    hdc_source_rounds(items_x, items_y, centers, meas, qmin, qscale, use_cpop, 1)
}

/// [`hdc_source`] with an outer repetition loop (see
/// [`knn_source_rounds`]).
///
/// # Panics
///
/// Panics on inconsistent table sizes or `rounds == 0`.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn hdc_source_rounds(
    items_x: &[[u64; 2]],
    items_y: &[[u64; 2]],
    centers: &[[u64; 4]],
    meas: &[(f64, f64)],
    qmin: f64,
    qscale: f64,
    use_cpop: bool,
    rounds: u64,
) -> String {
    assert!(rounds > 0, "at least one round");
    assert_eq!(items_x.len(), HDC_LEVELS);
    assert_eq!(items_y.len(), HDC_LEVELS);
    assert_eq!(centers.len(), meas.len());
    assert!(!centers.is_empty());
    let n = centers.len();
    let max_level = HDC_LEVELS as i64 - 1;
    let popcount = |tag: &str| -> String {
        let _ = tag;
        if use_cpop {
            "    cpop a4, a4\n".to_string()
        } else {
            // Without Zbb, compilers lower popcount to a `__popcountdi2`
            // library call — the call overhead is part of the paper's HDC
            // cost.
            "    call popcount64\n".to_string()
        }
    };
    let mut s = String::new();
    s.push_str(&format!(
        ".text
    li s0, {rounds}
    la t6, qparams
    fld fs0, 0(t6)        # qmin
    fld fs1, 8(t6)        # qscale
    la t6, masks
    ld s2, 0(t6)
    ld s3, 8(t6)
    ld s4, 16(t6)
    ld s5, 24(t6)
    la s6, items_x
    la s7, items_y
hdc_round:
    la a0, hdc_centers
    la a1, meas
    la a2, out
    li a3, {n}
hdc_loop:
    # --- quantize x ---
    fld fa0, 0(a1)
    fsub.d fa0, fa0, fs0
    fmul.d fa0, fa0, fs1
    fcvt.w.d t0, fa0
    bge t0, zero, qx_lo
    li t0, 0
qx_lo:
    li t5, {max_level}
    blt t0, t5, qx_hi
    mv t0, t5
qx_hi:
    # --- quantize y ---
    fld fa1, 8(a1)
    fsub.d fa1, fa1, fs0
    fmul.d fa1, fa1, fs1
    fcvt.w.d t1, fa1
    bge t1, zero, qy_lo
    li t1, 0
qy_lo:
    li t5, {max_level}
    blt t1, t5, qy_hi
    mv t1, t5
qy_hi:
    # --- bind measurement: m = items_x[qx] ^ items_y[qy] ---
    slli t0, t0, 4
    add t0, t0, s6
    slli t1, t1, 4
    add t1, t1, s7
    ld t2, 0(t0)          # x lo
    ld t3, 8(t0)          # x hi
    ld t4, 0(t1)          # y lo
    xor t2, t2, t4
    ld t4, 8(t1)          # y hi
    xor t3, t3, t4
    # --- Hamming to class 0 ---
    ld a4, 0(a0)
    xor a4, a4, t2
"
    ));
    s.push_str(&popcount("c0lo"));
    s.push_str(
        "    mv a5, a4
    ld a4, 8(a0)
    xor a4, a4, t3
",
    );
    s.push_str(&popcount("c0hi"));
    s.push_str(
        "    add a5, a5, a4       # d0
    # --- Hamming to class 1 ---
    ld a4, 16(a0)
    xor a4, a4, t2
",
    );
    s.push_str(&popcount("c1lo"));
    s.push_str(
        "    mv a6, a4
    ld a4, 24(a0)
    xor a4, a4, t3
",
    );
    s.push_str(&popcount("c1hi"));
    s.push_str(
        "    add a6, a6, a4       # d1
    slt t0, a6, a5        # label = (d1 < d0)
    sb t0, 0(a2)
    addi a0, a0, 32
    addi a1, a1, 16
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, hdc_loop
    addi s0, s0, -1
    bnez s0, hdc_round
    ecall
",
    );
    if !use_cpop {
        s.push_str("popcount64:\n");
        s.push_str(swar_popcount());
        s.push_str("    ret\n");
    }
    s.push_str(
        ".data
masks:
    .dword 0x5555555555555555, 0x3333333333333333, 0x0f0f0f0f0f0f0f0f, 0x0101010101010101
qparams:
",
    );
    s.push_str(&format!(
        "    .dword {}, {}\nitems_x:\n",
        fbits(qmin),
        fbits(qscale)
    ));
    for hv in items_x {
        s.push_str(&format!("    .dword 0x{:016x}, 0x{:016x}\n", hv[0], hv[1]));
    }
    s.push_str("items_y:\n");
    for hv in items_y {
        s.push_str(&format!("    .dword 0x{:016x}, 0x{:016x}\n", hv[0], hv[1]));
    }
    s.push_str("hdc_centers:\n");
    for c in centers {
        s.push_str(&format!(
            "    .dword 0x{:016x}, 0x{:016x}, 0x{:016x}, 0x{:016x}\n",
            c[0], c[1], c[2], c[3]
        ));
    }
    s.push_str("meas:\n");
    for (x, y) in meas {
        s.push_str(&format!("    .dword {}, {}\n", fbits(*x), fbits(*y)));
    }
    s.push_str(&format!("out:\n    .zero {n}\n"));
    s
}

/// A Dhrystone-flavoured synthetic integer workload: record copies, string
/// comparison loops, arithmetic, and branching, `iters` times around.
#[must_use]
pub fn dhrystone_source(iters: u64) -> String {
    format!(
        ".text
    li s0, {iters}
dhry_outer:
    # record assignment: copy 8 dwords
    la a0, rec_a
    la a1, rec_b
    li t0, 8
copy_loop:
    ld t1, 0(a0)
    sd t1, 0(a1)
    addi a0, a0, 8
    addi a1, a1, 8
    addi t0, t0, -1
    bnez t0, copy_loop
    # arithmetic block
    li t0, 2
    li t1, 3
    mul t2, t0, t1
    addi t2, t2, 7
    div t3, t2, t0
    sub t3, t3, t1
    # string compare: 16 bytes
    la a0, str_a
    la a1, str_b
    li t0, 16
str_loop:
    lbu t1, 0(a0)
    lbu t2, 0(a1)
    bne t1, t2, str_diff
    addi a0, a0, 1
    addi a1, a1, 1
    addi t0, t0, -1
    bnez t0, str_loop
str_diff:
    # array indexing with a data-dependent branch
    la a0, arr
    andi t1, s0, 7
    slli t1, t1, 3
    add a0, a0, t1
    ld t2, 0(a0)
    addi t2, t2, 1
    sd t2, 0(a0)
    andi t3, t2, 1
    beqz t3, dhry_even
    addi s1, s1, 1
dhry_even:
    addi s0, s0, -1
    bnez s0, dhry_outer
    ecall
.data
rec_a: .dword 1, 2, 3, 4, 5, 6, 7, 8
rec_b: .zero 64
str_a: .byte 68, 72, 82, 89, 83, 84, 79, 78, 69, 32, 80, 82, 79, 71, 0, 0
str_b: .byte 68, 72, 82, 89, 83, 84, 79, 78, 69, 32, 80, 82, 79, 71, 0, 1
arr:   .dword 0, 0, 0, 0, 0, 0, 0, 0
out:   .zero 8
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::Cpu;
    use crate::pipeline::{PipelineConfig, PipelineModel};

    fn run_to_out(src: &str, n: usize) -> Vec<u8> {
        let p = assemble(src).unwrap();
        let out = p.label("out").expect("out label");
        let mut cpu = Cpu::new();
        cpu.load_program(&p);
        cpu.run(50_000_000).unwrap();
        cpu.read_mem(out, n).unwrap().to_vec()
    }

    #[test]
    fn knn_classifies_obvious_points() {
        // Qubit 0: centers at (0,0) and (10,10); measurement near (10,10).
        // Qubit 1: same centers; measurement near (0,0).
        let centers = vec![[0.0, 0.0, 10.0, 10.0], [0.0, 0.0, 10.0, 10.0]];
        let meas = vec![(9.0, 9.5), (0.5, -0.5)];
        let labels = run_to_out(&knn_source(&centers, &meas), 2);
        assert_eq!(labels, vec![1, 0]);
    }

    #[test]
    fn knn_ties_break_toward_zero() {
        let centers = vec![[-1.0, 0.0, 1.0, 0.0]];
        let meas = vec![(0.0, 0.0)];
        let labels = run_to_out(&knn_source(&centers, &meas), 1);
        assert_eq!(labels, vec![0], "equidistant -> not strictly closer to 1");
    }

    #[test]
    fn hdc_classifies_with_item_tables() {
        // Deterministic pseudo-random item hypervectors.
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut rnd = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let items_x: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
        let items_y: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
        // Centers: encode level (2,2) as class 0 and (13,13) as class 1.
        let enc = |ix: usize, iy: usize| -> [u64; 2] {
            [
                items_x[ix][0] ^ items_y[iy][0],
                items_x[ix][1] ^ items_y[iy][1],
            ]
        };
        let c0 = enc(2, 2);
        let c1 = enc(13, 13);
        let centers = vec![[c0[0], c0[1], c1[0], c1[1]]; 2];
        // qmin 0, qscale 1: coordinates are levels directly.
        let meas = vec![(2.0, 2.0), (13.0, 13.0)];
        let src = hdc_source(&items_x, &items_y, &centers, &meas, 0.0, 1.0, false);
        let labels = run_to_out(&src, 2);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn hdc_cpop_variant_matches_swar() {
        let items_x: Vec<[u64; 2]> = (0..HDC_LEVELS)
            .map(|i| [i as u64 * 7, !(i as u64)])
            .collect();
        let items_y: Vec<[u64; 2]> = (0..HDC_LEVELS)
            .map(|i| [i as u64 ^ 0xAA, i as u64 * 3])
            .collect();
        let centers = vec![[0xDEAD, 0xBEEF, 0xCAFE, 0xF00D]; 3];
        let meas = vec![(1.0, 2.0), (7.0, 3.0), (15.0, 0.0)];
        let soft = hdc_source(&items_x, &items_y, &centers, &meas, 0.0, 1.0, false);
        let hard = hdc_source(&items_x, &items_y, &centers, &meas, 0.0, 1.0, true);
        let l_soft = run_to_out(&soft, 3);
        // cpop needs the extension enabled; run through the pipeline model.
        let p = assemble(&hard).unwrap();
        let out = p.label("out").unwrap();
        let mut m = PipelineModel::new(PipelineConfig {
            enable_cpop: true,
            ..PipelineConfig::default()
        });
        m.cpu.load_program(&p);
        m.run(10_000_000).unwrap();
        let l_hard = m.cpu.read_mem(out, 3).unwrap().to_vec();
        assert_eq!(l_soft, l_hard);
    }

    #[test]
    fn quantizer_clamps_out_of_range() {
        let items_x: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|i| [1 << i, 0]).collect();
        let items_y: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|i| [0, 1 << i]).collect();
        let enc = |ix: usize, iy: usize| -> [u64; 2] {
            [
                items_x[ix][0] ^ items_y[iy][0],
                items_x[ix][1] ^ items_y[iy][1],
            ]
        };
        let c0 = enc(0, 0);
        let c1 = enc(15, 15);
        let centers = vec![[c0[0], c0[1], c1[0], c1[1]]; 2];
        // Way out of range on both sides: clamps to level 0 and 15.
        let meas = vec![(-100.0, -100.0), (100.0, 100.0)];
        let src = hdc_source(&items_x, &items_y, &centers, &meas, 0.0, 1.0, false);
        let labels = run_to_out(&src, 2);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn hdc_is_slower_than_knn_without_popcount_hardware() {
        // The paper's Table 2 headline: HDC ≈ 3.3× slower than kNN.
        let n = 20;
        let centers_f: Vec<[f64; 4]> = (0..n).map(|_| [0.0, 0.0, 1.0, 1.0]).collect();
        let meas: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * 0.05, 0.3)).collect();
        let knn = knn_source(&centers_f, &meas);
        let items: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|i| [i as u64, !(i as u64)]).collect();
        let centers_h = vec![[1, 2, 3, 4]; n];
        let hdc = hdc_source(&items, &items, &centers_h, &meas, 0.0, 10.0, false);
        let time = |src: &str| -> f64 {
            let p = assemble(src).unwrap();
            let mut m = PipelineModel::new(PipelineConfig::default());
            m.cpu.load_program(&p);
            let s = m.run(10_000_000).unwrap();
            s.cycles as f64 / n as f64
        };
        let knn_cpc = time(&knn);
        let hdc_cpc = time(&hdc);
        let ratio = hdc_cpc / knn_cpc;
        assert!(
            ratio > 2.0,
            "HDC should be much slower: {hdc_cpc:.1} vs {knn_cpc:.1} cycles/classification"
        );
    }

    #[test]
    fn dhrystone_runs_to_completion() {
        let p = assemble(&dhrystone_source(50)).unwrap();
        let mut m = PipelineModel::new(PipelineConfig::default());
        m.cpu.load_program(&p);
        let s = m.run(10_000_000).unwrap();
        assert!(s.instructions > 2000);
        assert!(s.taken_branches > 100);
    }
}
