//! Vendored subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace ships the
//! slice of criterion its benches use: `Criterion`, `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros. Timing
//! is a plain `Instant` loop reporting the mean per-iteration time — enough
//! to compare runs by hand, with none of the statistical machinery.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (only distinguishes batch duration here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`cargo bench` passes
    /// `--bench`); the stub has nothing to configure.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.default_samples;
        run_benchmark(id, samples, f);
        self
    }

    /// No-op; kept for `criterion_main!` parity with the real crate.
    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Time one closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// End the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label}: {mean:?}/iter ({} iters)",
        bencher.iters.max(1)
    );
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            std::hint::black_box(&out);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            std::hint::black_box(&out);
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            let out = routine(&mut input);
            self.total += start.elapsed();
            self.iters += 1;
            std::hint::black_box(&out);
        }
    }
}

/// Hide a value from the optimizer (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        let mut count = 0u64;
        g.sample_size(5).bench_function("count", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(count, 5);
    }
}
