#![warn(missing_docs)]
//! ASAP7-style standard-cell topologies and SPICE-driven library
//! characterization.
//!
//! This crate plays the role of the ASAP7 PDK cell netlists plus Synopsys
//! PrimeLib in the paper's flow (Sec. IV):
//!
//! - [`topology`] — programmatic transistor-level netlists for the cell
//!   families a 7-nm-class library ships: inverters/buffers, NAND/NOR/
//!   AND/OR up to four inputs, AOI/OAI complex gates, XOR/XNOR, muxes,
//!   majority/adder cells, flip-flops (plain and resettable), clock cells,
//!   and tie cells — across drive strengths, 169 cells total (the paper
//!   characterizes 200 ASAP7 cells).
//! - [`charlib`] — the characterization engine: for every cell, every
//!   timing arc is exercised over a slew × load grid (7×7 by default, as in
//!   the paper) with `cryo-spice` transients; delays, output transitions,
//!   switching energies, per-state leakage, and pin capacitances are
//!   collected into a [`cryo_liberty::Library`].
//! - [`cache`] — a JSON disk cache so the multi-minute characterization run
//!   happens once per (model card, configuration) pair.
//! - [`checkpoint`] — per-cell checkpoint/resume: each finished cell is
//!   persisted immediately (atomic, versioned, checksummed) so a crash at
//!   cell 150/169 resumes instead of restarting, and corrupt entries are
//!   quarantined and re-characterized.
//! - [`sched`] — the work-stealing scheduler behind parallel per-cell
//!   characterization (`CharConfig::jobs`, `CRYO_JOBS`): injector +
//!   per-worker deques with sibling stealing, with a determinism contract
//!   that makes parallel and serial runs byte-identical.
//! - [`report`] — structured per-cell outcomes
//!   ([`report::CharReport`]) from the robust characterization path:
//!   attempts spent climbing the retry ladder, fault causes, and
//!   drive-sibling derating provenance.
//!
//! # Example: characterize a two-cell mini library
//!
//! ```
//! use cryo_cells::{topology, CharConfig, Characterizer};
//! use cryo_device::{ModelCard, Polarity};
//!
//! let n = ModelCard::nominal(Polarity::N);
//! let p = ModelCard::nominal(Polarity::P);
//! let cfg = CharConfig::fast(300.0);
//! let engine = Characterizer::new(&n, &p, cfg);
//! let cells = vec![topology::inverter(1), topology::nand(2, 1)];
//! let lib = engine.characterize_library("mini", &cells).unwrap();
//! assert_eq!(lib.len(), 2);
//! ```

pub mod cache;
pub mod charlib;
pub mod checkpoint;
pub mod report;
pub mod sched;
pub mod topology;

pub use charlib::{CharConfig, Characterizer, RecoveryLevel};
pub use checkpoint::CheckpointStore;
pub use report::{CellOutcome, CellStatus, CharReport, SurrogateSummary};
pub use topology::{CellNetlist, Mos};

use std::error::Error;
use std::fmt;

/// Errors from cell generation and characterization.
#[derive(Debug)]
pub enum CellError {
    /// The circuit simulator failed on a characterization deck.
    Spice {
        /// Cell being characterized.
        cell: String,
        /// What was being measured.
        what: &'static str,
        /// Underlying simulator error.
        source: cryo_spice::SpiceError,
    },
    /// A waveform measurement failed (e.g. the output never crossed 50 %).
    Measurement {
        /// Cell being characterized.
        cell: String,
        /// Arc description.
        arc: String,
        /// What was being measured.
        what: &'static str,
    },
    /// Library construction failed.
    Liberty(cryo_liberty::LibertyError),
    /// Disk cache I/O failed.
    Cache(String),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Spice { cell, what, source } => {
                write!(f, "spice failure characterizing {cell} ({what}): {source}")
            }
            CellError::Measurement { cell, arc, what } => {
                write!(f, "measurement failure on {cell} arc {arc}: {what}")
            }
            CellError::Liberty(e) => write!(f, "library error: {e}"),
            CellError::Cache(msg) => write!(f, "cache error: {msg}"),
        }
    }
}

impl Error for CellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CellError::Spice { source, .. } => Some(source),
            CellError::Liberty(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cryo_liberty::LibertyError> for CellError {
    fn from(e: cryo_liberty::LibertyError) -> Self {
        CellError::Liberty(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CellError>;
