//! Extension study (paper Sec. III: "mismatch in transistor characteristics
//! and Vth increase at cryogenic temperature are major challenges"):
//! Monte-Carlo the process variation model across temperature and report
//! how the threshold-voltage spread compounds when cold.
use cryo_device::{mismatch_run, ModelCard, Polarity, VariationModel};

fn main() {
    let var = VariationModel::default();
    println!("=== Sec. III extension: transistor mismatch vs temperature ===");
    println!("(200-die Monte-Carlo per point; constant-current Vth at 1 uA)\n");
    for polarity in [Polarity::N, Polarity::P] {
        let nominal = ModelCard::nominal(polarity);
        println!("--- {polarity} ---");
        println!(
            "{:>7} {:>12} {:>14} {:>14} {:>12}",
            "T (K)", "mean Vth", "sigma Vth", "sigma/mean", "sigma Ion"
        );
        for temp in [300.0, 77.0, 10.0] {
            let r = mismatch_run(&nominal, &var, temp, 200, 42);
            println!(
                "{temp:>7.0} {:>9.1} mV {:>11.2} mV {:>13.2}% {:>11.2}%",
                r.vth.mean * 1e3,
                r.vth.sigma * 1e3,
                r.vth.relative() * 100.0,
                r.ion.relative() * 100.0
            );
        }
    }
    println!("\n(Absolute Vth spread grows as the device cools — the cryo Vth shift");
    println!(" itself varies die-to-die — compounding the design margins the paper");
    println!(" flags as a major cryogenic challenge.)");
}
