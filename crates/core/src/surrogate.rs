//! The learned-surrogate stage of the flow: policy knob and the
//! prediction-with-fallback orchestration.
//!
//! `cryo-surrogate` turns one characterized warm corner plus a small
//! SPICE-probed sample of the target corner into a full predicted library.
//! This module owns everything about *trust*: the [`SurrogatePolicy`]
//! selected by `CRYO_SURROGATE`, the audit firewall pass every predicted
//! library must survive, and the per-cell SPICE fallback for cells the
//! model cannot be trusted on — driven by the same quarantine-and-repair
//! machinery the firewall uses for corrupted characterizations, and
//! provably never re-simulating a cell the surrogate got right.

use cryo_cells::{
    cache, topology, CellStatus, CharConfig, CharReport, CheckpointStore, Characterizer,
    SurrogateSummary,
};
use cryo_device::CornerScalars;
use cryo_liberty::{audit_cross_corner, audit_library, Library, Provenance};
use cryo_spice::fault;
use cryo_surrogate::{fnv64, TrainConfig};

use crate::flow::CryoFlow;
use crate::{CoreError, Result};

/// Whether (and how) predicted libraries replace SPICE characterization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SurrogatePolicy {
    /// Never predict; every corner is SPICE-characterized. Exact
    /// pre-surrogate behavior.
    #[default]
    Off,
    /// Predict the cold corner from the warm one, then fall back to
    /// per-cell SPICE for any cell whose held-out residual exceeds
    /// `max_rel_err` or that the audit firewall flags.
    PredictWithFallback {
        /// Per-cell worst-case relative-error bound above which the cell's
        /// prediction is distrusted and re-characterized.
        max_rel_err: f64,
    },
}

impl SurrogatePolicy {
    /// Parse `off` or `predict:<max_rel_err>` (case-insensitive).
    ///
    /// # Errors
    ///
    /// A human-readable reason when `s` names no policy or carries a
    /// non-positive / non-finite bound.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let lower = s.to_ascii_lowercase();
        if lower == "off" {
            return Ok(SurrogatePolicy::Off);
        }
        if let Some(bound) = lower.strip_prefix("predict:") {
            let max_rel_err: f64 = bound
                .parse()
                .map_err(|_| format!("bad max_rel_err {bound:?} (expected a number)"))?;
            if !(max_rel_err.is_finite() && max_rel_err > 0.0) {
                return Err(format!(
                    "max_rel_err must be finite and > 0, got {max_rel_err}"
                ));
            }
            return Ok(SurrogatePolicy::PredictWithFallback { max_rel_err });
        }
        Err(format!(
            "unknown surrogate policy {s:?} (expected off or predict:<max_rel_err>)"
        ))
    }

    /// The policy named by `CRYO_SURROGATE`, defaulting to `Off` when the
    /// variable is unset or malformed (the strict path is
    /// [`SurrogatePolicy::from_env_checked`], used by `validate_env`).
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("CRYO_SURROGATE")
            .ok()
            .and_then(|s| Self::parse(&s).ok())
            .unwrap_or_default()
    }

    /// Strictly parse `CRYO_SURROGATE`; unset means the default.
    ///
    /// # Errors
    ///
    /// The parse failure reason for a set-but-malformed variable.
    pub fn from_env_checked() -> std::result::Result<Self, String> {
        match std::env::var("CRYO_SURROGATE") {
            Ok(s) => Self::parse(&s),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Whether prediction is enabled.
    #[must_use]
    pub fn is_on(self) -> bool {
        self != SurrogatePolicy::Off
    }
}

impl CryoFlow {
    /// Predict the library at `temp` kelvin from the characterized `warm`
    /// library, with audit-gated per-cell SPICE fallback.
    ///
    /// The pipeline:
    ///
    /// 1. SPICE-characterize the **probe set** (every drive-1 cell) at the
    ///    target corner, with the usual checkpoint store (`*_surprobe`), so
    ///    probes are ground truth and resume across kills.
    /// 2. Train the surrogate on warm→probe table transfers
    ///    (byte-deterministic, epoch-checkpointed under `*_surmodel`).
    /// 3. Predict every cell's tables from its warm anchor and audit the
    ///    predicted library — the full firewall plus the cross-corner band
    ///    against `warm`. The surrogate path **always** audits, whatever
    ///    `CRYO_AUDIT` says: predictions are untrusted by construction.
    /// 4. Any cell flagged by the audit, or whose probe residual exceeds
    ///    `max_rel_err`, is individually re-characterized with SPICE via
    ///    the quarantine-repair path (`*_surfallback` store seeded with
    ///    every trusted prediction, so exactly the distrusted cells
    ///    simulate). Findings that survive the fallback are terminal.
    ///
    /// Predicted corners are **never** promoted to the library-level SPICE
    /// cache, and none of the surrogate's stores collide with
    /// characterization's — with the surrogate off, every SPICE artifact
    /// is byte-identical to a run where it never existed.
    ///
    /// # Errors
    ///
    /// [`CoreError::AuditFailed`] when findings survive the fallback;
    /// [`CoreError::Coverage`] below the floor; checkpoint I/O failures.
    pub fn surrogate_library_with_report(
        &self,
        temp: f64,
        warm: &Library,
        max_rel_err: f64,
    ) -> Result<(Library, CharReport)> {
        let cfg = self.config();
        let mut char_cfg = if temp < 150.0 {
            cfg.char_10k.clone()
        } else {
            cfg.char_300k.clone()
        };
        if cfg.jobs != 0 {
            char_cfg.jobs = cfg.jobs;
        }
        let stage = if temp < 150.0 {
            "charlib10_sur"
        } else {
            "charlib300_sur"
        };
        let _fault_guard = cfg.fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.effective_cards();
        let name = format!("cryo5_tt_0p70v_{}k", temp as u32);
        self.surrogate_corner(&name, stage, &char_cfg, temp, &nfet, &pfet, warm, max_rel_err)
    }

    /// [`CryoFlow::surrogate_library_with_report`] for an arbitrary farm
    /// corner: predict the corner's library from its group's SPICE anchor,
    /// with the same always-on audit and per-cell fallback. Stage label is
    /// `<corner>_sur` and every store is keyed by the corner's own cards
    /// and grid, so farm predictions never collide with each other or with
    /// the legacy two-point flow.
    ///
    /// # Errors
    ///
    /// Same as [`CryoFlow::surrogate_library_with_report`].
    pub fn corner_surrogate_library_with_report(
        &self,
        corner: &crate::corners::Corner,
        warm: &Library,
        max_rel_err: f64,
    ) -> Result<(Library, CharReport)> {
        let char_cfg = self.corner_char_cfg(corner);
        let _fault_guard = self.config().fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.corner_cards(corner);
        self.surrogate_corner(
            &corner.lib_name(),
            &format!("{}_sur", corner.name()),
            &char_cfg,
            corner.temp,
            &nfet,
            &pfet,
            warm,
            max_rel_err,
        )
    }

    /// The shared predict-audit-fallback engine behind both surrogate
    /// entry points. Callers install the fault guard before deriving the
    /// cards, mirroring the characterization path.
    #[allow(clippy::too_many_arguments)]
    fn surrogate_corner(
        &self,
        name: &str,
        stage: &str,
        char_cfg: &CharConfig,
        temp: f64,
        nfet: &cryo_device::ModelCard,
        pfet: &cryo_device::ModelCard,
        warm: &Library,
        max_rel_err: f64,
    ) -> Result<(Library, CharReport)> {
        let cfg = self.config();
        let cells = topology::standard_cell_set();
        let probes: Vec<_> = cells.iter().filter(|c| c.drive == 1).cloned().collect();
        let probe_tag = cache::cell_set_tag(&probes);
        let key = cache::cache_key(nfet, pfet, char_cfg, &probe_tag)?;

        // 1. Ground-truth probes at the target corner.
        let probe_store =
            CheckpointStore::open(&cfg.cache_dir, &format!("{name}_surprobe"), &key)?;
        let engine = Characterizer::new(nfet, pfet, char_cfg.clone());
        let (probe_lib, _probe_report) = engine.characterize_library_robust(
            &format!("{name}_surprobe"),
            &probes,
            Some(&probe_store),
        );

        // 2. Train (or resume training) the transfer model.
        let warm_sc = CornerScalars::at(nfet, pfet, warm.vdd, warm.temperature);
        let cold_sc = CornerScalars::at(nfet, pfet, char_cfg.vdd, temp);
        let train_cfg = TrainConfig::default();
        let model_store = CheckpointStore::open(
            &cfg.cache_dir,
            &format!("{name}_surmodel"),
            &fnv64(&format!("{key}|{}", train_cfg.content_hash())),
        )?;
        let (surrogate, _outcome, dataset) = cryo_surrogate::fit(
            warm,
            &probe_lib,
            warm_sc,
            cold_sc,
            &train_cfg,
            Some(&model_store),
        );
        let (residual, per_cell) = surrogate.residuals(&dataset);

        // 3. Predict and audit.
        let predicted = surrogate.predict_library(warm, name, residual);
        let audit_cfg = crate::audit::lib_audit_config(char_cfg);
        let mut audit = audit_library(stage, &predicted, &audit_cfg);
        audit.merge(audit_cross_corner(stage, warm, &predicted, &audit_cfg));

        // 4. Distrusted cells: audit findings ∪ out-of-bound probe residuals.
        let mut fallbacks = audit.offending_cells();
        for (cell, &worst) in &per_cell {
            if worst > max_rel_err && !fallbacks.contains(cell) {
                fallbacks.push(cell.clone());
            }
        }
        fallbacks.sort();

        let (mut lib, mut report) = if fallbacks.is_empty() {
            (predicted, CharReport::default())
        } else {
            let fb_store =
                CheckpointStore::open(&cfg.cache_dir, &format!("{name}_surfallback"), &key)?;
            for cell in predicted.cells() {
                if !fallbacks.contains(&cell.name) {
                    fb_store.store(cell)?;
                }
            }
            for off in &fallbacks {
                fb_store.remove(off);
            }
            let repair = Characterizer::new(nfet, pfet, char_cfg.clone()).with_generation(1);
            let (lib2, report2) =
                repair.characterize_library_robust(name, &cells, Some(&fb_store));
            let mut recheck = audit_library(stage, &lib2, &audit_cfg);
            recheck.merge(audit_cross_corner(stage, warm, &lib2, &audit_cfg));
            if !recheck.is_clean() {
                return Err(CoreError::AuditFailed {
                    stage: stage.to_string(),
                    report: recheck,
                });
            }
            fb_store.clear();
            (lib2, report2)
        };

        // Every non-fallback cell's tables came from the model, whatever
        // the repair pass's bookkeeping called them (`Resumed` — it loaded
        // them from the seeded store without simulating).
        if report.outcomes.is_empty() {
            report.outcomes = lib
                .cells()
                .iter()
                .map(|c| cryo_cells::CellOutcome {
                    name: c.name.clone(),
                    status: CellStatus::Predicted,
                    attempts: 0,
                    fault: None,
                    derated_from: None,
                })
                .collect();
        } else {
            for o in &mut report.outcomes {
                if !fallbacks.contains(&o.name) {
                    o.status = CellStatus::Predicted;
                    o.attempts = 0;
                }
            }
        }
        report.sort_by_name();
        let predicted_count = report
            .outcomes
            .iter()
            .filter(|o| o.status == CellStatus::Predicted)
            .count();
        report.surrogate = Some(SurrogateSummary {
            model_hash: surrogate.model_hash(),
            residual,
            predicted: predicted_count,
            fallbacks: fallbacks.clone(),
        });
        lib.provenance = Provenance::Predicted {
            model_hash: surrogate.model_hash(),
            residual,
        };

        let expected: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        let coverage = lib.coverage(&expected);
        if coverage < cfg.coverage_floor {
            return Err(CoreError::Coverage {
                corner: name.to_string(),
                coverage,
                floor: cfg.coverage_floor,
                missing: lib.missing_cells(&expected),
            });
        }
        Ok((lib, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_defaults_to_off() {
        assert_eq!(SurrogatePolicy::parse("off").unwrap(), SurrogatePolicy::Off);
        assert_eq!(
            SurrogatePolicy::parse("predict:0.35").unwrap(),
            SurrogatePolicy::PredictWithFallback { max_rel_err: 0.35 }
        );
        assert_eq!(
            SurrogatePolicy::parse("PREDICT:0.5").unwrap(),
            SurrogatePolicy::PredictWithFallback { max_rel_err: 0.5 }
        );
        assert!(SurrogatePolicy::parse("on").is_err());
        assert!(SurrogatePolicy::parse("predict:").is_err());
        assert!(SurrogatePolicy::parse("predict:-1").is_err());
        assert!(SurrogatePolicy::parse("predict:nan").is_err());
        assert!(SurrogatePolicy::parse("predict:inf").is_err());
        assert_eq!(SurrogatePolicy::default(), SurrogatePolicy::Off);
        assert!(SurrogatePolicy::PredictWithFallback { max_rel_err: 0.1 }.is_on());
        assert!(!SurrogatePolicy::Off.is_on());
    }
}
