//! Arrival propagation engine.

use cryo_liberty::{ArcKind, Cell, Library};
use cryo_netlist::design::{Design, DriverRef, LoadRef};
use cryo_spice::fault;

use crate::counters;
use crate::report::{
    DegradeCause, DegradeResolution, DegradedArc, EndpointSummary, PathStep, TimingReport,
};
use crate::{Result, StaError};

/// What the engine does when an arc cannot be timed from real library data
/// — the instance's cell is missing (PR 1's coverage floor admits partially
/// failed characterizations), the cell has no timing arc to the pin, or the
/// fault injector's `sta_lookup` site fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MissingArcPolicy {
    /// Refuse: missing cells raise [`StaError::UnmappedCell`], injected
    /// lookup faults raise [`StaError::ArcLookupFault`]. The pre-degraded
    /// behavior, and the default.
    Fail,
    /// Borrow the matching arc from the nearest drive-strength sibling,
    /// scaled by the drive ratio times `1 + margin`; fall back to
    /// [`MissingArcPolicy::PessimisticBound`] when no sibling has the arc.
    BorrowSibling {
        /// Extra pessimism applied on top of the drive-ratio scaling.
        margin: f64,
    },
    /// Assume the slowest combinational delay in the whole library at the
    /// same operating point, times a fixed pessimism factor.
    PessimisticBound,
}

/// Pessimism multiplier applied to the library-wide worst delay when a
/// degraded arc is resolved by bound rather than by borrowing.
const BOUND_PESSIMISM: f64 = 2.0;
/// Stand-in delay when the library has no combinational arc to bound from.
const BOUND_FALLBACK: f64 = 1e-9;

/// STA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaConfig {
    /// Analysis clock period, seconds. The paper synthesizes at 0 ns to
    /// force maximum optimization and reads the worst slack as the critical
    /// path; `0.0` reproduces that.
    pub clock_period: f64,
    /// Transition time assumed at primary inputs and clock pins, seconds.
    pub input_slew: f64,
    /// Corner scale factor applied to SRAM macro timing (ratio of the
    /// corner's mean cell delay to the 300 K mean; 1.0 at 300 K).
    pub macro_delay_scale: f64,
    /// Capacitive load each SRAM macro input pin presents, farads.
    pub macro_input_cap: f64,
    /// Earliest arrival assumed at primary inputs for hold analysis,
    /// seconds (external input delay).
    pub input_min_delay: f64,
    /// How many worst endpoints to summarize in the report.
    pub max_reported_paths: usize,
    /// Degradation policy for arcs that cannot be timed from library data.
    pub missing_arc_policy: MissingArcPolicy,
}

impl Default for StaConfig {
    fn default() -> Self {
        Self {
            clock_period: 0.0,
            input_slew: 20e-12,
            macro_delay_scale: 1.0,
            macro_input_cap: 2.0e-15,
            input_min_delay: 10e-12,
            max_reported_paths: 8,
            missing_arc_policy: MissingArcPolicy::Fail,
        }
    }
}

/// Per-net timing state.
#[derive(Debug, Clone, Copy)]
struct NetTiming {
    /// Worst (max) arrival and the slew accompanying it.
    max_arrival: f64,
    max_slew: f64,
    /// Best (min) arrival for hold analysis.
    min_arrival: f64,
    /// Whether any path reaches this net.
    reached: bool,
    /// Backtrace: instance index and its input net on the worst path.
    parent: Option<(usize, usize)>,
}

impl Default for NetTiming {
    fn default() -> Self {
        Self {
            max_arrival: f64::NEG_INFINITY,
            max_slew: 0.0,
            min_arrival: f64::INFINITY,
            reached: false,
            parent: None,
        }
    }
}

/// The cell standing behind an instance for this analysis.
enum EffCell<'a> {
    /// The instance's own cell, straight from the library.
    Real(&'a Cell),
    /// The cell is absent; `sibling` is the nearest drive-strength family
    /// member (used for classification, pin caps, and — under
    /// `BorrowSibling` — arc borrowing).
    Missing { sibling: Option<&'a Cell> },
}

/// Family prefix used for sibling lookup: the name with trailing drive
/// digits trimmed (`INVx2` → `INVx`), matching the characterization
/// layer's derating convention.
fn family_prefix(name: &str) -> &str {
    name.trim_end_matches(|c: char| c.is_ascii_digit())
}

/// Drive strength encoded in a cell name (`NAND2x4` → 4; 1 when absent).
fn name_drive(name: &str) -> u32 {
    name.rsplit('x')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Nearest drive-strength sibling of `cell` present in the library
/// (deterministic: nearest drive, then lexicographically first name).
fn find_sibling<'a>(lib: &'a Library, cell: &str) -> Option<&'a Cell> {
    let family = family_prefix(cell);
    if family.is_empty() {
        return None;
    }
    let want = i64::from(name_drive(cell));
    lib.cells()
        .iter()
        .filter(|c| c.name != cell && c.name.starts_with(family))
        .min_by(|a, b| {
            (i64::from(a.drive) - want)
                .abs()
                .cmp(&(i64::from(b.drive) - want).abs())
                .then_with(|| a.name.cmp(&b.name))
        })
}

/// Scale applied to a donor arc standing in for `cell`: the drive ratio
/// (clamped at ≥ 1 so a weaker donor never makes the stand-in optimistic)
/// times `1 + margin`.
fn borrow_scale(cell: &str, donor: &Cell, margin: f64) -> f64 {
    (f64::from(donor.drive) / f64::from(name_drive(cell).max(1)))
        .max(1.0)
        * (1.0 + margin)
}

/// Resolves degraded arcs per the configured policy and records the
/// provenance of every stand-in it hands out.
struct Degrader<'a> {
    lib: &'a Library,
    policy: MissingArcPolicy,
    records: Vec<DegradedArc>,
}

impl<'a> Degrader<'a> {
    /// Library-wide pessimistic delay bound at an operating point.
    fn bound(&self, slew: f64, load: f64) -> f64 {
        let worst = self
            .lib
            .cells()
            .iter()
            .flat_map(|c| c.arcs.iter())
            .filter(|a| a.kind == ArcKind::Combinational)
            .map(|a| a.worst_delay(slew, load))
            .fold(f64::NEG_INFINITY, f64::max);
        if worst.is_finite() {
            worst * BOUND_PESSIMISM
        } else {
            BOUND_FALLBACK
        }
    }

    /// Produce a stand-in `(delay, output_slew)` for an arc that could not
    /// be timed, and record its provenance. Must not be called under the
    /// `Fail` policy (callers error out first).
    fn stand_in(
        &mut self,
        instance: &str,
        cell: &str,
        pin: &str,
        cause: DegradeCause,
        slew: f64,
        load: f64,
    ) -> (f64, f64) {
        counters::count_arc_eval();
        let borrowed = match self.policy {
            MissingArcPolicy::Fail => unreachable!("Fail is handled before degradation"),
            MissingArcPolicy::BorrowSibling { margin } => {
                find_sibling(self.lib, cell).and_then(|donor| {
                    donor.arcs_to(pin).next().map(|arc| {
                        let scale = borrow_scale(cell, donor, margin);
                        let d = arc.worst_delay(slew, load) * scale;
                        let s = arc
                            .rise_transition
                            .lookup(slew, load)
                            .max(arc.fall_transition.lookup(slew, load))
                            * scale;
                        (d, s, DegradeResolution::borrowed(&donor.name, margin))
                    })
                })
            }
            MissingArcPolicy::PessimisticBound => None,
        };
        let (delay, out_slew, resolution) = borrowed.unwrap_or_else(|| {
            let d = self.bound(slew, load);
            (d, slew, DegradeResolution::bound())
        });
        self.records.push(DegradedArc {
            instance: instance.to_string(),
            cell: cell.to_string(),
            pin: pin.to_string(),
            cause,
            resolution,
            assumed_delay: delay,
        });
        (delay, out_slew)
    }
}

/// Run setup and hold timing analysis on `design` against `lib`.
///
/// See the crate-level docs for the algorithm; typical use:
///
/// ```no_run
/// use cryo_sta::{analyze, StaConfig};
/// # let design = cryo_netlist::build_soc(&cryo_netlist::SocConfig::tiny());
/// # let lib = cryo_liberty::Library::new("corner", 300.0, 0.7);
/// let report = analyze(&design, &lib, &StaConfig::default())?;
/// println!("fmax = {:.0} MHz", report.fmax() / 1e6);
/// # Ok::<(), cryo_sta::StaError>(())
/// ```
///
/// Degraded-mode operation: with a non-`Fail`
/// [`StaConfig::missing_arc_policy`], missing cells, missing arcs, and
/// injected lookup faults are resolved to explicit pessimistic stand-ins
/// instead of errors, and every stand-in is recorded in
/// [`TimingReport::degraded_arcs`]. Degraded arcs contribute zero min-path
/// delay, so hold analysis stays conservative.
///
/// # Errors
///
/// - [`StaError::UnmappedCell`] if an instance's cell is missing (under
///   the `Fail` policy).
/// - [`StaError::ArcLookupFault`] if the injector kills an arc lookup
///   (under the `Fail` policy).
/// - [`StaError::CombinationalLoop`] if registers do not break all cycles.
/// - [`StaError::NoEndpoints`] for designs with nothing to time.
#[allow(clippy::too_many_lines)]
pub fn analyze(design: &Design, lib: &Library, cfg: &StaConfig) -> Result<TimingReport> {
    let conn = design.connectivity();
    let n_nets = design.net_count();
    let n_inst = design.instances().len();
    let fail_policy = cfg.missing_arc_policy == MissingArcPolicy::Fail;
    let fault_active = fault::is_active();
    let mut degrader = Degrader {
        lib,
        policy: cfg.missing_arc_policy,
        records: Vec::new(),
    };

    // ------------------------------------------------------------------
    // Resolve each instance to an effective cell.
    // ------------------------------------------------------------------
    let mut eff: Vec<EffCell> = Vec::with_capacity(n_inst);
    for inst in design.instances() {
        match lib.cell(&inst.cell) {
            Ok(c) => eff.push(EffCell::Real(c)),
            Err(_) if fail_policy => {
                return Err(StaError::UnmappedCell {
                    instance: inst.name.clone(),
                    cell: inst.cell.clone(),
                });
            }
            Err(_) => eff.push(EffCell::Missing {
                sibling: find_sibling(lib, &inst.cell),
            }),
        }
    }

    // Fallback input cap for pins of missing cells without a sibling: the
    // largest input capacitance in the library (pessimistic load).
    let max_input_cap = lib
        .cells()
        .iter()
        .flat_map(|c| c.pins.iter())
        .map(|p| p.capacitance)
        .fold(0.0f64, f64::max)
        .max(cfg.macro_input_cap);

    // ------------------------------------------------------------------
    // Net loads: sum of sink pin caps + wire estimate.
    // ------------------------------------------------------------------
    let mut net_load = vec![0.0f64; n_nets];
    for net in 0..n_nets {
        let mut cap = 0.0;
        for load in &conn.loads[net] {
            match load {
                LoadRef::Cell { instance, pin } => {
                    cap += match &eff[*instance] {
                        EffCell::Real(cell) => cell.pin(pin).map_or(0.0, |p| p.capacitance),
                        EffCell::Missing { sibling: Some(s) } => {
                            s.pin(pin).map_or(max_input_cap, |p| p.capacitance)
                        }
                        EffCell::Missing { sibling: None } => max_input_cap,
                    };
                }
                LoadRef::Macro { .. } => cap += cfg.macro_input_cap,
            }
        }
        cap += design.wire_cap(conn.loads[net].len());
        net_load[net] = cap;
    }

    // ------------------------------------------------------------------
    // Classify instances; seed startpoints.
    // ------------------------------------------------------------------
    let mut timing: Vec<NetTiming> = vec![NetTiming::default(); n_nets];
    fn seed(timing: &mut [NetTiming], net: usize, arrival: f64, slew: f64) {
        let t = &mut timing[net];
        t.max_arrival = t.max_arrival.max(arrival);
        t.min_arrival = t.min_arrival.min(arrival);
        t.max_slew = t.max_slew.max(slew);
        t.reached = true;
    }
    for &pi in &design.primary_inputs {
        seed(&mut timing, pi, 0.0, cfg.input_slew);
        timing[pi].min_arrival = cfg.input_min_delay;
    }
    if let Some(clk) = design.clock {
        seed(&mut timing, clk, 0.0, cfg.input_slew);
        timing[clk].min_arrival = cfg.input_min_delay;
    }
    // Sequential cell outputs: launch at clk→Q.
    let mut is_seq = vec![false; n_inst];
    for (i, inst) in design.instances().iter().enumerate() {
        match &eff[i] {
            EffCell::Real(cell) => {
                if cell.is_sequential() {
                    is_seq[i] = true;
                    for (pin, net) in &inst.outputs {
                        for arc in cell.arcs_to(pin) {
                            if arc.kind == ArcKind::ClockToQ {
                                counters::count_arc_eval();
                                let d = arc.worst_delay(cfg.input_slew, net_load[*net]);
                                let s = arc
                                    .rise_transition
                                    .lookup(cfg.input_slew, net_load[*net])
                                    .max(
                                        arc.fall_transition
                                            .lookup(cfg.input_slew, net_load[*net]),
                                    );
                                seed(&mut timing, *net, d, s);
                            }
                        }
                    }
                }
            }
            EffCell::Missing { sibling } => {
                // Classification borrowed from the sibling; an orphan is
                // treated as combinational.
                if sibling.is_some_and(Cell::is_sequential) {
                    is_seq[i] = true;
                    for (pin, net) in &inst.outputs {
                        let (d, s) = degrader.stand_in(
                            &inst.name,
                            &inst.cell,
                            pin,
                            DegradeCause::MissingCell,
                            cfg.input_slew,
                            net_load[*net],
                        );
                        seed(&mut timing, *net, d, s);
                    }
                }
            }
        }
    }
    // Macro outputs: launch at scaled clock-to-out.
    for m in design.macros() {
        let d = m.spec.clk_to_out(cfg.macro_delay_scale);
        for &net in &m.outputs {
            seed(&mut timing, net, d, 30e-12);
        }
    }

    // ------------------------------------------------------------------
    // Levelize the combinational instances (Kahn).
    // ------------------------------------------------------------------
    // In-degree: number of input nets driven by combinational instances.
    let comb_driver_of = |net: usize| -> Option<usize> {
        conn.drivers[net].iter().find_map(|d| match d {
            DriverRef::Cell { instance, .. } if !is_seq[*instance] => Some(*instance),
            _ => None,
        })
    };
    let mut indegree = vec![0usize; n_inst];
    let mut fanout_edges: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (i, inst) in design.instances().iter().enumerate() {
        if is_seq[i] {
            continue;
        }
        for (_, net) in &inst.inputs {
            if let Some(src) = comb_driver_of(*net) {
                indegree[i] += 1;
                fanout_edges[src].push(i);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n_inst)
        .filter(|&i| !is_seq[i] && indegree[i] == 0)
        .collect();
    let mut order = Vec::with_capacity(n_inst);
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(i);
        for &next in &fanout_edges[i] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                queue.push(next);
            }
        }
    }
    let comb_count = (0..n_inst).filter(|&i| !is_seq[i]).count();
    if order.len() != comb_count {
        // Find a net on the cycle for the error message.
        let stuck = (0..n_inst)
            .find(|&i| !is_seq[i] && indegree[i] > 0)
            .expect("some instance must be stuck");
        let net = design.instances()[stuck].inputs[0].1;
        return Err(StaError::CombinationalLoop {
            net: design.net_name(net).to_string(),
        });
    }

    // ------------------------------------------------------------------
    // Propagate arrivals.
    // ------------------------------------------------------------------
    for &i in &order {
        let inst = &design.instances()[i];
        // Label the injection context per instance (prefixed so fault
        // scopes can target the whole STA stage with `scope=sta:` or one
        // instance). The propagation order is the deterministic levelized
        // order, and `analyze` is single-threaded, so the draw schedule is
        // a pure function of (plan, design) — job counts upstream cannot
        // perturb it.
        if fault_active {
            fault::set_context(&format!("sta:{}", inst.name));
        }
        for (out_pin, out_net) in &inst.outputs {
            let load = net_load[*out_net];
            let mut best: Option<(f64, f64, usize)> = None; // arrival, slew, from-net
            let mut min_arr = f64::INFINITY;
            let mut have_arc = false;
            if let EffCell::Real(cell) = &eff[i] {
                for arc in cell.arcs_to(out_pin) {
                    if arc.kind != ArcKind::Combinational {
                        continue;
                    }
                    have_arc = true;
                    let Some((_, in_net)) =
                        inst.inputs.iter().find(|(pin, _)| *pin == arc.related_pin)
                    else {
                        continue;
                    };
                    let tin = timing[*in_net];
                    if !tin.reached {
                        continue;
                    }
                    if fault_active && fault::should_fault_sta_lookup() {
                        // The lookup "failed": this arc's tables are
                        // unusable for this analysis.
                        if fail_policy {
                            return Err(StaError::ArcLookupFault {
                                instance: inst.name.clone(),
                                cell: inst.cell.clone(),
                                pin: (*out_pin).clone(),
                            });
                        }
                        let (delay, out_slew) = degrader.stand_in(
                            &inst.name,
                            &inst.cell,
                            out_pin,
                            DegradeCause::InjectedFault,
                            tin.max_slew,
                            load,
                        );
                        let arr = tin.max_arrival + delay;
                        if best.is_none_or(|(a, _, _)| arr > a) {
                            best = Some((arr, out_slew, *in_net));
                        }
                        // Zero min-path contribution keeps hold analysis
                        // conservative under degradation.
                        min_arr = min_arr.min(tin.min_arrival);
                        continue;
                    }
                    counters::count_arc_eval();
                    let delay = arc.worst_delay(tin.max_slew, load);
                    let out_slew = arc
                        .rise_transition
                        .lookup(tin.max_slew, load)
                        .max(arc.fall_transition.lookup(tin.max_slew, load));
                    let arr = tin.max_arrival + delay;
                    if best.is_none_or(|(a, _, _)| arr > a) {
                        best = Some((arr, out_slew, *in_net));
                    }
                    let dmin = arc
                        .cell_rise
                        .lookup(tin.max_slew, load)
                        .min(arc.cell_fall.lookup(tin.max_slew, load));
                    min_arr = min_arr.min(tin.min_arrival + dmin);
                }
            }
            // Degraded resolution: the cell is missing entirely, or it has
            // no combinational arc to this output. Time the pin from its
            // worst reached input with a policy stand-in.
            if best.is_none() && !have_arc && !fail_policy {
                let cause = match &eff[i] {
                    EffCell::Real(_) => DegradeCause::MissingArc,
                    EffCell::Missing { .. } => DegradeCause::MissingCell,
                };
                let worst_in = inst
                    .inputs
                    .iter()
                    .filter(|(_, n)| timing[*n].reached)
                    .max_by(|(_, a), (_, b)| {
                        timing[*a]
                            .max_arrival
                            .partial_cmp(&timing[*b].max_arrival)
                            .expect("arrivals are finite")
                    });
                if let Some((_, in_net)) = worst_in {
                    let tin = timing[*in_net];
                    let (delay, out_slew) = degrader.stand_in(
                        &inst.name,
                        &inst.cell,
                        out_pin,
                        cause,
                        tin.max_slew,
                        load,
                    );
                    best = Some((tin.max_arrival + delay, out_slew, *in_net));
                    min_arr = tin.min_arrival;
                }
            }
            if let Some((arr, slew, from)) = best {
                let t = &mut timing[*out_net];
                if arr > t.max_arrival {
                    t.max_arrival = arr;
                    t.max_slew = slew;
                    t.parent = Some((i, from));
                }
                t.min_arrival = t.min_arrival.min(min_arr);
                t.reached = true;
            }
        }
    }
    if fault_active {
        fault::set_context("");
    }

    // ------------------------------------------------------------------
    // Endpoints: setup and hold.
    // ------------------------------------------------------------------
    struct Endpoint {
        name: String,
        net: usize,
        setup: f64,
        hold: f64,
    }
    let mut endpoints: Vec<Endpoint> = Vec::new();
    for (i, inst) in design.instances().iter().enumerate() {
        if !is_seq[i] {
            continue;
        }
        let (constraint_cell, constraint_scale) = match &eff[i] {
            EffCell::Real(cell) => (Some(*cell), 1.0),
            EffCell::Missing { sibling } => {
                // Borrow the sibling's constraints with the policy's
                // margin; the launch side already recorded the stand-in.
                let margin = match cfg.missing_arc_policy {
                    MissingArcPolicy::BorrowSibling { margin } => margin,
                    _ => 0.0,
                };
                (*sibling, 1.0 + margin)
            }
        };
        let mut setup = 0.0;
        let mut hold = 0.0;
        let mut ff = None;
        if let Some(cell) = constraint_cell {
            for arc in cell.constraint_arcs() {
                match arc.kind {
                    ArcKind::Setup => setup = arc.cell_rise.lookup(0.0, 0.0) * constraint_scale,
                    ArcKind::Hold => hold = arc.cell_rise.lookup(0.0, 0.0) * constraint_scale,
                    _ => {}
                }
            }
            ff = cell.ff.as_ref();
        }
        if let Some(ff) = ff {
            if let Some((_, d_net)) = inst.inputs.iter().find(|(p, _)| *p == ff.next_state) {
                endpoints.push(Endpoint {
                    name: format!("{}/D", inst.name),
                    net: *d_net,
                    setup,
                    hold,
                });
            }
        }
    }
    for m in design.macros() {
        for &net in &m.inputs {
            endpoints.push(Endpoint {
                name: format!("{}/in", m.name),
                net,
                setup: m.spec.setup * cfg.macro_delay_scale,
                hold: 0.0,
            });
        }
    }
    for &po in &design.primary_outputs {
        endpoints.push(Endpoint {
            name: format!("PO {}", design.net_name(po)),
            net: po,
            setup: 0.0,
            hold: 0.0,
        });
    }
    if endpoints.is_empty() {
        return Err(StaError::NoEndpoints);
    }

    let mut critical_delay = 0.0f64;
    let mut worst_endpoint: Option<&Endpoint> = None;
    let mut worst_hold = f64::INFINITY;
    let mut endpoint_delays: Vec<(f64, usize)> = Vec::new();
    for (idx, ep) in endpoints.iter().enumerate() {
        let t = timing[ep.net];
        if !t.reached {
            continue;
        }
        let path = t.max_arrival + ep.setup;
        endpoint_delays.push((path, idx));
        if path > critical_delay {
            critical_delay = path;
            worst_endpoint = Some(ep);
        }
        if t.min_arrival.is_finite() {
            worst_hold = worst_hold.min(t.min_arrival - ep.hold);
        }
    }
    let endpoint = worst_endpoint.map_or_else(String::new, |e| e.name.clone());

    // Backtrace a path ending at `net`.
    let backtrace = |end_net: usize| -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut net = end_net;
        while let Some((inst_idx, from)) = timing[net].parent {
            let inst = &design.instances()[inst_idx];
            let incr = timing[net].max_arrival - timing[from].max_arrival;
            path.push(PathStep {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
                net: design.net_name(net).to_string(),
                incr,
                arrival: timing[net].max_arrival,
            });
            net = from;
        }
        path.push(PathStep {
            instance: "startpoint".to_string(),
            cell: "-".to_string(),
            net: design.net_name(net).to_string(),
            incr: 0.0,
            arrival: timing[net].max_arrival,
        });
        path.reverse();
        path
    };
    let path = worst_endpoint.map_or_else(Vec::new, |ep| backtrace(ep.net));

    // The N worst endpoints (PrimeTime's `report_timing -max_paths N`).
    endpoint_delays.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let worst_paths: Vec<EndpointSummary> = endpoint_delays
        .iter()
        .take(cfg.max_reported_paths)
        .map(|&(delay, idx)| EndpointSummary {
            endpoint: endpoints[idx].name.clone(),
            path_delay: delay,
            slack: cfg.clock_period - delay,
            depth: backtrace(endpoints[idx].net).len(),
        })
        .collect();
    // Endpoint slack histogram (2.5 % bins of the critical delay).
    let bin = (critical_delay / 40.0).max(1e-15);
    let mut slack_histogram = vec![0usize; 41];
    for &(delay, _) in &endpoint_delays {
        let b = ((critical_delay - delay) / bin) as usize;
        slack_histogram[b.min(40)] += 1;
    }

    // Canonical order so serialized reports are byte-identical however the
    // degradations were discovered.
    let mut degraded_arcs = degrader.records;
    degraded_arcs.sort_by(|a, b| (&a.instance, &a.pin).cmp(&(&b.instance, &b.pin)));

    Ok(TimingReport {
        corner: lib.name.clone(),
        temperature: lib.temperature,
        critical_path_delay: critical_delay,
        worst_paths,
        slack_histogram,
        worst_slack: cfg.clock_period - critical_delay,
        worst_hold_slack: if worst_hold.is_finite() {
            worst_hold
        } else {
            0.0
        },
        critical_path: path,
        endpoint,
        endpoint_count: endpoints.len(),
        degraded_arcs,
        audit: Default::default(),
    })
}
#[cfg(test)]
mod tests {
    use super::*;
    use cryo_liberty::{
        Cell, FfSpec, Library, LogicFunction, Lut2, Pin, PowerArc, TimingArc, TimingSense,
    };
    use cryo_netlist::DesignBuilder;

    /// Synthetic library: INV delay = 10 ps + 1 ps/fF·load; DFF clk→Q 50 ps,
    /// setup 30 ps, hold 5 ps.
    fn synth_lib() -> Library {
        let mut lib = Library::new("synth", 300.0, 0.7);
        let slews = vec![1e-12, 100e-12];
        let loads = vec![0.0, 100e-15];
        let table = |base: f64, per_f: f64| {
            let vals: Vec<f64> = slews
                .iter()
                .flat_map(|_s| loads.iter().map(move |l| base + per_f * l / 1e-15))
                .collect();
            Lut2::new(slews.clone(), loads.clone(), vals).unwrap()
        };
        let inv_fn = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        for (name, base) in [("INVx1", 10e-12), ("INVx2", 8e-12), ("BUFx2", 12e-12)] {
            let f = if name.starts_with("BUF") {
                LogicFunction::from_eval(&["A"], |b| b & 1 != 0)
            } else {
                inv_fn.clone()
            };
            lib.add_cell(Cell {
                name: name.to_string(),
                area: 0.05,
                pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
                arcs: vec![TimingArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    kind: ArcKind::Combinational,
                    sense: TimingSense::NegativeUnate,
                    cell_rise: table(base, 1e-12),
                    cell_fall: table(base, 1e-12),
                    rise_transition: table(5e-12, 0.2e-12),
                    fall_transition: table(5e-12, 0.2e-12),
                }],
                power_arcs: vec![PowerArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    rise_energy: Lut2::constant(1e-18),
                    fall_energy: Lut2::constant(1e-18),
                }],
                leakage_states: vec![(0, 1e-9)],
                ff: None,
                drive: 1,
            });
        }
        let dff_fn = LogicFunction::from_eval(&["D"], |b| b & 1 != 0);
        lib.add_cell(Cell {
            name: "DFFx1".to_string(),
            area: 0.2,
            pins: vec![
                Pin::input("D", 1e-15),
                {
                    let mut p = Pin::input("CLK", 1e-15);
                    p.is_clock = true;
                    p
                },
                Pin::output("Q", dff_fn),
            ],
            arcs: vec![
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "Q".into(),
                    kind: ArcKind::ClockToQ,
                    sense: TimingSense::NonUnate,
                    cell_rise: table(50e-12, 1e-12),
                    cell_fall: table(50e-12, 1e-12),
                    rise_transition: table(5e-12, 0.2e-12),
                    fall_transition: table(5e-12, 0.2e-12),
                },
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "D".into(),
                    kind: ArcKind::Setup,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(30e-12),
                    cell_fall: Lut2::constant(30e-12),
                    rise_transition: Lut2::constant(0.0),
                    fall_transition: Lut2::constant(0.0),
                },
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "D".into(),
                    kind: ArcKind::Hold,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(5e-12),
                    cell_fall: Lut2::constant(5e-12),
                    rise_transition: Lut2::constant(0.0),
                    fall_transition: Lut2::constant(0.0),
                },
            ],
            power_arcs: vec![],
            leakage_states: vec![(0, 2e-9)],
            ff: Some(FfSpec {
                clocked_on: "CLK".into(),
                next_state: "D".into(),
                clear: None,
            }),
            drive: 1,
        });
        lib
    }

    #[test]
    fn inverter_chain_delay_adds_up() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("chain");
        let mut x = b.input("in");
        for _ in 0..4 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        // Each stage: 10 ps + load-dependent term (one INV sink = 1 fF plus
        // wire). Expect ≈ 4 × ~11.4 ps.
        assert!(
            report.critical_path_delay > 40e-12 && report.critical_path_delay < 60e-12,
            "delay = {:.2} ps",
            report.critical_path_delay * 1e12
        );
        // Path has startpoint + 4 stages.
        assert_eq!(report.critical_path.len(), 5);
    }

    #[test]
    fn register_to_register_includes_clkq_and_setup() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("r2r");
        let clk = b.clock_input("clk");
        let din = b.input("din");
        let q1 = b.dff(din, clk, 1);
        let mut x = q1;
        for _ in 0..2 {
            x = b.inv(x, 1);
        }
        let _q2 = b.dff(x, clk, 1);
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        // clk→Q (~50) + 2 × INV (~11) + setup (30) ≈ 102 ps.
        assert!(
            (95e-12..120e-12).contains(&report.critical_path_delay),
            "delay = {:.2} ps",
            report.critical_path_delay * 1e12
        );
        assert!(report.endpoint.contains("/D"));
        // Hold is clean: min path 2 INVs ≈ 22 ps > 5 ps hold.
        assert!(report.worst_hold_slack > 0.0);
    }

    #[test]
    fn deeper_chain_is_slower_and_fmax_inverts() {
        let lib = synth_lib();
        let build = |n: usize| {
            let mut b = DesignBuilder::new("chain");
            let mut x = b.input("in");
            for _ in 0..n {
                x = b.inv(x, 1);
            }
            b.mark_output(x);
            b.finish()
        };
        let r4 = analyze(&build(4), &lib, &StaConfig::default()).unwrap();
        let r16 = analyze(&build(16), &lib, &StaConfig::default()).unwrap();
        assert!(r16.critical_path_delay > 3.0 * r4.critical_path_delay);
        assert!(r16.fmax() < r4.fmax());
    }


    #[test]
    fn worst_paths_are_sorted_and_bounded() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("multi");
        let clk = b.clock_input("clk");
        let din = b.input("din");
        // Three register-to-register paths of different depths.
        let q = b.dff(din, clk, 1);
        for depth in [1usize, 3, 6] {
            let mut x = q;
            for _ in 0..depth {
                x = b.inv(x, 1);
            }
            let _ = b.dff(x, clk, 1);
        }
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(report.worst_paths.len() >= 3);
        for w in report.worst_paths.windows(2) {
            assert!(w[0].path_delay >= w[1].path_delay, "sorted descending");
        }
        assert!(
            (report.worst_paths[0].path_delay - report.critical_path_delay).abs() < 1e-15,
            "first summary is the critical path"
        );
        let total: usize = report.slack_histogram.iter().sum();
        assert_eq!(total, report.endpoint_count, "every endpoint lands in a bin");
    }

    #[test]
    fn unmapped_cell_is_reported() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("bad");
        let x = b.input("in");
        let _ = b.nand2(x, x, 1); // NAND2x1 not in the synthetic library
        let d = b.finish();
        assert!(matches!(
            analyze(&d, &lib, &StaConfig::default()),
            Err(StaError::UnmappedCell { .. })
        ));
    }

    #[test]
    fn slack_against_period() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("chain");
        let mut x = b.input("in");
        for _ in 0..4 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        let cfg = StaConfig {
            clock_period: 1e-9,
            ..StaConfig::default()
        };
        let report = analyze(&d, &lib, &cfg).unwrap();
        assert!(report.worst_slack > 0.0, "1 ns period is easy to meet");
        let zero = analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(zero.worst_slack < 0.0, "0 ns period is never met");
    }

    #[test]
    fn missing_cell_borrows_a_drive_sibling_with_provenance() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("deg");
        let x = b.input("in");
        let y = b.inv(x, 4); // INVx4 absent from the library
        let z = b.inv(y, 1);
        b.mark_output(z);
        let d = b.finish();
        // Fail policy keeps the pre-degradation contract.
        assert!(matches!(
            analyze(&d, &lib, &StaConfig::default()),
            Err(StaError::UnmappedCell { .. })
        ));
        let cfg = StaConfig {
            missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.25 },
            ..StaConfig::default()
        };
        let report = analyze(&d, &lib, &cfg).unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.degraded_arcs.len(), 1);
        let deg = &report.degraded_arcs[0];
        assert_eq!(deg.cell, "INVx4");
        assert_eq!(deg.cause, DegradeCause::MissingCell);
        assert_eq!(
            deg.resolution,
            DegradeResolution::borrowed("INVx1", 0.25),
            "nearest drive, then first name"
        );
        // The stand-in is pessimistic: the same chain built entirely from
        // the donor is faster.
        let mut b2 = DesignBuilder::new("ref");
        let x2 = b2.input("in");
        let y2 = b2.inv(x2, 1);
        let z2 = b2.inv(y2, 1);
        b2.mark_output(z2);
        let reference = analyze(&b2.finish(), &lib, &StaConfig::default()).unwrap();
        assert!(
            report.critical_path_delay > reference.critical_path_delay,
            "degraded {} ps vs real {} ps",
            report.critical_path_delay * 1e12,
            reference.critical_path_delay * 1e12
        );
        assert!(report.path_report().contains("WARNING"));
    }

    #[test]
    fn orphan_cell_falls_back_to_the_pessimistic_bound() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("orphan");
        let x = b.input("in");
        let y = b.nand2(x, x, 1); // NAND2x1: absent, and no NAND2 sibling
        b.mark_output(y);
        let d = b.finish();
        for policy in [
            MissingArcPolicy::BorrowSibling { margin: 0.1 },
            MissingArcPolicy::PessimisticBound,
        ] {
            let cfg = StaConfig {
                missing_arc_policy: policy,
                ..StaConfig::default()
            };
            let report = analyze(&d, &lib, &cfg).unwrap();
            assert_eq!(report.degraded_arcs.len(), 1, "{policy:?}");
            assert_eq!(
                report.degraded_arcs[0].resolution,
                DegradeResolution::bound(),
                "{policy:?}: no donor arc exists, so the bound applies"
            );
            // The bound is BOUND_PESSIMISM x the slowest real arc, so it
            // dominates any single-gate delay in this library (~10 ps).
            assert!(report.degraded_arcs[0].assumed_delay >= 20e-12);
        }
    }

    #[test]
    fn injected_lookup_fault_respects_policy() {
        use cryo_spice::fault::FaultPlan;
        let lib = synth_lib();
        let mut b = DesignBuilder::new("inj");
        let mut x = b.input("in");
        for _ in 0..3 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        // The injection budget is per context and the engine labels one
        // context per instance, so scope the plan to a single instance to
        // kill exactly one arc.
        let victim = d.instances()[1].name.clone();
        let plan = FaultPlan {
            seed: 11,
            sta_lookup: 1.0,
            scope: Some(format!("sta:{victim}")),
            max_injections: Some(1),
            ..FaultPlan::default()
        };
        {
            let _g = fault::install_guard(plan.clone());
            assert!(matches!(
                analyze(&d, &lib, &StaConfig::default()),
                Err(StaError::ArcLookupFault { .. })
            ));
        }
        {
            let _g = fault::install_guard(plan);
            let cfg = StaConfig {
                missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.0 },
                ..StaConfig::default()
            };
            let report = analyze(&d, &lib, &cfg).unwrap();
            assert_eq!(fault::injection_count(), 1);
            assert_eq!(report.degraded_arcs.len(), 1);
            assert_eq!(report.degraded_arcs[0].cause, DegradeCause::InjectedFault);
            assert!(report.critical_path_delay > 0.0);
        }
        // With the injector gone the same analysis is clean again.
        let clean = analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(!clean.is_degraded());
    }

    #[test]
    fn degraded_analysis_is_deterministic() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("det");
        let clk = b.clock_input("clk");
        let din = b.input("din");
        let q = b.dff(din, clk, 1);
        let y = b.inv(q, 4); // degraded stage
        let _ = b.dff(y, clk, 1);
        let d = b.finish();
        let cfg = StaConfig {
            missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.1 },
            ..StaConfig::default()
        };
        let a = analyze(&d, &lib, &cfg).unwrap();
        let b = analyze(&d, &lib, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "serialized reports are byte-identical"
        );
    }

    #[test]
    fn arc_evaluations_are_counted() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("count");
        let mut x = b.input("in");
        for _ in 0..4 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        crate::counters::reset_eval_count();
        analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(
            crate::counters::eval_count() >= 4,
            "each chain stage evaluates at least one arc"
        );
        crate::counters::reset_eval_count();
    }
}
