//! Property-based tests on the NLDM audit: any physically-sane table is
//! accepted, and any single corrupted entry is flagged at exactly its
//! cell, arc, table, row, and column — nothing more, nothing less.

use proptest::prelude::*;
use serde::{Deserialize, Serialize, Value};

use cryo_liberty::{
    audit_cell, ArcKind, AuditConfig, Cell, Lut2, LogicFunction, Pin, TimingArc, TimingSense,
};

/// Rebuild a table with `values` through serde, bypassing the
/// `Lut2::new` validation — the only route by which a non-finite entry
/// can reach a library, and exactly the silent-corruption path the
/// audit exists to catch.
fn table_via_serde(t: &Lut2, values: Vec<f64>) -> Lut2 {
    let v = Value::Object(vec![
        ("index1".to_string(), t.index1().to_vec().to_value()),
        ("index2".to_string(), t.index2().to_vec().to_value()),
        ("values".to_string(), values.to_value()),
    ]);
    Lut2::from_value(&v).unwrap()
}

/// A strictly monotone (in both axes) positive delay grid: base plus
/// per-row and per-column increments. This is the shape every healthy
/// characterized table has.
fn monotone_table(n1: usize, n2: usize, base: f64, row_step: f64, col_step: f64) -> Lut2 {
    let index1: Vec<f64> = (0..n1).map(|i| 1e-12 * (i + 1) as f64).collect();
    let index2: Vec<f64> = (0..n2).map(|i| 1e-15 * (i + 1) as f64).collect();
    let mut values = Vec::with_capacity(n1 * n2);
    for r in 0..n1 {
        for c in 0..n2 {
            values.push(base + row_step * r as f64 + col_step * c as f64);
        }
    }
    Lut2::new(index1, index2, values).unwrap()
}

fn cell_with_rise(rise: Lut2) -> Cell {
    let (n1, n2) = (rise.index1().len(), rise.index2().len());
    let clean = || monotone_table(n1, n2, 1e-12, 1e-13, 1e-13);
    let f = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
    Cell {
        name: "INVx1".into(),
        area: 0.05,
        pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
        arcs: vec![TimingArc {
            related_pin: "A".into(),
            pin: "Y".into(),
            kind: ArcKind::Combinational,
            sense: TimingSense::NegativeUnate,
            cell_rise: rise,
            cell_fall: clean(),
            rise_transition: clean(),
            fall_transition: clean(),
        }],
        power_arcs: vec![],
        leakage_states: vec![(0, 1e-9)],
        ff: None,
        drive: 1,
    }
}

/// The coordinate suffix every finding must carry for exact attribution.
fn coord(r: usize, c: usize) -> String {
    format!("[{r},{c}]")
}

proptest! {
    /// Acceptance: whatever the grid size, base delay, or step sizes, a
    /// monotone positive table produces zero findings. The audit must not
    /// cry wolf on healthy libraries.
    #[test]
    fn monotone_tables_are_accepted(
        n1 in 2usize..6,
        n2 in 2usize..6,
        base in 1e-13f64..5e-11,
        row_step in 1e-14f64..1e-12,
        col_step in 1e-14f64..1e-12,
    ) {
        let cell = cell_with_rise(monotone_table(n1, n2, base, row_step, col_step));
        let rep = audit_cell("prop", &cell, &AuditConfig::default());
        prop_assert!(rep.is_clean(), "false positives: {:?}", rep.findings);
    }

    /// A single non-finite entry is flagged as exactly one `finite`
    /// finding at the perturbed coordinate.
    #[test]
    fn single_nonfinite_entry_is_flagged_at_its_coordinate(
        n1 in 2usize..6,
        n2 in 2usize..6,
        r_pick in 0usize..6,
        c_pick in 0usize..6,
        which in 0u8..3,
    ) {
        let (r, c) = (r_pick % n1, c_pick % n2);
        let t = monotone_table(n1, n2, 1e-12, 1e-13, 1e-13);
        let mut vals = t.values().to_vec();
        vals[r * n2 + c] = match which {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let bad = table_via_serde(&t, vals);
        let rep = audit_cell("prop", &cell_with_rise(bad), &AuditConfig::default());
        prop_assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        let f = &rep.findings[0];
        prop_assert_eq!(&f.invariant, "finite");
        prop_assert!(
            f.entity.ends_with(&format!("cell_rise{}", coord(r, c))),
            "wrong attribution: {}", f.entity
        );
        prop_assert_eq!(rep.offending_cells(), vec!["INVx1".to_string()]);
    }

    /// A single entry lowered below its left neighbor is flagged as
    /// exactly one `delay_monotone_load` finding at the dropped entry.
    #[test]
    fn single_monotone_drop_is_flagged_at_the_dropped_entry(
        n1 in 2usize..6,
        n2 in 2usize..6,
        r_pick in 0usize..6,
        c_pick in 0usize..6,
        factor in 0.05f64..0.5,
    ) {
        // The drop must have a left neighbor, so the column is >= 1.
        let (r, c) = (r_pick % n1, 1 + c_pick % (n2 - 1));
        let t = monotone_table(n1, n2, 1e-12, 1e-13, 1e-13);
        let mut vals = t.values().to_vec();
        // Still positive and finite — only the load-monotonicity breaks.
        vals[r * n2 + c] = vals[r * n2 + c - 1] * factor;
        let bad = Lut2::new(t.index1().to_vec(), t.index2().to_vec(), vals).unwrap();
        let rep = audit_cell("prop", &cell_with_rise(bad), &AuditConfig::default());
        prop_assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        let f = &rep.findings[0];
        prop_assert_eq!(&f.invariant, "delay_monotone_load");
        prop_assert!(
            f.entity.ends_with(&format!("cell_rise{}", coord(r, c))),
            "wrong attribution: {}", f.entity
        );
    }

    /// A single sign-flipped entry is flagged as `delay_positive` at the
    /// flipped coordinate, and every finding the flip induces (the flip
    /// also breaks load-monotonicity when it has a left neighbor) points
    /// at that same coordinate — attribution never bleeds onto healthy
    /// entries.
    #[test]
    fn single_sign_flip_attributes_only_the_flipped_entry(
        n1 in 2usize..6,
        n2 in 2usize..6,
        r_pick in 0usize..6,
        c_pick in 0usize..6,
    ) {
        let (r, c) = (r_pick % n1, c_pick % n2);
        let t = monotone_table(n1, n2, 1e-12, 1e-13, 1e-13);
        let mut vals = t.values().to_vec();
        vals[r * n2 + c] = -vals[r * n2 + c];
        let bad = Lut2::new(t.index1().to_vec(), t.index2().to_vec(), vals).unwrap();
        let rep = audit_cell("prop", &cell_with_rise(bad), &AuditConfig::default());
        prop_assert!(
            rep.findings.iter().any(|f| f.invariant == "delay_positive"),
            "{:?}", rep.findings
        );
        for f in &rep.findings {
            prop_assert!(
                f.entity.ends_with(&format!("cell_rise{}", coord(r, c))),
                "finding bled onto a healthy entry: {}", f.entity
            );
        }
    }
}
