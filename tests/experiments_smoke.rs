//! Smoke tests on the experiment drivers through the public API — every
//! paper artifact regenerates and shows the paper's qualitative trends.

use cryo_soc::core::experiments::{fig2_readout, fig3_transfer, fig7_scaling, table2_cycles};
use cryo_soc::core::{CryoFlow, FlowConfig};

fn flow() -> CryoFlow {
    CryoFlow::new(FlowConfig::fast(
        std::env::temp_dir().join("cryo_soc_experiments_it"),
    ))
}

#[test]
fn fig2_readout_regenerates() {
    let r = fig2_readout(11).expect("fig2 runs");
    assert_eq!(r.qubits, 27, "IBM Falcon class");
    assert!(r.knn_fidelity > 0.9);
    assert!(!r.shots.is_empty());
    assert_eq!(r.decay.first().map(|p| p.1), Some(1.0));
    let last = r.decay.last().unwrap();
    assert!(last.1 < 0.4, "decay curve actually decays");
}

#[test]
fn fig3_transfer_regenerates_both_polarities() {
    let devices = fig3_transfer(11).expect("fig3 runs");
    assert_eq!(devices.len(), 2);
    for d in &devices {
        assert_eq!(d.corners.len(), 4, "2 temps x 2 biases");
        assert!(
            d.vth_10k > d.vth_300k,
            "{}: Vth rises when cold",
            d.polarity
        );
        assert!(d.ioff_reduction > 50.0, "{}: leakage collapses", d.polarity);
        for corner in &d.corners {
            assert_eq!(corner.measured.len(), 121);
            assert_eq!(corner.model.len(), 121);
        }
    }
}

#[test]
fn table2_and_fig7_share_cycle_trends() {
    let f = flow();
    let t2 = table2_cycles(&f).expect("table2 runs");
    let f7 = fig7_scaling(&f).expect("fig7 runs");
    // Fig. 7's 20-qubit point must agree with Table 2's 20-qubit cell.
    let p20 = f7.points.iter().find(|p| p.qubits == 20).unwrap();
    assert!((p20.knn_cycles - t2.knn_20).abs() < 1.0);
    assert!((p20.hdc_cycles - t2.hdc_20).abs() < 3.0);
    // HDC stays above kNN everywhere.
    for p in &f7.points {
        assert!(p.hdc_time > p.knn_time, "at {} qubits", p.qubits);
    }
    // The headline: the SoC becomes the bottleneck in the low thousands.
    assert!(f7.knn_crossover > 800 && f7.knn_crossover < 3000);
}
