//! A small hand-rolled MLP with byte-deterministic training.
//!
//! Architecture: `[N_FEATURES, 16, 8, 1]` by default — tanh hidden layers,
//! linear output — trained with seeded minibatch SGD on the log-ratio
//! targets. Everything is fixed-order `f64` arithmetic over the
//! deterministic [`crate::det`] transcendentals, and the shuffle PRNG is a
//! self-contained splitmix64, so the same dataset, config, and seed produce
//! bit-identical weights on every platform and at every `CRYO_JOBS` level
//! (training is always single-threaded; parallelism lives in the SPICE
//! probe characterization, which has its own determinism contract).
//!
//! Training checkpoints after every epoch into a
//! [`cryo_cells::CheckpointStore`] blob (same checksummed, atomically
//! written envelope the characterization engine uses), recording the epoch
//! counter, the PRNG state, and the exact weight bit patterns. A killed
//! run resumes from the last finished epoch with zero repeated epochs, and
//! the resumed model is bit-identical to an uninterrupted one.

use cryo_cells::CheckpointStore;

use crate::det;
use crate::features::{ArcSample, Normalizer, N_FEATURES};

/// splitmix64: tiny, seedable, and fully specified — the shuffle order is
/// part of the determinism contract, so no external PRNG is used.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded construction.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Restore from a checkpointed state.
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Rng(state)
    }

    /// Current state, for checkpointing.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of entropy.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fully-connected feed-forward network, tanh hidden activations, linear
/// scalar output.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// Layer widths, input first, `1` last.
    pub sizes: Vec<usize>,
    /// Per-layer weight matrices, row-major `sizes[l+1] × sizes[l]`.
    pub weights: Vec<Vec<f64>>,
    /// Per-layer bias vectors, length `sizes[l+1]`.
    pub biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Glorot-uniform initialization from the given PRNG (consumed in fixed
    /// layer-major order, so init is part of the deterministic transcript).
    #[must_use]
    pub fn init(sizes: &[usize], rng: &mut Rng) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let s = (6.0 / (fan_in + fan_out) as f64).sqrt();
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| (2.0 * rng.next_f64() - 1.0) * s)
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Forward pass; `x` must have length `sizes[0]`. Returns the scalar
    /// output.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> f64 {
        let mut a = x.to_vec();
        let last = self.weights.len() - 1;
        for l in 0..self.weights.len() {
            a = self.layer(l, &a, l < last);
        }
        a[0]
    }

    fn layer(&self, l: usize, a: &[f64], hidden: bool) -> Vec<f64> {
        let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
        let mut out = Vec::with_capacity(n_out);
        for r in 0..n_out {
            let mut z = self.biases[l][r];
            for (c, &av) in a.iter().enumerate().take(n_in) {
                z += self.weights[l][r * n_in + c] * av;
            }
            out.push(if hidden { det::tanh(z) } else { z });
        }
        out
    }

    /// One SGD minibatch step: accumulate mean gradients over the batch by
    /// backpropagation, then update in place.
    fn sgd_step(&mut self, xs: &[&Vec<f64>], ys: &[f64], lr: f64) {
        let n_layers = self.weights.len();
        let mut gw: Vec<Vec<f64>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        for (x, &y) in xs.iter().zip(ys) {
            // Forward, keeping activations.
            let mut acts = vec![x.to_vec()];
            for l in 0..n_layers {
                let a = self.layer(l, &acts[l], l < n_layers - 1);
                acts.push(a);
            }
            // Backward. Output is linear: delta = (pred - y).
            let mut delta = vec![acts[n_layers][0] - y];
            for l in (0..n_layers).rev() {
                let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
                let a_prev = &acts[l];
                for r in 0..n_out {
                    gb[l][r] += delta[r];
                    for c in 0..n_in {
                        gw[l][r * n_in + c] += delta[r] * a_prev[c];
                    }
                }
                if l > 0 {
                    // d tanh(z) = 1 - a², with a the layer's activation.
                    let mut prev = vec![0.0; n_in];
                    for (c, p) in prev.iter_mut().enumerate() {
                        let mut s = 0.0;
                        for (r, d) in delta.iter().enumerate() {
                            s += self.weights[l][r * n_in + c] * d;
                        }
                        *p = s * (1.0 - a_prev[c] * a_prev[c]);
                    }
                    delta = prev;
                }
            }
        }
        let scale = lr / xs.len() as f64;
        for l in 0..n_layers {
            for (w, g) in self.weights[l].iter_mut().zip(&gw[l]) {
                *w -= scale * g;
            }
            for (b, g) in self.biases[l].iter_mut().zip(&gb[l]) {
                *b -= scale * g;
            }
        }
    }

    /// FNV-64 digest over the exact bit patterns of sizes, weights, and
    /// biases — the model's identity for golden checks and provenance tags.
    #[must_use]
    pub fn content_hash(&self) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &s in &self.sizes {
            mix(s as u64);
        }
        for layer in self.weights.iter().chain(&self.biases) {
            for &w in layer {
                mix(w.to_bits());
            }
        }
        format!("{h:016x}")
    }
}

/// Training hyperparameters. All fields participate in the checkpoint
/// compatibility line, so a config change never resumes a stale model.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// PRNG seed for init and shuffling.
    pub seed: u64,
    /// Total epochs to reach (a resumed run trains only the remainder).
    pub epochs: u32,
    /// Minibatch size.
    pub batch: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            seed: 7,
            epochs: 60,
            batch: 32,
            lr: 0.05,
            hidden: vec![16, 8],
        }
    }
}

impl TrainConfig {
    /// FNV-64 digest of the config, for checkpoint-compatibility checks and
    /// training-store keys. `epochs` is deliberately excluded: it is the
    /// stopping point along a trajectory, not part of the trajectory's
    /// identity — a checkpoint written at epoch k resumes under any target
    /// epoch count, which is exactly what kill/resume needs.
    #[must_use]
    pub fn content_hash(&self) -> String {
        fnv64(&format!(
            "seed={};batch={};lr={:e};hidden={:?}",
            self.seed, self.batch, self.lr, self.hidden
        ))
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained network.
    pub model: Mlp,
    /// Epochs actually executed by *this* call (a resume runs only the
    /// remainder — the kill/resume tests sum these across runs to prove no
    /// epoch was ever repeated).
    pub epochs_run: u32,
    /// Epoch the run started from (0 for a fresh run).
    pub resumed_from: u32,
}

/// Blob name used inside the training checkpoint store.
pub const MODEL_BLOB: &str = "surrogate_model";

/// Train (or finish training) the surrogate on the dataset's training
/// split. When `store` is given, every epoch checkpoints the full training
/// state and a prior checkpoint (matching config and dataset hashes) is
/// resumed instead of restarted.
#[must_use]
pub fn train(
    samples: &[&ArcSample],
    norm: &Normalizer,
    cfg: &TrainConfig,
    dataset_hash: &str,
    store: Option<&CheckpointStore>,
) -> TrainOutcome {
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| norm.normalize(&s.features)).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.target).collect();
    let mut sizes = vec![N_FEATURES];
    sizes.extend_from_slice(&cfg.hidden);
    sizes.push(1);

    let mut rng = Rng::new(cfg.seed);
    let mut model = Mlp::init(&sizes, &mut rng);
    let mut start_epoch = 0u32;
    if let Some(st) = store {
        if let Some(payload) = st.load_blob(MODEL_BLOB) {
            if let Some((epoch, state, restored)) =
                parse_checkpoint(&payload, cfg, dataset_hash, &sizes)
            {
                start_epoch = epoch;
                rng = Rng::from_state(state);
                model = restored;
            }
        }
    }

    for epoch in start_epoch..cfg.epochs {
        if !xs.is_empty() {
            let mut idx: Vec<usize> = (0..xs.len()).collect();
            for i in (1..idx.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                idx.swap(i, j);
            }
            for chunk in idx.chunks(cfg.batch.max(1)) {
                let bx: Vec<&Vec<f64>> = chunk.iter().map(|&i| &xs[i]).collect();
                let by: Vec<f64> = chunk.iter().map(|&i| ys[i]).collect();
                model.sgd_step(&bx, &by, cfg.lr);
            }
        }
        if let Some(st) = store {
            // Checkpoint I/O failure degrades resume, not correctness.
            let _ = st.store_blob(
                MODEL_BLOB,
                &format_checkpoint(epoch + 1, &rng, &model, cfg, dataset_hash),
            );
        }
    }

    TrainOutcome {
        model,
        epochs_run: cfg.epochs.saturating_sub(start_epoch),
        resumed_from: start_epoch,
    }
}

fn format_checkpoint(
    epoch: u32,
    rng: &Rng,
    model: &Mlp,
    cfg: &TrainConfig,
    dataset_hash: &str,
) -> String {
    // Weights are written as exact hex bit patterns: JSON float text would
    // round-trip, but bit-pattern hex makes the determinism contract
    // auditable by eye and immune to formatter drift.
    let mut out = String::new();
    out.push_str("cryo-surmodel v1\n");
    out.push_str(&format!("cfg {}\n", cfg.content_hash()));
    out.push_str(&format!("data {dataset_hash}\n"));
    out.push_str(&format!("epoch {epoch}\n"));
    out.push_str(&format!("rng {:016x}\n", rng.state()));
    let sizes: Vec<String> = model.sizes.iter().map(|s| s.to_string()).collect();
    out.push_str(&format!("sizes {}\n", sizes.join(" ")));
    for (l, w) in model.weights.iter().enumerate() {
        out.push_str(&format!("w{l}"));
        for &v in w {
            out.push_str(&format!(" {:016x}", v.to_bits()));
        }
        out.push('\n');
    }
    for (l, b) in model.biases.iter().enumerate() {
        out.push_str(&format!("b{l}"));
        for &v in b {
            out.push_str(&format!(" {:016x}", v.to_bits()));
        }
        out.push('\n');
    }
    out
}

fn parse_checkpoint(
    payload: &str,
    cfg: &TrainConfig,
    dataset_hash: &str,
    expect_sizes: &[usize],
) -> Option<(u32, u64, Mlp)> {
    let mut lines = payload.lines();
    if lines.next()? != "cryo-surmodel v1" {
        return None;
    }
    if lines.next()? != format!("cfg {}", cfg.content_hash()) {
        return None;
    }
    if lines.next()? != format!("data {dataset_hash}") {
        return None;
    }
    let epoch: u32 = lines.next()?.strip_prefix("epoch ")?.parse().ok()?;
    let state = u64::from_str_radix(lines.next()?.strip_prefix("rng ")?, 16).ok()?;
    let sizes: Vec<usize> = lines
        .next()?
        .strip_prefix("sizes ")?
        .split(' ')
        .map(|t| t.parse().ok())
        .collect::<Option<_>>()?;
    if sizes != expect_sizes {
        return None;
    }
    let parse_row = |line: &str, tag: &str, len: usize| -> Option<Vec<f64>> {
        let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
        let row: Vec<f64> = rest
            .split(' ')
            .map(|t| u64::from_str_radix(t, 16).ok().map(f64::from_bits))
            .collect::<Option<_>>()?;
        (row.len() == len).then_some(row)
    };
    let n_layers = sizes.len() - 1;
    let mut weights = Vec::with_capacity(n_layers);
    for l in 0..n_layers {
        weights.push(parse_row(lines.next()?, &format!("w{l}"), sizes[l] * sizes[l + 1])?);
    }
    let mut biases = Vec::with_capacity(n_layers);
    for l in 0..n_layers {
        biases.push(parse_row(lines.next()?, &format!("b{l}"), sizes[l + 1])?);
    }
    Some((epoch, state, Mlp { sizes, weights, biases }))
}

/// FNV-1a 64 over a string, 16 lowercase hex digits (the repo-wide digest
/// idiom — `fnv64("a") == "af63dc4c8601ec8c"`).
#[must_use]
pub fn fnv64(s: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ArcSample;

    fn toy_samples(n: usize) -> Vec<ArcSample> {
        // A learnable synthetic transfer: target depends linearly on two
        // feature slots; the rest hold structured filler.
        let mut rng = Rng::new(99);
        (0..n)
            .map(|i| {
                let mut f = vec![0.0; N_FEATURES];
                for slot in f.iter_mut() {
                    *slot = rng.next_f64();
                }
                let target = 0.8 * f[0] - 0.5 * f[9] + 0.1;
                ArcSample {
                    cell: format!("C{}", i % 4),
                    features: f,
                    target,
                    warm: 1e-12,
                    cold: 1e-12,
                }
            })
            .collect()
    }

    fn mse(m: &Mlp, norm: &Normalizer, samples: &[&ArcSample]) -> f64 {
        let e: f64 = samples
            .iter()
            .map(|s| {
                let d = m.forward(&norm.normalize(&s.features)) - s.target;
                d * d
            })
            .sum();
        e / samples.len() as f64
    }

    #[test]
    fn training_reduces_loss_and_is_deterministic() {
        let samples = toy_samples(200);
        let refs: Vec<&ArcSample> = samples.iter().collect();
        let norm = Normalizer::fit(samples.iter().map(|s| &s.features));
        let cfg = TrainConfig { epochs: 40, ..TrainConfig::default() };
        let mut rng = Rng::new(cfg.seed);
        let mut sizes = vec![N_FEATURES];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(1);
        let initial = Mlp::init(&sizes, &mut rng);
        let before = mse(&initial, &norm, &refs);
        let a = train(&refs, &norm, &cfg, "d0", None);
        let b = train(&refs, &norm, &cfg, "d0", None);
        assert!(mse(&a.model, &norm, &refs) < before * 0.2, "loss must drop substantially");
        assert_eq!(a.model.content_hash(), b.model.content_hash(), "training must be deterministic");
        assert_eq!(a.epochs_run, 40);
        assert_eq!(a.resumed_from, 0);
    }

    #[test]
    fn checkpointed_resume_is_bit_identical_with_zero_repeated_epochs() {
        let dir = std::env::temp_dir().join(format!("cryo_surmlp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let samples = toy_samples(120);
        let refs: Vec<&ArcSample> = samples.iter().collect();
        let norm = Normalizer::fit(samples.iter().map(|s| &s.features));
        let full = TrainConfig { epochs: 30, ..TrainConfig::default() };

        // Uninterrupted reference run.
        let reference = train(&refs, &norm, &full, "dh", None);

        // Interrupted run: stop after 11 epochs (as a kill between epochs
        // would), then resume toward 30 from the same store. The config
        // hash excludes `epochs`, so both legs share a checkpoint key.
        let store = CheckpointStore::open(&dir, "toy", &full.content_hash()).unwrap();
        let partial = TrainConfig { epochs: 11, ..full.clone() };
        let interrupted = train(&refs, &norm, &partial, "dh", Some(&store));
        assert_eq!(interrupted.epochs_run, 11);
        let resumed = train(&refs, &norm, &full, "dh", Some(&store));
        assert_eq!(resumed.resumed_from, 11, "resume must pick up the checkpoint");
        assert_eq!(resumed.epochs_run, 19, "resume must train only the remainder");
        assert_eq!(
            resumed.model.content_hash(),
            reference.model.content_hash(),
            "interrupted + resumed must be bit-identical to uninterrupted"
        );

        // Re-running a finished training is a pure no-op.
        let noop = train(&refs, &norm, &full, "dh", Some(&store));
        assert_eq!(noop.epochs_run, 0, "completed training must not repeat epochs");
        assert_eq!(noop.model.content_hash(), reference.model.content_hash());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let cfg = TrainConfig::default();
        let mut rng = Rng::new(3);
        let mut sizes = vec![N_FEATURES];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(1);
        let model = Mlp::init(&sizes, &mut rng);
        let payload = format_checkpoint(17, &rng, &model, &cfg, "abcd");
        let (epoch, state, back) = parse_checkpoint(&payload, &cfg, "abcd", &sizes).unwrap();
        assert_eq!(epoch, 17);
        assert_eq!(state, rng.state());
        assert_eq!(back, model);
        // Mismatched dataset or config must refuse to resume.
        assert!(parse_checkpoint(&payload, &cfg, "other", &sizes).is_none());
        let other = TrainConfig { lr: 0.01, ..cfg };
        assert!(parse_checkpoint(&payload, &other, "abcd", &sizes).is_none());
    }

    #[test]
    fn fnv64_matches_repo_idiom() {
        assert_eq!(fnv64("a"), "af63dc4c8601ec8c");
    }
}
