//! DC operating-point analysis with Newton iteration.
//!
//! The nonlinear solve is hardened the way production SPICE engines are:
//! plain Newton first, then gmin stepping (a shunt conductance from every
//! node to ground relaxed in decades), then source stepping (supplies ramped
//! from zero). Standard-cell circuits almost always converge on the first
//! attempt; the fallbacks exist for pathological stimulus corners.

use crate::circuit::{Circuit, ElementKind, NodeId, GROUND};
use crate::fault::{self, FaultSite, SolveFault};
use crate::solver::Matrix;
use crate::sparse::{self, KernelKind, SparseLu, Workspace};
use crate::{Result, SpiceError};

/// Voltage convergence tolerance, volts.
pub(crate) const VTOL: f64 = 1e-7;
/// Branch-current convergence tolerance, amperes.
pub(crate) const ITOL: f64 = 1e-10;
/// Maximum Newton iterations per solve.
pub(crate) const MAX_ITERS: usize = 260;
/// Per-iteration voltage update clamp, volts (damping).
pub(crate) const DV_CLAMP: f64 = 0.25;

/// Capacitor companion state for transient steps (trapezoidal).
#[derive(Debug, Clone)]
pub(crate) struct CapCompanion {
    /// Equivalent conductance `2C/dt` per capacitor, in element order.
    pub geq: Vec<f64>,
    /// History current term per capacitor.
    pub hist: Vec<f64>,
}

/// Assemble the linearized MNA system at the trial solution `x` into
/// `ws.mat`/`ws.rhs`.
///
/// `x` holds node voltages for nodes `1..n` followed by source branch
/// currents. The produced system solves directly for the next trial vector.
///
/// Device-model evaluation is batched: all FET bias points are gathered
/// into the workspace's flat SoA buffers and evaluated in one contiguous
/// pass before any stamping. The model functions are pure and the stamps
/// are applied in the original element order, so the results are
/// bit-identical to interleaved evaluation.
pub(crate) fn assemble(
    ckt: &Circuit,
    x: &[f64],
    time: f64,
    gmin: f64,
    src_scale: f64,
    caps: Option<&CapCompanion>,
    ws: &mut Workspace,
) {
    let nn = ckt.node_count() - 1; // unknown node voltages
    let mat = &mut ws.mat;
    let rhs = &mut ws.rhs;
    mat.clear();
    rhs.fill(0.0);
    let v_of = |node: NodeId, x: &[f64]| -> f64 {
        if node == GROUND {
            0.0
        } else {
            x[node - 1]
        }
    };
    // Batched device evaluation, pass 1: gather bias points.
    ws.fet_vgs.clear();
    ws.fet_vds.clear();
    for el in ckt.elements() {
        if let ElementKind::Fet { d, g, s, .. } = &el.kind {
            ws.fet_vgs.push(v_of(*g, x) - v_of(*s, x));
            ws.fet_vds.push(v_of(*d, x) - v_of(*s, x));
        }
    }
    // Pass 2: evaluate every model in one sweep over the SoA buffers.
    // Clamps are applied at stamp time; the NaN poison is a persistent
    // per-solve flag, so checking it here preserves the element-order
    // semantics of the interleaved path.
    ws.fet_ids.clear();
    ws.fet_gm.clear();
    ws.fet_gds.clear();
    let mut fi = 0usize;
    for el in ckt.elements() {
        if let ElementKind::Fet { dev, .. } = &el.kind {
            let (vgs, vds) = (ws.fet_vgs[fi], ws.fet_vds[fi]);
            ws.fet_ids.push(if fault::nan_poisoned() {
                f64::NAN
            } else {
                dev.ids(vgs, vds)
            });
            ws.fet_gm.push(dev.gm(vgs, vds));
            ws.fet_gds.push(dev.gds(vgs, vds));
            fi += 1;
        }
    }
    // gmin from every node to ground keeps the matrix non-singular for
    // floating nodes and aids Newton convergence.
    for i in 0..nn {
        mat.add(i, i, gmin);
    }
    // Pass 3: stamp in element order.
    let mut cap_idx = 0usize;
    let mut fet_idx = 0usize;
    for el in ckt.elements() {
        match &el.kind {
            ElementKind::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                stamp_conductance(mat, *a, *b, g);
            }
            ElementKind::Capacitor { a, b, .. } => {
                if let Some(c) = caps {
                    let g = c.geq[cap_idx];
                    let hist = c.hist[cap_idx];
                    stamp_conductance(mat, *a, *b, g);
                    if *a != GROUND {
                        rhs[*a - 1] += hist;
                    }
                    if *b != GROUND {
                        rhs[*b - 1] -= hist;
                    }
                }
                cap_idx += 1;
            }
            ElementKind::VSource {
                pos,
                neg,
                source,
                branch,
            } => {
                let row = nn + branch;
                if *pos != GROUND {
                    mat.add(*pos - 1, row, 1.0);
                    mat.add(row, *pos - 1, 1.0);
                }
                if *neg != GROUND {
                    mat.add(*neg - 1, row, -1.0);
                    mat.add(row, *neg - 1, -1.0);
                }
                rhs[row] = source.value(time) * src_scale;
            }
            ElementKind::Fet { d, g, s, .. } => {
                let vgs = ws.fet_vgs[fet_idx];
                let vds = ws.fet_vds[fet_idx];
                let ids = ws.fet_ids[fet_idx];
                let gm = ws.fet_gm[fet_idx].max(0.0);
                let gds = ws.fet_gds[fet_idx].max(1e-12);
                fet_idx += 1;
                // Norton equivalent: I = Ieq + gm·vgs + gds·vds.
                let ieq = ids - gm * vgs - gds * vds;
                // KCL: current ids flows d -> s.
                stamp_vccs(mat, *d, *s, *g, *s, gm);
                stamp_conductance(mat, *d, *s, gds);
                if *d != GROUND {
                    rhs[*d - 1] -= ieq;
                }
                if *s != GROUND {
                    rhs[*s - 1] += ieq;
                }
            }
        }
    }
}

/// Stamp a two-terminal conductance.
fn stamp_conductance(mat: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
    if a != GROUND {
        mat.add(a - 1, a - 1, g);
    }
    if b != GROUND {
        mat.add(b - 1, b - 1, g);
    }
    if a != GROUND && b != GROUND {
        mat.add(a - 1, b - 1, -g);
        mat.add(b - 1, a - 1, -g);
    }
}

/// Stamp a voltage-controlled current source `I(out+ -> out-) = g·(Vc+ - Vc-)`.
fn stamp_vccs(mat: &mut Matrix, op: NodeId, om: NodeId, cp: NodeId, cm: NodeId, g: f64) {
    for (node, sign) in [(op, 1.0), (om, -1.0)] {
        if node == GROUND {
            continue;
        }
        if cp != GROUND {
            mat.add(node - 1, cp - 1, sign * g);
        }
        if cm != GROUND {
            mat.add(node - 1, cm - 1, -sign * g);
        }
    }
}

/// Attach the circuit unknown's name to a bare singular-matrix error so
/// characterization logs can point at the offending node.
fn name_singular(ckt: &Circuit, e: SpiceError) -> SpiceError {
    match e {
        SpiceError::SingularMatrix { column, node: None } => SpiceError::SingularMatrix {
            column,
            node: Some(ckt.unknown_name(column)),
        },
        other => other,
    }
}

/// Newton iteration at a fixed time point; returns the converged unknown
/// vector.
///
/// When `slu` is provided, factorizations go through the sparse kernel's
/// symbolic-reuse path (bit-identical to dense by construction); the caller
/// owns the [`SparseLu`] so its analysis persists across Newton calls of
/// the same circuit (gmin ladder rungs, transient timesteps).
#[allow(clippy::too_many_arguments)] // the solver state plus the kernel handle
pub(crate) fn newton(
    ckt: &Circuit,
    x0: &[f64],
    time: f64,
    gmin: f64,
    src_scale: f64,
    caps: Option<&CapCompanion>,
    analysis: &'static str,
    mut slu: Option<&mut SparseLu>,
) -> Result<Vec<f64>> {
    let n = ckt.unknowns();
    let nn = ckt.node_count() - 1;
    sparse::with_ws(n, |ws| {
        let mut x = x0.to_vec();
        let mut worst = f64::INFINITY;
        let mut iters = 0u64;
        let outcome = 'newton: {
            for iter in 0..MAX_ITERS {
                // Progressively tighter damping breaks limit cycles on circuits
                // with weakly-defined internal nodes (stacked off-transistors).
                let clamp = match iter {
                    0..=80 => DV_CLAMP,
                    81..=160 => 0.05,
                    _ => 0.01,
                };
                iters += 1;
                assemble(ckt, &x, time, gmin, src_scale, caps, ws);
                match slu.as_mut() {
                    Some(lu) => {
                        let (mat, saved) = (&mut ws.mat, &mut ws.saved);
                        if let Err(e) = lu.factor(mat, saved) {
                            break 'newton Err(name_singular(ckt, e));
                        }
                        lu.solve(&ws.mat, &mut ws.rhs);
                    }
                    None => {
                        let perm = match ws.mat.lu_factor() {
                            Ok(p) => p,
                            Err(e) => break 'newton Err(name_singular(ckt, e)),
                        };
                        ws.mat.lu_solve(&perm, &mut ws.rhs);
                    }
                }
                // rhs now holds the next trial vector. A NaN/inf here means a
                // device model blew up; report that as its own error rather
                // than iterating on poison until the budget runs out.
                if ws.rhs.iter().any(|v| !v.is_finite()) {
                    break 'newton Err(SpiceError::NonFinite { analysis, time });
                }
                worst = 0.0;
                for i in 0..n {
                    let mut delta = ws.rhs[i] - x[i];
                    if i < nn {
                        delta = delta.clamp(-clamp, clamp);
                        worst = worst.max(delta.abs());
                    } else {
                        // Branch currents converge with the voltages; track
                        // them with a looser relative criterion.
                        worst = worst.max(delta.abs().min(1.0) * (ITOL / VTOL) * 1e-3);
                    }
                    x[i] += delta;
                }
                if worst < VTOL {
                    break 'newton Ok(x);
                }
            }
            Err(SpiceError::NoConvergence {
                analysis,
                time,
                residual: worst,
            })
        };
        sparse::bump_stats(|s| s.newton_iters += iters);
        outcome
    })
}

/// A converged DC solution.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    n_nodes: usize,
    x: Vec<f64>,
}

impl DcSolution {
    /// Voltage of a node (volts). Ground reads 0.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node == GROUND {
            0.0
        } else {
            self.x[node - 1]
        }
    }

    /// Current through a voltage source's branch (amperes), flowing into the
    /// positive terminal — negative when the source delivers power.
    #[must_use]
    pub fn branch_current(&self, branch: usize) -> f64 {
        self.x[self.n_nodes - 1 + branch]
    }

    /// The raw unknown vector (node voltages then branch currents).
    #[must_use]
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Compute the DC operating point of `ckt` at `t = 0` source values.
///
/// # Errors
///
/// - [`SpiceError::EmptyCircuit`] for a circuit with no elements.
/// - [`SpiceError::NoConvergence`] if Newton, gmin stepping and source
///   stepping all fail.
/// - [`SpiceError::SingularMatrix`] for structurally defective circuits.
pub fn dc_operating_point(ckt: &Circuit) -> Result<DcSolution> {
    dc_operating_point_with(ckt, 1e-12)
}

/// [`dc_operating_point`] with a caller-chosen starting gmin.
///
/// The characterization retry ladder relaxes the first-attempt gmin on
/// circuits that defeated the default solve; a larger shunt conductance
/// trades a little accuracy for a much wider Newton convergence basin
/// (the gmin/source-stepping fallbacks still tighten back down).
///
/// # Errors
///
/// Same contract as [`dc_operating_point`].
pub fn dc_operating_point_with(ckt: &Circuit, gmin0: f64) -> Result<DcSolution> {
    if ckt.elements().is_empty() {
        return Err(SpiceError::EmptyCircuit);
    }
    fault::count_dc_solve();
    let _poison = match fault::begin_solve(FaultSite::DcSolve) {
        Some(SolveFault::NanDevice) => Some(fault::NanPoisonGuard::armed()),
        Some(f) => return Err(fault::injected_error(f, "dc")),
        None => None,
    };
    // Warm start: all load/slew grid points of an arc share the same DC
    // operating point (capacitors don't stamp in DC), so a converged vector
    // keyed on the exact DC-relevant netlist bits can be reused verbatim.
    // The solve counter and fault-site roll above run *unconditionally*, so
    // a memo hit consumes exactly the same fault-injection stream and sim
    // counts as a cold solve — warm starts are invisible to everything but
    // wall time and [`crate::KernelStats`]. Poisoned solves bypass the memo
    // entirely (they must fail the same way every time).
    let memo_key = if _poison.is_none() && sparse::warmstart_enabled() {
        let key = sparse::dc_memo_key(ckt, gmin0);
        if let Some(x) = sparse::dc_memo_get(&key) {
            return Ok(DcSolution {
                n_nodes: ckt.node_count(),
                x,
            });
        }
        Some(key)
    } else {
        None
    };
    let mut slu = match sparse::current_kernel() {
        KernelKind::Sparse => Some(SparseLu::for_circuit(ckt, false)),
        KernelKind::Dense => None,
    };
    let x = dc_solve_ladder(ckt, gmin0, &mut slu)?;
    if let Some(key) = memo_key {
        sparse::dc_memo_put(key, x.clone());
    }
    Ok(DcSolution {
        n_nodes: ckt.node_count(),
        x,
    })
}

/// The Newton continuation ladder: plain solve, then gmin stepping, then
/// source stepping. One [`SparseLu`] (when the sparse kernel is active)
/// carries its symbolic analysis across every rung.
fn dc_solve_ladder(
    ckt: &Circuit,
    gmin0: f64,
    slu: &mut Option<SparseLu>,
) -> Result<Vec<f64>> {
    let n = ckt.unknowns();
    let x0 = vec![0.0; n];

    // 1. Plain Newton with the starting gmin.
    if let Ok(x) = newton(ckt, &x0, 0.0, gmin0, 1.0, None, "dc", slu.as_mut()) {
        return Ok(x);
    }
    // 2. gmin stepping: relax then tighten (never below the caller's floor).
    let mut x = x0.clone();
    let mut ok = true;
    for exp in [3, 5, 7, 9, 12] {
        let gmin = 10f64.powi(-exp).max(gmin0);
        match newton(ckt, &x, 0.0, gmin, 1.0, None, "dc", slu.as_mut()) {
            Ok(next) => x = next,
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(x);
    }
    // 3. Source stepping at moderate gmin.
    let mut x = x0;
    for step in 1..=20 {
        let scale = step as f64 / 20.0;
        x = newton(ckt, &x, 0.0, 1e-9_f64.max(gmin0), scale, None, "dc", slu.as_mut())?;
    }
    // Final polish at full sources and the caller's gmin floor.
    newton(ckt, &x, 0.0, gmin0, 1.0, None, "dc", slu.as_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use cryo_device::{FinFet, ModelCard, Polarity};

    #[test]
    fn resistor_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, GROUND, Source::dc(2.0));
        c.resistor("R1", a, m, 1000.0);
        c.resistor("R2", m, GROUND, 3000.0);
        let op = dc_operating_point(&c).unwrap();
        assert!((op.voltage(m) - 1.5).abs() < 1e-8);
        // Branch current: 2 V over 4 kΩ = 0.5 mA delivered; into + terminal
        // it reads negative.
        assert!((op.branch_current(0) + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert!(matches!(
            dc_operating_point(&c),
            Err(SpiceError::EmptyCircuit)
        ));
    }

    #[test]
    fn inverter_transfers_logic_levels() {
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        for (vin, expect_high) in [(0.0, true), (vdd, false)] {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let inn = c.node("in");
            let out = c.node("out");
            c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
            c.vsource("VIN", inn, GROUND, Source::dc(vin));
            c.finfet("MN", out, inn, GROUND, FinFet::new(&nc, 300.0, 2));
            c.finfet("MP", out, inn, vdd_n, FinFet::new(&pc, 300.0, 3));
            let op = dc_operating_point(&c).unwrap();
            let vout = op.voltage(out);
            if expect_high {
                assert!(vout > 0.95 * vdd, "vout = {vout}");
            } else {
                assert!(vout < 0.05 * vdd, "vout = {vout}");
            }
        }
    }

    #[test]
    fn inverter_supply_leakage_drops_at_cryo() {
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        let leak = |temp: f64| -> f64 {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let inn = c.node("in");
            let out = c.node("out");
            c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
            c.vsource("VIN", inn, GROUND, Source::dc(0.0));
            c.finfet("MN", out, inn, GROUND, FinFet::new(&nc, temp, 2));
            c.finfet("MP", out, inn, vdd_n, FinFet::new(&pc, temp, 3));
            let op = dc_operating_point(&c).unwrap();
            -op.branch_current(0) * vdd
        };
        let p300 = leak(300.0);
        let p10 = leak(10.0);
        assert!(p300 > 0.0 && p10 > 0.0);
        assert!(
            p300 / p10 > 100.0,
            "leakage power must collapse: {p300:.3e} W -> {p10:.3e} W"
        );
    }

    #[test]
    fn nand_gate_dc_truth_table() {
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        for (a_in, b_in) in [(0.0, 0.0), (0.0, vdd), (vdd, 0.0), (vdd, vdd)] {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let a = c.node("a");
            let b = c.node("b");
            let out = c.node("out");
            let mid = c.node("mid");
            c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
            c.vsource("VA", a, GROUND, Source::dc(a_in));
            c.vsource("VB", b, GROUND, Source::dc(b_in));
            // Pull-down stack, pull-up parallel pair.
            c.finfet("MN1", out, a, mid, FinFet::new(&nc, 300.0, 2));
            c.finfet("MN2", mid, b, GROUND, FinFet::new(&nc, 300.0, 2));
            c.finfet("MP1", out, a, vdd_n, FinFet::new(&pc, 300.0, 2));
            c.finfet("MP2", out, b, vdd_n, FinFet::new(&pc, 300.0, 2));
            let op = dc_operating_point(&c).unwrap();
            let vout = op.voltage(out);
            let expect_low = a_in > 0.5 && b_in > 0.5;
            if expect_low {
                assert!(vout < 0.07, "NAND({a_in},{b_in}) = {vout}");
            } else {
                assert!(vout > 0.63, "NAND({a_in},{b_in}) = {vout}");
            }
        }
    }
}
