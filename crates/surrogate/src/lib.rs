#![warn(missing_docs)]
//! Learned library prediction: train on SPICE-characterized corners, infer
//! new (VDD, T) corners, and let an audit-gated fallback catch what the
//! model gets wrong.
//!
//! Characterizing one corner of the standard-cell library costs thousands
//! of SPICE transients. This crate replaces most of them with a learned
//! *transfer*: SPICE-characterize a small probe set (the drive-1 cells) at
//! the target corner, train a small MLP on how each table entry moved
//! relative to an already-characterized warm corner, then predict every
//! remaining cell's tables from its warm anchor — orders of magnitude
//! faster than simulating them (see `benches/surrogate.rs`).
//!
//! The pipeline, mirroring the paper's intelligent-methods theme of
//! ML-assisted test generation with verification backstops:
//!
//! 1. [`features`] — build a per-table-entry dataset from the warm library,
//!    the cold probe library, cell topology descriptors, and
//!    [`cryo_device::CornerScalars`] model-card physics.
//! 2. [`mlp`] — train a hand-rolled `[features, 16, 8, 1]` network with
//!    seeded minibatch SGD. Training is byte-deterministic (own
//!    [`det`] transcendentals, splitmix64 shuffles) and checkpoints every
//!    epoch, so a killed run resumes with zero repeated epochs and a
//!    bit-identical final model.
//! 3. [`predict`] — emit a full [`cryo_liberty::Library`] tagged
//!    [`cryo_liberty::Provenance::Predicted`], with delay tables
//!    load-monotone by construction and leakage scaled by device physics.
//!
//! Trust is never assumed: the flow layer (`cryo-core`) runs every
//! predicted library through the signoff audit firewall, and any cell whose
//! held-out residual or audit finding exceeds the configured bound is
//! individually re-characterized with SPICE — the same quarantine-repair
//! path the firewall uses for corrupted characterizations.

pub mod det;
pub mod features;
pub mod mlp;
pub mod predict;

pub use features::{ArcSample, CellDescriptor, Dataset, Edge, Normalizer, TableKind};
pub use mlp::{fnv64, train, Mlp, Rng, TrainConfig, TrainOutcome, MODEL_BLOB};
pub use predict::Surrogate;

use cryo_cells::CheckpointStore;
use cryo_device::CornerScalars;
use cryo_liberty::Library;

/// End-to-end fit: build the dataset from the two libraries, fit the
/// feature normalizer, train (resuming from `store` when possible), and
/// return the ready-to-serve [`Surrogate`] with its training outcome and
/// the dataset (for residual accounting).
#[must_use]
pub fn fit(
    warm: &Library,
    cold_probe: &Library,
    warm_sc: CornerScalars,
    cold_sc: CornerScalars,
    cfg: &TrainConfig,
    store: Option<&CheckpointStore>,
) -> (Surrogate, TrainOutcome, Dataset) {
    let dataset = Dataset::build(warm, cold_probe, &warm_sc, &cold_sc);
    let norm = Normalizer::fit(dataset.samples.iter().map(|s| &s.features));
    let train_split = dataset.train_split();
    let outcome = train(&train_split, &norm, cfg, &dataset.content_hash(), store);
    let surrogate = Surrogate {
        model: outcome.model.clone(),
        norm,
        warm_sc,
        cold_sc,
    };
    (surrogate, outcome, dataset)
}
