//! Regenerates Fig. 3: FinFET transfer characteristics, measurement vs
//! calibrated compact model, at 300 K and 10 K.
use cryo_core::experiments::fig3_transfer;

fn main() {
    let devices = fig3_transfer(7).expect("fig3");
    cryo_bench::maybe_write_json("fig3", &devices);
    for d in &devices {
        println!("=== Fig. 3: {} ===", d.polarity);
        println!("calibration RMS error: {:.3} decades", d.calibration_rms);
        let paper_pct = if d.polarity.starts_with('n') {
            47.0
        } else {
            39.0
        };
        println!(
            "{}",
            cryo_bench::compare(
                "Vth increase at 10 K (%)",
                paper_pct,
                d.vth_increase_pct,
                "%"
            )
        );
        println!(
            "  Vth: {:.3} V (300 K) -> {:.3} V (10 K)",
            d.vth_300k, d.vth_10k
        );
        println!(
            "  SS:  {:.1} mV/dec (300 K) -> {:.1} mV/dec (10 K)",
            d.ss_300k, d.ss_10k
        );
        println!(
            "  Ion(10K)/Ion(300K) = {:.3}   Ioff reduction = {:.1}x",
            d.ion_ratio, d.ioff_reduction
        );
        for c in &d.corners {
            println!("  curve T={:.0}K Vds={:.2}V: {} measured pts; model Ids at Vgs=0/0.35/0.7 = {:.2e}/{:.2e}/{:.2e} A",
                c.temp, c.vds, c.measured.len(),
                c.model.first().map_or(0.0, |p| p.1),
                c.model.get(c.model.len() / 2).map_or(0.0, |p| p.1),
                c.model.last().map_or(0.0, |p| p.1));
        }
        println!();
    }
}
