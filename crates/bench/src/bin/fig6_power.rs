//! Regenerates Fig. 6: kNN average-power breakdown at 300 K and 10 K.
use cryo_core::experiments::fig6_power;

fn main() {
    let flow = cryo_bench::flow_from_args();
    let r = fig6_power(&flow).expect("fig6");
    cryo_bench::maybe_write_json("fig6", &r);
    println!("=== Fig. 6: average power, kNN classification workload ===");
    println!(
        "(activity scale calibrated to the paper's 63.5 mW anchor: {:.3})",
        r.activity_scale
    );
    for (c, paper) in [
        (&r.at_300k, [63.5, 11.0, 193.0]),
        (&r.at_10k, [57.4, 0.43, 0.05]),
    ] {
        println!("--- {} K at {:.0} MHz ---", c.temp, c.frequency / 1e6);
        println!(
            "{}",
            cryo_bench::compare("dynamic (mW)", paper[0], c.dynamic_w * 1e3, "mW")
        );
        println!(
            "{}",
            cryo_bench::compare(
                "logic leakage (mW)",
                paper[1],
                c.logic_leakage_w * 1e3,
                "mW"
            )
        );
        println!(
            "{}",
            cryo_bench::compare("SRAM leakage (mW)", paper[2], c.sram_leakage_w * 1e3, "mW")
        );
        println!(
            "total: {:.2} mW  {}",
            c.total() * 1e3,
            cryo_bench::bar(c.total(), 0.27, 40)
        );
    }
    println!(
        "Dhrystone (general average): dynamic {:.1} mW @300K, {:.1} mW @10K",
        r.dhrystone_dynamic_300k * 1e3,
        r.dhrystone_dynamic_10k * 1e3
    );
    println!(
        "fits 100 mW cooling budget: 300K = {} (paper: no), 10K = {} (paper: yes)",
        r.fits_300k, r.fits_10k
    );
    println!(
        "leakage reduction at 10 K: {:.2} % (paper: 99.76 %)",
        r.leakage_reduction_pct
    );
}
