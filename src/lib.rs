#![warn(missing_docs)]
//! `cryo-soc` — a full-stack reproduction of *"Cryogenic Embedded System to
//! Support Quantum Computing: From 5-nm FinFET to Full Processor"* (IEEE
//! TQE 2023) in pure Rust.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`device`] | cryogenic-aware FinFET compact model + virtual wafer + calibration |
//! | [`spice`] | MNA circuit simulator (DC, transient, waveform measurements) |
//! | [`liberty`] | NLDM timing/power library model + Liberty-style format |
//! | [`cells`] | 169 standard-cell topologies + characterization engine |
//! | [`netlist`] | gate-level netlists, SRAM macros, the RV64 SoC generator |
//! | [`sta`] | static timing analysis |
//! | [`power`] | activity-driven power analysis |
//! | [`riscv`] | RV64IMFD simulator, assembler, pipeline + cache timing |
//! | [`qubit`] | qubit readout model, calibration, decoherence budgets |
//! | [`hdc`] | hyperdimensional computing primitives |
//! | [`surrogate`] | learned library prediction: train on SPICE corners, infer new (VDD, T) |
//! | [`core`] | the end-to-end exploration flow + experiment drivers |
//!
//! # Quickstart
//!
//! ```no_run
//! use cryo_soc::core::{CryoFlow, FlowConfig, Workload};
//!
//! let flow = CryoFlow::new(FlowConfig::fast("data"));
//! let run = flow.run_workload(Workload::Knn { n: 27 })?;
//! println!("{:.1} cycles per classification", run.cycles_per_item);
//! # Ok::<(), cryo_soc::core::CoreError>(())
//! ```

pub use cryo_cells as cells;
pub use cryo_core as core;
pub use cryo_device as device;
pub use cryo_hdc as hdc;
pub use cryo_liberty as liberty;
pub use cryo_netlist as netlist;
pub use cryo_power as power;
pub use cryo_qubit as qubit;
pub use cryo_riscv as riscv;
pub use cryo_spice as spice;
pub use cryo_sta as sta;
pub use cryo_surrogate as surrogate;
