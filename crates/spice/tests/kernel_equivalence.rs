//! Differential harness: the sparse kernel must be indistinguishable from
//! the dense kernel.
//!
//! Three layers of agreement are asserted, from strongest to weakest:
//!
//! 1. **Bitwise** — the structural kernel (`SparseLu`, what `CRYO_KERNEL=
//!    sparse` runs) factors random MNA-shaped systems to the same bits as
//!    `Matrix::lu_factor`, and full DC/transient analyses of random RC and
//!    MOSFET circuits produce byte-identical solution vectors under both
//!    kernel selections. Error classifications (singular column, injected
//!    convergence failures) must also match exactly.
//! 2. **1e-12 relative** — the general compressed-storage engine
//!    (`CsrMatrix`, min-degree ordering) agrees with dense to rounding; its
//!    reordered elimination cannot be bitwise-identical by design.
//! 3. **Warm-start transparency** — a memo-served DC operating point is
//!    byte-identical to the cold solve it replayed.

use cryo_spice::solver::Matrix;
use cryo_spice::{
    dc_operating_point, fault, kernel_override_guard, transient, warmstart_override_guard,
    Circuit, CsrMatrix, FaultPlan, KernelKind, Source, SpiceError, TranConfig, GROUND,
};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Random system / circuit generators
// ----------------------------------------------------------------------

/// Random MNA-shaped system: strong diagonal, banded off-diagonal fill
/// with holes, occasional asymmetric entries — plus a right-hand side.
#[derive(Debug, Clone)]
struct RandomSystem {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
    rhs: Vec<f64>,
}

impl RandomSystem {
    fn dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n);
        for &(r, c, v) in &self.entries {
            m.set(r, c, m.get(r, c) + v);
        }
        m
    }
}

fn random_system() -> impl Strategy<Value = RandomSystem> {
    // The vendored proptest has no `prop_flat_map`, so sizes can't feed later
    // strategies: generate max-size pools and cut them down to `n` in the map.
    const MAX_N: usize = 31;
    (
        2usize..MAX_N + 1,
        proptest::collection::vec(0.5f64..8.0, MAX_N),
        proptest::collection::vec(
            ((0u32..4096), (0u32..4096), -2.0f64..2.0, 0u32..10),
            0..4 * MAX_N,
        ),
        proptest::collection::vec(-3.0f64..3.0, MAX_N),
    )
        .prop_map(|(n, diag, offs, rhs)| {
            let mut entries: Vec<(usize, usize, f64)> = diag
                .into_iter()
                .take(n)
                .enumerate()
                .map(|(i, v)| (i, i, v))
                .collect();
            for (rs, cs, v, keep) in offs {
                let (r, c) = (rs as usize % n, cs as usize % n);
                // `keep < 4` stands in for `bool::weighted(0.4)`.
                if keep < 4 && r != c {
                    entries.push((r, c, v));
                }
            }
            let rhs = rhs.into_iter().take(n).collect();
            RandomSystem { n, entries, rhs }
        })
}

/// Random RC ladder driven by a ramp: `stages` RC sections, randomized
/// values, an occasional bridging resistor for irregular patterns.
#[derive(Debug, Clone)]
struct RcLadder {
    stages: usize,
    r: Vec<f64>,
    c: Vec<f64>,
    bridge: bool,
    v0: f64,
    v1: f64,
}

fn rc_ladder() -> impl Strategy<Value = RcLadder> {
    const MAX_STAGES: usize = 5;
    (
        1usize..MAX_STAGES + 1,
        proptest::collection::vec(100.0f64..10_000.0, MAX_STAGES),
        proptest::collection::vec(0.1e-15f64..20e-15, MAX_STAGES),
        0u8..2,
        0.0f64..0.3,
        0.4f64..1.0,
    )
        .prop_map(|(stages, mut r, mut c, bridge, v0, v1)| {
            r.truncate(stages);
            c.truncate(stages);
            RcLadder {
                stages,
                r,
                c,
                bridge: bridge == 1,
                v0,
                v1,
            }
        })
}

impl RcLadder {
    fn build(&self) -> Circuit {
        let mut ckt = Circuit::new();
        let inn = ckt.node("in");
        ckt.vsource(
            "VIN",
            inn,
            GROUND,
            Source::ramp(self.v0, self.v1, 20e-12, 15e-12),
        );
        let mut prev = inn;
        for i in 0..self.stages {
            let node = ckt.node(&format!("n{i}"));
            ckt.resistor(&format!("R{i}"), prev, node, self.r[i]);
            ckt.capacitor(&format!("C{i}"), node, GROUND, self.c[i]);
            prev = node;
        }
        if self.bridge && self.stages >= 2 {
            let a = ckt.node("n0");
            let b = ckt.node(&format!("n{}", self.stages - 1));
            if a != b {
                ckt.resistor("RBRIDGE", a, b, 50_000.0);
            }
        }
        ckt
    }
}

/// Random inverter chain: FinFET circuits with varying fins, temperature,
/// wire load, and chain depth.
#[derive(Debug, Clone)]
struct FetChain {
    stages: usize,
    nfins: u32,
    pfins: u32,
    temp_sel: u8,
    cload: f64,
}

fn fet_chain() -> impl Strategy<Value = FetChain> {
    (1usize..4, 1u32..4, 1u32..4, 0u8..3, 0.5e-15f64..6e-15).prop_map(
        |(stages, nfins, pfins, temp_sel, cload)| FetChain {
            stages,
            nfins,
            pfins,
            temp_sel,
            cload,
        },
    )
}

impl FetChain {
    fn build(&self) -> Circuit {
        use cryo_device::{FinFet, ModelCard, Polarity};
        let temp = [300.0, 77.0, 10.0][self.temp_sel as usize];
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inn = c.node("in");
        c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
        c.vsource("VIN", inn, GROUND, Source::ramp(0.0, vdd, 20e-12, 10e-12));
        let mut prev = inn;
        for i in 0..self.stages {
            let out = c.node(&format!("s{i}"));
            c.finfet(
                &format!("MN{i}"),
                out,
                prev,
                GROUND,
                FinFet::new(&nc, temp, self.nfins),
            );
            c.finfet(
                &format!("MP{i}"),
                out,
                prev,
                vdd_n,
                FinFet::new(&pc, temp, self.pfins),
            );
            prev = out;
        }
        c.capacitor("CL", prev, GROUND, self.cload);
        c
    }
}

// ----------------------------------------------------------------------
// Byte-compare helpers
// ----------------------------------------------------------------------

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Run DC + transient under one kernel and return every observable as bits
/// (or the error's debug form): node voltages and branch currents at every
/// timestep, plus the DC vector.
fn run_circuit(ckt: &Circuit, kernel: KernelKind, steps: usize) -> String {
    let _g = kernel_override_guard(kernel);
    let dc = dc_operating_point(ckt);
    let tr = transient(ckt, &TranConfig::with_steps(200e-12, steps));
    let mut out = String::new();
    match dc {
        Ok(op) => out.push_str(&format!("dc={:?};", bits(op.raw()))),
        Err(e) => out.push_str(&format!("dc_err={e:?};")),
    }
    match tr {
        Ok(res) => {
            out.push_str(&format!("t={:?};", bits(res.times())));
            for node in 1..ckt.node_count() {
                out.push_str(&format!("v{node}={:?};", bits(res.voltage(node).values())));
            }
            for b in 0..ckt.branch_count() {
                out.push_str(&format!("i{b}={:?};", bits(res.source_current(b).values())));
            }
            out.push_str(&format!("fs={:?};", bits(res.final_state())));
        }
        Err(e) => out.push_str(&format!("tran_err={e:?};")),
    }
    out
}

// ----------------------------------------------------------------------
// Properties
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CSR engine (fill-reducing order, genuinely different summation
    /// order) agrees with dense to 1e-12 relative — or classifies the same
    /// system as singular when dense does.
    #[test]
    fn csr_solution_within_1e12_of_dense(sys in random_system()) {
        let dense = sys.dense();
        let csr = CsrMatrix::from_dense(&dense);
        let mut xd = sys.rhs.clone();
        let dense_result = cryo_spice::solver::solve_in_place(&mut dense.clone(), &mut xd);
        match csr.solve(&sys.rhs) {
            Ok(xs) => {
                prop_assert!(dense_result.is_ok(), "csr solved, dense declared singular");
                // Verify against the dense solution entrywise, relative to
                // the solution scale (MNA solutions are O(1) volts).
                let scale = xd.iter().fold(1.0f64, |m, v| m.max(v.abs()));
                for i in 0..sys.n {
                    prop_assert!(
                        (xs[i] - xd[i]).abs() <= 1e-12 * scale,
                        "entry {i}: csr {} vs dense {} (scale {scale})",
                        xs[i], xd[i]
                    );
                }
                // And independently via the residual.
                let ax = csr.mul_vec(&xs);
                for (a, b) in ax.iter().zip(&sys.rhs) {
                    prop_assert!((a - b).abs() <= 1e-9 * scale.max(1.0));
                }
            }
            Err(SpiceError::SingularMatrix { .. }) => {
                // Pivoting orders differ, so near-singular systems may trip
                // one engine and not the other; a *well-conditioned* dense
                // success must never classify as singular in CSR. Use the
                // dense pivot floor as the conditioning proxy.
                if let Ok(()) = dense_result {
                    let mut lu = dense.clone();
                    let _ = lu.lu_factor();
                    let min_pivot = (0..sys.n)
                        .map(|k| lu.get(k, k).abs())
                        .fold(f64::INFINITY, f64::min);
                    prop_assert!(
                        min_pivot < 1e-8,
                        "csr called a well-conditioned system singular (min pivot {min_pivot})"
                    );
                }
            }
            Err(e) => prop_assert!(false, "unexpected csr error {e:?}"),
        }
    }

    /// Full-circuit differential: random RC topologies must produce
    /// byte-identical DC and transient results (or identical errors) under
    /// both kernels.
    #[test]
    fn rc_circuits_byte_identical_across_kernels(ladder in rc_ladder()) {
        let ckt = ladder.build();
        let dense = run_circuit(&ckt, KernelKind::Dense, 40);
        let sparse = run_circuit(&ckt, KernelKind::Sparse, 40);
        prop_assert_eq!(dense, sparse);
    }

    /// Full-circuit differential on nonlinear MOSFET circuits: Newton
    /// trajectories, not just single solves, must match bitwise.
    #[test]
    fn mosfet_circuits_byte_identical_across_kernels(chain in fet_chain()) {
        let ckt = chain.build();
        let dense = run_circuit(&ckt, KernelKind::Dense, 30);
        let sparse = run_circuit(&ckt, KernelKind::Sparse, 30);
        prop_assert_eq!(dense, sparse);
    }

    /// Warm starts must be invisible: with the memo enabled, re-solving the
    /// same circuit returns byte-identical DC results to the memo-off path.
    #[test]
    fn warm_start_dc_byte_identical(ladder in rc_ladder()) {
        let ckt = ladder.build();
        let cold = {
            let _w = warmstart_override_guard(false);
            dc_operating_point(&ckt).map(|op| bits(op.raw()))
        };
        let (first, memoized) = {
            let _w = warmstart_override_guard(true);
            cryo_spice::reset_solve_context();
            let first = dc_operating_point(&ckt).map(|op| bits(op.raw()));
            // Second solve is served from the memo.
            let second = dc_operating_point(&ckt).map(|op| bits(op.raw()));
            (first, second)
        };
        prop_assert_eq!(&cold, &first);
        prop_assert_eq!(&cold, &memoized);
    }
}

// ----------------------------------------------------------------------
// Deterministic classification cases
// ----------------------------------------------------------------------

/// Two voltage sources in parallel make the branch rows linearly dependent:
/// both kernels must report the same singular column, and the error must
/// name the offending unknown (the satellite fix for bare column numbers).
#[test]
fn singular_circuit_classified_identically() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, GROUND, Source::dc(1.0));
        c.vsource("V2", a, GROUND, Source::dc(2.0));
        c.resistor("R1", a, GROUND, 1e3);
        c
    };
    let dense_err = {
        let _g = kernel_override_guard(KernelKind::Dense);
        dc_operating_point(&build()).unwrap_err()
    };
    let sparse_err = {
        let _g = kernel_override_guard(KernelKind::Sparse);
        dc_operating_point(&build()).unwrap_err()
    };
    assert_eq!(dense_err, sparse_err);
    match dense_err {
        SpiceError::SingularMatrix { column, node: Some(name) } => {
            assert_eq!(name, "I(V2)", "column {column} should be V2's branch");
        }
        other => panic!("expected a named singular-matrix error, got {other:?}"),
    }
}

/// Injected convergence failures (the fault path warm-start safety relies
/// on) classify identically under both kernels.
#[test]
fn injected_convergence_failure_classified_identically() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, GROUND, Source::dc(1.0));
    ckt.resistor("R1", a, GROUND, 1e3);
    let fail_with = |kernel: KernelKind| {
        let _g = kernel_override_guard(kernel);
        let _f = fault::install_guard(FaultPlan {
            dc_no_convergence: 1.0,
            ..FaultPlan::new(7)
        });
        dc_operating_point(&ckt).unwrap_err()
    };
    assert_eq!(fail_with(KernelKind::Dense), fail_with(KernelKind::Sparse));
}

/// The sparse kernel's pivot-drift recovery is not an edge case in real
/// circuits — a MOSFET transient whose Newton matrices swing through the
/// bias range must still match dense exactly. This pins the end-to-end
/// claim on one deterministic, debuggable instance.
#[test]
fn inverter_transient_byte_identical() {
    let chain = FetChain {
        stages: 2,
        nfins: 2,
        pfins: 3,
        temp_sel: 0,
        cload: 2e-15,
    };
    let ckt = chain.build();
    let dense = run_circuit(&ckt, KernelKind::Dense, 120);
    let sparse = run_circuit(&ckt, KernelKind::Sparse, 120);
    assert_eq!(dense, sparse);
}
