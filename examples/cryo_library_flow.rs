//! The EDA-flow scenario: walk the paper's Fig. 1 stack by hand on a small
//! design — measure a virtual wafer, calibrate the compact model,
//! characterize a mini cell library at 300 K and 10 K, write/parse Liberty,
//! and run timing on a hand-built datapath at both corners.
//!
//! Run with: `cargo run --release --example cryo_library_flow`

use cryo_soc::cells::{topology, CharConfig, Characterizer};
use cryo_soc::device::calibrate::CalibrationConfig;
use cryo_soc::device::{Calibrator, ModelCard, Polarity, VirtualWafer};
use cryo_soc::liberty::format::{parse_library, write_library};
use cryo_soc::netlist::DesignBuilder;
use cryo_soc::sta::{analyze, StaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. "Measure" silicon and calibrate the compact model. -----------
    let wafer = VirtualWafer::new(42);
    let mut cards = Vec::new();
    for polarity in [Polarity::N, Polarity::P] {
        let dataset = wafer.measure_campaign(polarity);
        let mut start = ModelCard::nominal(polarity);
        start.vth0 *= 1.25; // deliberately detuned bring-up card
        start.u0 *= 0.8;
        let report = Calibrator::new(dataset, CalibrationConfig::default()).run(&start)?;
        println!(
            "{polarity:?}: calibrated in {} stages, final RMS {:.3} decades",
            report.stages.len(),
            report.final_rms
        );
        cards.push(report.card);
    }

    // --- 2. Characterize a mini library at both corners. -----------------
    let cells = vec![
        topology::inverter(1),
        topology::inverter(2),
        topology::buffer(2),
        topology::nand(2, 1),
        topology::nor(2, 1),
        topology::xor2(1),
        topology::full_adder(1),
        topology::dff(1),
        topology::tielo(),
    ];
    let mut libs = Vec::new();
    for temp in [300.0, 10.0] {
        let engine = Characterizer::new(&cards[0], &cards[1], CharConfig::fast(temp));
        let lib = engine.characterize_library(&format!("mini_{temp}k"), &cells)?;
        let stats = lib.stats();
        println!(
            "{:>5} K: {} cells, mean delay {:.2} ps, library leakage {:.3e} W",
            temp,
            stats.cell_count,
            stats.mean_delay * 1e12,
            stats.total_avg_leakage
        );
        libs.push(lib);
    }

    // --- 3. Round-trip through the Liberty text format. ------------------
    let text = write_library(&libs[0]);
    let parsed = parse_library(&text)?;
    println!(
        "\nLiberty round trip: {} chars of .lib text, {} cells parsed back",
        text.len(),
        parsed.len()
    );
    println!("{}", text.lines().take(12).collect::<Vec<_>>().join("\n"));

    // --- 4. STA on an 8-bit accumulator datapath at both corners. --------
    let mut b = DesignBuilder::new("accumulator");
    let clk = b.clock_input("clk");
    let a = b.input_bus("a", 8);
    let acc_d: Vec<_> = (0..8).map(|_| b.net("acc_d")).collect();
    let acc_q = b.register_word(&acc_d, clk);
    let cin = b.tie_lo();
    let (sum, _c) = b.ripple_adder(&a, &acc_q, cin);
    for (i, &s) in sum.iter().enumerate() {
        b.alias_with_buffer(s, acc_d[i]);
        b.mark_output(s);
    }
    let design = b.finish();
    println!("\nAccumulator: {} cells", design.cell_count());
    let mean300 = libs[0].stats().mean_delay;
    for lib in &libs {
        let scale = lib.stats().mean_delay / mean300;
        let cfg = StaConfig {
            macro_delay_scale: scale,
            ..StaConfig::default()
        };
        let report = analyze(&design, lib, &cfg)?;
        println!(
            "  {:>5} K: critical path {:.1} ps ({:.2} GHz) through {}",
            lib.temperature,
            report.critical_path_delay * 1e12,
            report.fmax() / 1e9,
            report.endpoint
        );
    }
    Ok(())
}
