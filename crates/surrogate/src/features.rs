//! Training-dataset construction: per-table-entry feature vectors and
//! log-ratio targets.
//!
//! The surrogate learns a *transfer*, not an absolute model: for every NLDM
//! table entry it predicts `ln(|cold| / |warm|)` — the log of how much the
//! value moves between a characterized warm corner and the target (VDD, T)
//! corner. Anchoring on the warm value means the model only has to capture
//! the corner-to-corner physics (threshold shift, subthreshold slope, drive
//! strength), which a few hundred probe-cell samples pin down, instead of
//! the full topology → delay map.
//!
//! Features combine three layers of the stack:
//!
//! - **table geometry** — warm value, input slew, output load, table kind,
//!   rise/fall edge;
//! - **cell topology** (`cryo_cells::topology`) — fin count, transistor
//!   count, input count, drive strength, sequential flag;
//! - **device model cards** (`cryo_device::CornerScalars`) — target VDD and
//!   temperature plus Vth / n-factor / on-current deltas between the two
//!   corners, for both polarities.

use cryo_cells::topology::{self, CellNetlist};
use cryo_device::CornerScalars;
use cryo_liberty::{ArcKind, Cell, Library, Lut2};

use crate::det;

/// Floor applied before taking logs of table magnitudes, so zero entries
/// (e.g. unused transition tables) stay representable.
pub const TINY: f64 = 1e-30;

/// Number of features per sample (see [`entry_features`] for the layout).
pub const N_FEATURES: usize = 21;

/// What kind of quantity a table entry is, one-hot encoded in the features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Propagation delay (`cell_rise`/`cell_fall` of delay arcs).
    Delay,
    /// Output transition time.
    Transition,
    /// Setup/hold constraint (legitimately negative).
    Constraint,
    /// Switching energy.
    Energy,
}

/// Which edge the table describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Rising output (or rising data for constraints).
    Rise,
    /// Falling output.
    Fall,
}

/// Per-cell topology descriptors entering the feature vector.
#[derive(Debug, Clone, Copy)]
pub struct CellDescriptor {
    ln_fins: f64,
    n_transistors: f64,
    n_inputs: f64,
    ln_drive: f64,
    is_ff: f64,
}

impl CellDescriptor {
    /// Build from the programmatic netlist when the cell is a known
    /// topology, else approximate from the characterized cell model (pin
    /// count, drive tag, area) so prediction never aborts on an exotic name.
    #[must_use]
    pub fn for_cell(cell: &Cell) -> Self {
        match topology::by_name(&cell.name) {
            Some(net) => Self::from_netlist(&net),
            None => CellDescriptor {
                ln_fins: det::ln(f64::from(4 * cell.drive.max(1))),
                n_transistors: 4.0 * cell.pins.len() as f64,
                n_inputs: cell
                    .pins
                    .iter()
                    .filter(|p| p.direction == cryo_liberty::PinDirection::Input)
                    .count() as f64,
                ln_drive: det::ln(f64::from(cell.drive.max(1))),
                is_ff: f64::from(u8::from(cell.ff.is_some())),
            },
        }
    }

    fn from_netlist(net: &CellNetlist) -> Self {
        CellDescriptor {
            ln_fins: det::ln(f64::from(net.total_fins().max(1))),
            n_transistors: net.transistors.len() as f64,
            n_inputs: net.inputs.len() as f64,
            ln_drive: det::ln(f64::from(net.drive.max(1))),
            is_ff: f64::from(u8::from(net.ff.is_some())),
        }
    }
}

/// The fixed-order feature vector for one table entry.
///
/// Layout: `[ln|warm|, ln slew, ln load, ln fins, n_transistors, n_inputs,
/// ln drive, is_ff, vdd_target, temp_target/300, Δvth_n, Δvth_p,
/// Δnfactor_n, Δnfactor_p, ln(ion_n ratio), ln(ion_p ratio),
/// kind_delay, kind_transition, kind_constraint, kind_energy, edge_fall]`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn entry_features(
    warm_value: f64,
    slew: f64,
    load: f64,
    desc: &CellDescriptor,
    warm_sc: &CornerScalars,
    cold_sc: &CornerScalars,
    kind: TableKind,
    edge: Edge,
) -> Vec<f64> {
    let one_hot = |k: TableKind| f64::from(u8::from(kind == k));
    vec![
        det::ln(warm_value.abs().max(TINY)),
        det::ln(slew.abs().max(TINY)),
        det::ln(load.abs().max(TINY)),
        desc.ln_fins,
        desc.n_transistors,
        desc.n_inputs,
        desc.ln_drive,
        desc.is_ff,
        cold_sc.vdd,
        cold_sc.temp / 300.0,
        cold_sc.vth_n - warm_sc.vth_n,
        cold_sc.vth_p - warm_sc.vth_p,
        cold_sc.nfactor_n - warm_sc.nfactor_n,
        cold_sc.nfactor_p - warm_sc.nfactor_p,
        det::ln(cold_sc.ion_n.max(TINY) / warm_sc.ion_n.max(TINY)),
        det::ln(cold_sc.ion_p.max(TINY) / warm_sc.ion_p.max(TINY)),
        one_hot(TableKind::Delay),
        one_hot(TableKind::Transition),
        one_hot(TableKind::Constraint),
        one_hot(TableKind::Energy),
        f64::from(u8::from(edge == Edge::Fall)),
    ]
}

/// The training target for a (warm, cold) entry pair: `ln(|cold|/|warm|)`,
/// both magnitudes floored at [`TINY`]. Inverted by [`apply_ratio`].
#[must_use]
pub fn log_ratio(warm: f64, cold: f64) -> f64 {
    det::ln(cold.abs().max(TINY) / warm.abs().max(TINY))
}

/// Invert [`log_ratio`]: reconstruct the cold value from the warm anchor and
/// a predicted log-ratio. Zero warm entries are copied through unchanged —
/// the ratio is meaningless there and zero tables (unused constraint slots)
/// must stay zero.
#[must_use]
pub fn apply_ratio(warm: f64, predicted_log_ratio: f64) -> f64 {
    if warm == 0.0 {
        return 0.0;
    }
    warm.signum() * warm.abs() * det::exp(predicted_log_ratio)
}

/// One training sample: a feature vector, its log-ratio target, and the
/// bookkeeping needed to compute linear-domain residuals afterwards.
#[derive(Debug, Clone)]
pub struct ArcSample {
    /// Cell the entry came from.
    pub cell: String,
    /// Feature vector of length [`N_FEATURES`] (unnormalized).
    pub features: Vec<f64>,
    /// Training target: `ln(|cold|/|warm|)`.
    pub target: f64,
    /// Warm-corner anchor value.
    pub warm: f64,
    /// Cold-corner ground truth (signed).
    pub cold: f64,
}

/// A full training dataset: every table entry of every probe cell present
/// in both the warm and cold libraries.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Samples in deterministic (cold-library cell order, arc order,
    /// row-major grid order) sequence.
    pub samples: Vec<ArcSample>,
}

impl Dataset {
    /// Build the dataset from a characterized warm library and a cold probe
    /// library (the same cells SPICE-characterized at the target corner).
    /// Cells missing from either side, and zero-anchor entries, are skipped.
    #[must_use]
    pub fn build(
        warm: &Library,
        cold_probe: &Library,
        warm_sc: &CornerScalars,
        cold_sc: &CornerScalars,
    ) -> Dataset {
        let mut samples = Vec::new();
        for cold_cell in cold_probe.cells() {
            let Ok(warm_cell) = warm.cell(&cold_cell.name) else {
                continue;
            };
            let desc = CellDescriptor::for_cell(warm_cell);
            let mut push_table = |wt: &Lut2, ct: &Lut2, kind: TableKind, edge: Edge| {
                sample_table(&mut samples, &cold_cell.name, wt, ct, &desc, warm_sc, cold_sc, kind, edge);
            };
            for (wa, ca) in warm_cell.arcs.iter().zip(&cold_cell.arcs) {
                let (dk, tk) = match wa.kind {
                    ArcKind::Setup | ArcKind::Hold => (TableKind::Constraint, TableKind::Constraint),
                    ArcKind::Combinational | ArcKind::ClockToQ => {
                        (TableKind::Delay, TableKind::Transition)
                    }
                };
                push_table(&wa.cell_rise, &ca.cell_rise, dk, Edge::Rise);
                push_table(&wa.cell_fall, &ca.cell_fall, dk, Edge::Fall);
                push_table(&wa.rise_transition, &ca.rise_transition, tk, Edge::Rise);
                push_table(&wa.fall_transition, &ca.fall_transition, tk, Edge::Fall);
            }
            for (wp, cp) in warm_cell.power_arcs.iter().zip(&cold_cell.power_arcs) {
                push_table(&wp.rise_energy, &cp.rise_energy, TableKind::Energy, Edge::Rise);
                push_table(&wp.fall_energy, &cp.fall_energy, TableKind::Energy, Edge::Fall);
            }
        }
        Dataset { samples }
    }

    /// Training-split samples (4 of every 5, by sample index).
    #[must_use]
    pub fn train_split(&self) -> Vec<&ArcSample> {
        self.samples.iter().enumerate().filter(|(i, _)| i % 5 != 0).map(|(_, s)| s).collect()
    }

    /// Held-out samples (every 5th) — never seen by SGD, used for the
    /// residual statistics that gate prediction trust.
    #[must_use]
    pub fn holdout_split(&self) -> Vec<&ArcSample> {
        self.samples.iter().enumerate().filter(|(i, _)| i % 5 == 0).map(|(_, s)| s).collect()
    }

    /// FNV-64 digest over the exact bit patterns of every feature and
    /// target, keying the training checkpoint store: a changed dataset must
    /// never resume another dataset's model.
    #[must_use]
    pub fn content_hash(&self) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in &self.samples {
            for &f in &s.features {
                mix(f.to_bits());
            }
            mix(s.target.to_bits());
        }
        format!("{h:016x}")
    }
}

#[allow(clippy::too_many_arguments)]
fn sample_table(
    out: &mut Vec<ArcSample>,
    cell: &str,
    warm_t: &Lut2,
    cold_t: &Lut2,
    desc: &CellDescriptor,
    warm_sc: &CornerScalars,
    cold_sc: &CornerScalars,
    kind: TableKind,
    edge: Edge,
) {
    let slews = warm_t.index1();
    let loads = warm_t.index2();
    if cold_t.index1().len() != slews.len() || cold_t.index2().len() != loads.len() {
        return;
    }
    for (i, &slew) in slews.iter().enumerate() {
        for (j, &load) in loads.iter().enumerate() {
            let warm = warm_t.values()[i * loads.len() + j];
            let cold = cold_t.values()[i * loads.len() + j];
            if warm == 0.0 || !warm.is_finite() || !cold.is_finite() {
                continue;
            }
            out.push(ArcSample {
                cell: cell.to_string(),
                features: entry_features(warm, slew, load, desc, warm_sc, cold_sc, kind, edge),
                target: log_ratio(warm, cold),
                warm,
                cold,
            });
        }
    }
}

/// Per-feature min-max normalizer, fitted on the full dataset and stored
/// with the model so inference applies the identical affine map.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    /// Per-feature minima.
    pub lo: Vec<f64>,
    /// Per-feature maxima.
    pub hi: Vec<f64>,
}

impl Normalizer {
    /// Fit over a set of feature vectors. Degenerate (constant) features
    /// normalize to 0.
    #[must_use]
    pub fn fit<'a, I: IntoIterator<Item = &'a Vec<f64>>>(rows: I) -> Normalizer {
        let mut lo = vec![f64::INFINITY; N_FEATURES];
        let mut hi = vec![f64::NEG_INFINITY; N_FEATURES];
        for row in rows {
            for (k, &v) in row.iter().enumerate() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
        for k in 0..N_FEATURES {
            if !lo[k].is_finite() || !hi[k].is_finite() {
                lo[k] = 0.0;
                hi[k] = 0.0;
            }
        }
        Normalizer { lo, hi }
    }

    /// Map a raw feature vector into `[0, 1]^F`.
    #[must_use]
    pub fn normalize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(k, &v)| {
                let span = self.hi[k] - self.lo[k];
                if span > 0.0 {
                    (v - self.lo[k]) / span
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Invert [`Normalizer::normalize`] (degenerate features return their
    /// fitted constant).
    #[must_use]
    pub fn denormalize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(k, &v)| {
                let span = self.hi[k] - self.lo[k];
                if span > 0.0 {
                    self.lo[k] + v * span
                } else {
                    self.lo[k]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_ratio_round_trips_through_apply() {
        for &(w, c) in &[(1e-12, 2e-12), (5e-15, 1e-15), (-3e-12, -6e-12), (1.0, 1.0)] {
            let r = log_ratio(w, c);
            let back = apply_ratio(w, r);
            assert!(
                (back.abs() - c.abs()).abs() <= 1e-12 * c.abs(),
                "{w} -> {c}: got {back}"
            );
            assert_eq!(back.signum(), w.signum());
        }
        assert_eq!(apply_ratio(0.0, 3.0), 0.0);
    }

    #[test]
    fn normalizer_maps_into_unit_interval_and_inverts() {
        let rows = vec![vec![1.0; N_FEATURES], vec![3.0; N_FEATURES], vec![2.0; N_FEATURES]];
        let n = Normalizer::fit(&rows);
        let z = n.normalize(&rows[2]);
        assert!(z.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = n.denormalize(&z);
        for (a, b) in back.iter().zip(&rows[2]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_feature_normalizes_to_zero() {
        let rows = vec![vec![7.0; N_FEATURES], vec![7.0; N_FEATURES]];
        let n = Normalizer::fit(&rows);
        let z = n.normalize(&rows[0]);
        assert!(z.iter().all(|&v| v == 0.0));
        assert!(n.denormalize(&z).iter().all(|&v| v == 7.0));
    }
}
