//! Disk cache for characterized libraries.
//!
//! Full-grid characterization of the ~190-cell set costs minutes of CPU;
//! the experiment binaries run it once per (model cards, configuration)
//! pair and cache the resulting [`Library`] as JSON under a cache
//! directory (default `data/`).

use std::fs;
use std::path::{Path, PathBuf};

use cryo_device::ModelCard;
use cryo_liberty::Library;

use crate::charlib::CharConfig;
use crate::{CellError, Result};

/// Stable FNV-1a hash of the cache key ingredients.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Stable tag for a cell set: name count plus an FNV hash of the sorted
/// cell names. Keying the cache on this prevents stale libraries when the
/// cell set evolves.
#[must_use]
pub fn cell_set_tag(cells: &[crate::topology::CellNetlist]) -> String {
    let mut names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    let blob = names.join(",");
    format!("set{}_{:08x}", names.len(), fnv1a(blob.as_bytes()) as u32)
}

/// Compute the cache key for a characterization run.
#[must_use]
pub fn cache_key(nfet: &ModelCard, pfet: &ModelCard, cfg: &CharConfig, cell_tag: &str) -> String {
    let mut blob = String::new();
    blob.push_str(&serde_json::to_string(nfet).unwrap_or_default());
    blob.push_str(&serde_json::to_string(pfet).unwrap_or_default());
    blob.push_str(&format!(
        "{}|{}|{:?}|{:?}|{}|{}",
        cfg.temp, cfg.vdd, cfg.slews, cfg.loads_x1, cfg.steps, cell_tag
    ));
    format!("{:016x}", fnv1a(blob.as_bytes()))
}

/// Path of the cached library for a key.
#[must_use]
pub fn cache_path(dir: &Path, name: &str, key: &str) -> PathBuf {
    dir.join(format!("{name}_{key}.liblib.json"))
}

/// Load a cached library if present and parseable.
#[must_use]
pub fn load(dir: &Path, name: &str, key: &str) -> Option<Library> {
    let path = cache_path(dir, name, key);
    let text = fs::read_to_string(path).ok()?;
    let mut lib: Library = serde_json::from_str(&text).ok()?;
    lib.reindex();
    Some(lib)
}

/// Store a library in the cache.
///
/// # Errors
///
/// [`CellError::Cache`] on I/O or serialization failure.
pub fn store(dir: &Path, name: &str, key: &str, lib: &Library) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| CellError::Cache(format!("mkdir {dir:?}: {e}")))?;
    let path = cache_path(dir, name, key);
    let json =
        serde_json::to_string(lib).map_err(|e| CellError::Cache(format!("serialize: {e}")))?;
    fs::write(&path, json).map_err(|e| CellError::Cache(format!("write {path:?}: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryo_device::Polarity;

    #[test]
    fn key_is_stable_and_sensitive() {
        let n = ModelCard::nominal(Polarity::N);
        let p = ModelCard::nominal(Polarity::P);
        let cfg300 = CharConfig::fast(300.0);
        let cfg10 = CharConfig::fast(10.0);
        let k1 = cache_key(&n, &p, &cfg300, "std");
        let k2 = cache_key(&n, &p, &cfg300, "std");
        assert_eq!(k1, k2, "same inputs, same key");
        assert_ne!(k1, cache_key(&n, &p, &cfg10, "std"), "temp changes key");
        assert_ne!(k1, cache_key(&n, &p, &cfg300, "other"), "tag changes key");
        let mut n2 = n.clone();
        n2.vth0 += 0.01;
        assert_ne!(k1, cache_key(&n2, &p, &cfg300, "std"), "card changes key");
    }

    #[test]
    fn cell_set_tag_tracks_the_set() {
        use crate::topology;
        let a = vec![topology::inverter(1), topology::nand(2, 1)];
        let b = vec![topology::nand(2, 1), topology::inverter(1)];
        assert_eq!(cell_set_tag(&a), cell_set_tag(&b), "order-insensitive");
        let c = vec![topology::inverter(1)];
        assert_ne!(cell_set_tag(&a), cell_set_tag(&c), "content-sensitive");
        assert!(cell_set_tag(&a).starts_with("set2_"));
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join("cryo_cells_cache_test");
        let _ = fs::remove_dir_all(&dir);
        let lib = Library::new("corner", 10.0, 0.7);
        store(&dir, "corner", "deadbeef", &lib).unwrap();
        let back = load(&dir, "corner", "deadbeef").expect("cache hit");
        assert_eq!(back.name, "corner");
        assert!(
            load(&dir, "corner", "feedface").is_none(),
            "miss on other key"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
