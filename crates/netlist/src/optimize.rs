//! Post-synthesis netlist optimization: fanout legalization.
//!
//! Physical-design flows cap net fanout by inserting buffer trees; the SoC
//! generator mostly designs within bounds, but generated or imported
//! netlists may not. [`fix_fanout`] rewires any over-loaded net through a
//! balanced tree of buffers so that no net drives more than `max_fanout`
//! sinks.

use crate::design::{Design, Instance, LoadRef, NetId};

/// Statistics from a [`fix_fanout`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutFixStats {
    /// Nets whose fanout exceeded the cap.
    pub nets_fixed: usize,
    /// Buffers inserted.
    pub buffers_added: usize,
}

/// Cap every net's fanout at `max_fanout` by inserting `BUFx{drive}`
/// trees. Clock nets and macro pins are left untouched (clock trees are
/// built explicitly; macros model their own drivers).
///
/// Returns the pass statistics.
///
/// # Panics
///
/// Panics if `max_fanout < 2`.
pub fn fix_fanout(design: &mut Design, max_fanout: usize, drive: u32) -> FanoutFixStats {
    assert!(max_fanout >= 2, "fanout cap must allow a tree");
    let mut stats = FanoutFixStats::default();
    let mut uid = 0usize;
    loop {
        let conn = design.connectivity();
        // Find one over-loaded data net (excluding clock).
        let mut target: Option<(NetId, Vec<(usize, String)>)> = None;
        for net in 0..design.net_count() {
            if design.clock == Some(net) {
                continue;
            }
            let cell_loads: Vec<(usize, String)> = conn.loads[net]
                .iter()
                .filter_map(|l| match l {
                    LoadRef::Cell { instance, pin } if pin != "CLK" => {
                        Some((*instance, pin.clone()))
                    }
                    _ => None,
                })
                .collect();
            if cell_loads.len() > max_fanout {
                target = Some((net, cell_loads));
                break;
            }
        }
        let Some((net, loads)) = target else {
            return stats;
        };
        stats.nets_fixed += 1;
        // Split the sinks into groups; each group hangs off a new buffer.
        for group in loads.chunks(max_fanout) {
            uid += 1;
            let buf_out = design.add_net(&format!("fo_fix_{uid}"));
            let inst = Instance {
                name: format!("fo_buf_{uid}"),
                cell: format!("BUFx{drive}"),
                inputs: vec![("A".to_string(), net)],
                outputs: vec![("Y".to_string(), buf_out)],
                clock: None,
                region: "fanout_fix".to_string(),
            };
            design.add_instance(inst);
            stats.buffers_added += 1;
            for (inst_idx, pin) in group {
                design.rewire_input(*inst_idx, pin, buf_out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    fn max_data_fanout(design: &Design) -> usize {
        let conn = design.connectivity();
        (0..design.net_count())
            .filter(|&n| design.clock != Some(n))
            .map(|n| {
                conn.loads[n]
                    .iter()
                    .filter(|l| matches!(l, LoadRef::Cell { pin, .. } if pin != "CLK"))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    fn fanout_heavy_design(sinks: usize) -> Design {
        let mut b = DesignBuilder::new("heavy");
        let a = b.input("a");
        let src = b.inv(a, 2);
        for _ in 0..sinks {
            let y = b.inv(src, 1);
            b.mark_output(y);
        }
        b.finish()
    }

    #[test]
    fn caps_every_net() {
        let mut d = fanout_heavy_design(64);
        assert!(max_data_fanout(&d) >= 64);
        let stats = fix_fanout(&mut d, 8, 4);
        assert!(stats.buffers_added >= 8, "stats: {stats:?}");
        assert!(
            max_data_fanout(&d) <= 8,
            "worst fanout after fix: {}",
            max_data_fanout(&d)
        );
    }

    #[test]
    fn recursion_handles_buffer_nets_too() {
        // 100 sinks at cap 4: first level makes 25 buffers hanging off the
        // source — itself over the cap — so the pass must recurse.
        let mut d = fanout_heavy_design(100);
        fix_fanout(&mut d, 4, 2);
        assert!(max_data_fanout(&d) <= 4);
    }

    #[test]
    fn clean_design_is_untouched() {
        let mut d = fanout_heavy_design(3);
        let cells_before = d.cell_count();
        let stats = fix_fanout(&mut d, 8, 2);
        assert_eq!(stats, FanoutFixStats::default());
        assert_eq!(d.cell_count(), cells_before);
    }

    #[test]
    fn functionality_preserving_wiring() {
        // Every original sink still transitively connects to the source.
        let mut d = fanout_heavy_design(20);
        fix_fanout(&mut d, 4, 2);
        let conn = d.connectivity();
        // All inserted buffers are BUFx2 in the fanout_fix region.
        for inst in d.instances().iter().filter(|i| i.region == "fanout_fix") {
            assert_eq!(inst.cell, "BUFx2");
            assert_eq!(inst.inputs.len(), 1);
        }
        // No net lost its driver.
        for net in 0..d.net_count() {
            let drivers = conn.drivers[net].len() + usize::from(d.primary_inputs.contains(&net));
            if !conn.loads[net].is_empty() {
                assert!(drivers >= 1, "net {} lost its driver", d.net_name(net));
            }
        }
    }
}
