//! Disk cache for characterized libraries.
//!
//! Full-grid characterization of the ~190-cell set costs minutes of CPU;
//! the experiment binaries run it once per (model cards, configuration)
//! pair and cache the resulting [`Library`] as JSON under a cache
//! directory (default `data/`).
//!
//! Robustness: writes are atomic (tmp + rename) so a crash mid-store never
//! leaves a half-written file under the final name, and a file that exists
//! but fails to parse is *quarantined* (renamed to `<file>.corrupt`) rather
//! than silently treated as a miss — the next run re-characterizes while
//! the evidence survives for inspection.

use std::fs;
use std::path::{Path, PathBuf};

use cryo_device::ModelCard;
use cryo_liberty::Library;
use cryo_spice::fault;

use crate::charlib::CharConfig;
use crate::{CellError, Result};

/// Stable FNV-1a hash of the cache key ingredients (also used by the
/// checkpoint store for content checksums).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Stable tag for a cell set: name count plus an FNV hash of the sorted
/// cell names. Keying the cache on this prevents stale libraries when the
/// cell set evolves.
#[must_use]
pub fn cell_set_tag(cells: &[crate::topology::CellNetlist]) -> String {
    let mut names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    let blob = names.join(",");
    format!("set{}_{:08x}", names.len(), fnv1a(blob.as_bytes()) as u32)
}

/// Canonical library name for a PVT corner, e.g. `cryo5_tt_0p70v_300k` or
/// `cryo5_ss_0p65v_4p2k`.
///
/// This centralizes the name format every cache and checkpoint namespace
/// hangs off. For the historical tt / 0.70 V corners it reproduces the
/// previously hardcoded `cryo5_tt_0p70v_{temp}k` strings byte for byte, so
/// existing cache files stay valid. Voltages are rendered to the millivolt
/// and temperatures to 0.1 K (`4p2k`), which is exactly the resolution the
/// corner-spec validator admits — two distinct admissible corners can
/// never collide on a name.
#[must_use]
pub fn corner_lib_name(process: &str, vdd: f64, temp: f64) -> String {
    let mv = (vdd * 1000.0).round() as i64;
    let (volts, rem) = (mv / 1000, mv % 1000);
    let vstr = if rem % 10 == 0 {
        format!("{volts}p{:02}", rem / 10)
    } else {
        format!("{volts}p{rem:03}")
    };
    let dk = (temp * 10.0).round() as i64;
    let tstr = if dk % 10 == 0 {
        format!("{}", dk / 10)
    } else {
        format!("{}p{}", dk / 10, dk % 10)
    };
    format!("cryo5_{process}_{vstr}v_{tstr}k")
}

/// Compute the cache key for a characterization run.
///
/// Only the fields that change the characterization *results* participate
/// (grids, operating condition, model cards, cell set) — resilience knobs
/// like retry budgets do not, so existing cache files stay valid.
///
/// # Errors
///
/// [`CellError::Cache`] when a model card fails to serialize. A silent
/// fallback here would collapse distinct model cards onto one key and
/// serve the wrong library.
pub fn cache_key(
    nfet: &ModelCard,
    pfet: &ModelCard,
    cfg: &CharConfig,
    cell_tag: &str,
) -> Result<String> {
    let mut blob = String::new();
    blob.push_str(
        &serde_json::to_string(nfet)
            .map_err(|e| CellError::Cache(format!("serialize nfet card for cache key: {e}")))?,
    );
    blob.push_str(
        &serde_json::to_string(pfet)
            .map_err(|e| CellError::Cache(format!("serialize pfet card for cache key: {e}")))?,
    );
    blob.push_str(&format!(
        "{}|{}|{:?}|{:?}|{}|{}",
        cfg.temp, cfg.vdd, cfg.slews, cfg.loads_x1, cfg.steps, cell_tag
    ));
    Ok(format!("{:016x}", fnv1a(blob.as_bytes())))
}

/// Path of the cached library for a key.
#[must_use]
pub fn cache_path(dir: &Path, name: &str, key: &str) -> PathBuf {
    dir.join(format!("{name}_{key}.liblib.json"))
}

/// Move an unreadable cache/checkpoint file out of the way so the caller
/// re-computes while the evidence survives as `<file>.corrupt` (or
/// `<file>.N.corrupt` when earlier quarantines of the same file already
/// exist — renaming over them would destroy exactly the evidence this
/// mechanism preserves). Prints one stderr warning; failures to rename
/// fall back to removal. Accumulation is bounded by
/// `CheckpointStore::prune_quarantined`.
pub(crate) fn quarantine(path: &Path, why: &str) {
    let base = path.as_os_str().to_owned();
    let mut target = {
        let mut t = base.clone();
        t.push(".corrupt");
        PathBuf::from(t)
    };
    let mut n = 1u32;
    while target.exists() && n < 1000 {
        n += 1;
        let mut t = base.clone();
        t.push(format!(".{n}.corrupt"));
        target = PathBuf::from(t);
    }
    let outcome = if fs::rename(path, &target).is_ok() {
        format!("quarantined as {}", target.display())
    } else {
        let _ = fs::remove_file(path);
        "removed".to_string()
    };
    eprintln!(
        "warning: cache entry {} is corrupt ({why}); {outcome}",
        path.display()
    );
}

/// Load a cached library if present and intact.
///
/// A missing file is a silent miss; a file that exists but fails to parse
/// is quarantined (renamed to `*.corrupt` with one stderr warning) and
/// reported as a miss so the caller re-characterizes.
#[must_use]
pub fn load(dir: &Path, name: &str, key: &str) -> Option<Library> {
    let path = cache_path(dir, name, key);
    if !path.exists() {
        return None;
    }
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            quarantine(&path, &format!("unreadable: {e}"));
            return None;
        }
    };
    match serde_json::from_str::<Library>(&text) {
        Ok(mut lib) => {
            lib.reindex();
            Some(lib)
        }
        Err(e) => {
            quarantine(&path, &format!("parse error: {e}"));
            None
        }
    }
}

/// Store a library in the cache (atomic tmp + rename).
///
/// # Errors
///
/// [`CellError::Cache`] on I/O or serialization failure.
pub fn store(dir: &Path, name: &str, key: &str, lib: &Library) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| CellError::Cache(format!("mkdir {dir:?}: {e}")))?;
    let path = cache_path(dir, name, key);
    let json =
        serde_json::to_string(lib).map_err(|e| CellError::Cache(format!("serialize: {e}")))?;
    write_atomic(&path, &json)
}

/// Write `content` to `path` via a sibling tmp file and an atomic rename,
/// honoring the fault injector's cache-corruption site (which truncates the
/// payload to simulate a crash mid-write).
///
/// The tmp name carries a process-wide sequence number so concurrent
/// writers — parallel characterization workers checkpointing at once, or
/// two racing runs committing the same cell — never share a scratch file;
/// whichever rename lands last wins, and the destination is never observed
/// half-written.
pub(crate) fn write_atomic(path: &Path, content: &str) -> Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let payload = if fault::should_corrupt_cache_write() {
        &content[..content.len() / 2]
    } else {
        content
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, payload).map_err(|e| CellError::Cache(format!("write {tmp:?}: {e}")))?;
    fs::rename(&tmp, path).map_err(|e| CellError::Cache(format!("rename to {path:?}: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryo_device::Polarity;

    #[test]
    fn key_is_stable_and_sensitive() {
        let n = ModelCard::nominal(Polarity::N);
        let p = ModelCard::nominal(Polarity::P);
        let cfg300 = CharConfig::fast(300.0);
        let cfg10 = CharConfig::fast(10.0);
        let k1 = cache_key(&n, &p, &cfg300, "std").unwrap();
        let k2 = cache_key(&n, &p, &cfg300, "std").unwrap();
        assert_eq!(k1, k2, "same inputs, same key");
        assert_ne!(
            k1,
            cache_key(&n, &p, &cfg10, "std").unwrap(),
            "temp changes key"
        );
        assert_ne!(
            k1,
            cache_key(&n, &p, &cfg300, "other").unwrap(),
            "tag changes key"
        );
        let mut n2 = n.clone();
        n2.vth0 += 0.01;
        assert_ne!(
            k1,
            cache_key(&n2, &p, &cfg300, "std").unwrap(),
            "card changes key"
        );
    }

    #[test]
    fn key_ignores_resilience_knobs() {
        let n = ModelCard::nominal(Polarity::N);
        let p = ModelCard::nominal(Polarity::P);
        let base = CharConfig::fast(300.0);
        let mut tweaked = base.clone();
        tweaked.max_attempts = base.max_attempts + 5;
        assert_eq!(
            cache_key(&n, &p, &base, "std").unwrap(),
            cache_key(&n, &p, &tweaked, "std").unwrap(),
            "retry budget must not invalidate existing caches"
        );
    }

    #[test]
    fn corner_lib_name_matches_legacy_and_separates_corners() {
        // Byte-compatibility with the names the flow hardcoded pre-farm.
        assert_eq!(corner_lib_name("tt", 0.70, 300.0), "cryo5_tt_0p70v_300k");
        assert_eq!(corner_lib_name("tt", 0.70, 10.0), "cryo5_tt_0p70v_10k");
        // Fractional corners get a `p` separator instead of truncating.
        assert_eq!(corner_lib_name("ss", 0.65, 4.2), "cryo5_ss_0p65v_4p2k");
        assert_eq!(corner_lib_name("ff", 0.725, 77.0), "cryo5_ff_0p725v_77k");
        assert_ne!(
            corner_lib_name("tt", 0.70, 4.2),
            corner_lib_name("tt", 0.70, 4.0),
            "0.1 K resolution must separate names"
        );
        assert_ne!(
            corner_lib_name("tt", 0.701, 10.0),
            corner_lib_name("tt", 0.70, 10.0),
            "millivolt resolution must separate names"
        );
    }

    #[test]
    fn cell_set_tag_tracks_the_set() {
        use crate::topology;
        let a = vec![topology::inverter(1), topology::nand(2, 1)];
        let b = vec![topology::nand(2, 1), topology::inverter(1)];
        assert_eq!(cell_set_tag(&a), cell_set_tag(&b), "order-insensitive");
        let c = vec![topology::inverter(1)];
        assert_ne!(cell_set_tag(&a), cell_set_tag(&c), "content-sensitive");
        assert!(cell_set_tag(&a).starts_with("set2_"));
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join("cryo_cells_cache_test");
        let _ = fs::remove_dir_all(&dir);
        let lib = Library::new("corner", 10.0, 0.7);
        store(&dir, "corner", "deadbeef", &lib).unwrap();
        let back = load(&dir, "corner", "deadbeef").expect("cache hit");
        assert_eq!(back.name, "corner");
        assert!(
            load(&dir, "corner", "feedface").is_none(),
            "miss on other key"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_quarantined_not_a_silent_miss() {
        let dir = std::env::temp_dir().join("cryo_cells_cache_corrupt_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = cache_path(&dir, "corner", "badkey");
        fs::write(&path, "{\"name\": \"corner\", truncated garbag").unwrap();
        assert!(load(&dir, "corner", "badkey").is_none());
        assert!(!path.exists(), "corrupt file moved out of the way");
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".corrupt");
        assert!(
            PathBuf::from(quarantined).exists(),
            "evidence preserved as *.corrupt"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_leaves_no_tmp_file_behind() {
        let dir = std::env::temp_dir().join("cryo_cells_cache_atomic_test");
        let _ = fs::remove_dir_all(&dir);
        let lib = Library::new("corner", 300.0, 0.7);
        store(&dir, "corner", "aaaa", &lib).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }
}
