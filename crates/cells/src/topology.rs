//! Transistor-level topologies for the standard-cell families.
//!
//! Cells are expressed as flat FinFET netlists over named nodes. Supply
//! nodes are `vdd`/`gnd`; primary pins use their Liberty names (`A`, `B`,
//! `Y`, `D`, `CLK`, ...). Internal nodes carry a fanout-based wire
//! parasitic, mirroring how the ASAP7 netlists include extracted RC.

use std::collections::BTreeMap;

use cryo_device::Polarity;
use cryo_liberty::{FfSpec, LogicFunction};

/// Per-terminal routing parasitic estimate, farads.
const WIRE_CAP_PER_TERMINAL: f64 = 6.0e-17;
/// Area per fin, square micrometres (ASAP7-class density).
const AREA_PER_FIN: f64 = 0.0108;
/// n-FinFET fins per unit drive.
const NFIN_N: u32 = 2;
/// p-FinFET fins per unit drive (wider to balance hole mobility).
const NFIN_P: u32 = 3;

/// One transistor instance inside a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mos {
    /// Instance name.
    pub name: String,
    /// Channel polarity.
    pub polarity: Polarity,
    /// Drain node.
    pub d: String,
    /// Gate node.
    pub g: String,
    /// Source node.
    pub s: String,
    /// Fin count.
    pub nfin: u32,
}

/// A transistor-level cell netlist plus its logical view.
#[derive(Debug, Clone)]
pub struct CellNetlist {
    /// Cell name, e.g. `NAND2x2`.
    pub name: String,
    /// Input pin names in function bit order.
    pub inputs: Vec<String>,
    /// Output pin names.
    pub outputs: Vec<String>,
    /// Clock pin, for sequential cells.
    pub clock: Option<String>,
    /// Transistors.
    pub transistors: Vec<Mos>,
    /// Logic function per output pin (registered output functions describe
    /// the D→Q view for simulation).
    pub functions: BTreeMap<String, LogicFunction>,
    /// Sequential behaviour, if any.
    pub ff: Option<FfSpec>,
    /// Drive strength tag.
    pub drive: u32,
}

impl CellNetlist {
    /// Total fin count (proxy for area and leakage width).
    #[must_use]
    pub fn total_fins(&self) -> u32 {
        self.transistors.iter().map(|t| t.nfin).sum()
    }

    /// Layout area estimate, square micrometres.
    #[must_use]
    pub fn area(&self) -> f64 {
        AREA_PER_FIN * f64::from(self.total_fins())
    }

    /// Internal (non-pin, non-supply) node names.
    #[must_use]
    pub fn internal_nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = Vec::new();
        for t in &self.transistors {
            for n in [&t.d, &t.g, &t.s] {
                if n == "vdd"
                    || n == "gnd"
                    || self.inputs.iter().any(|i| i == n)
                    || self.outputs.iter().any(|o| o == n)
                    || self.clock.as_deref() == Some(n.as_str())
                    || nodes.contains(n)
                {
                    continue;
                }
                nodes.push(n.clone());
            }
        }
        nodes
    }

    /// Wire parasitic for a node: terminals touching it × unit wire cap.
    #[must_use]
    pub fn wire_cap(&self, node: &str) -> f64 {
        let touches = self
            .transistors
            .iter()
            .flat_map(|t| [&t.d, &t.g, &t.s])
            .filter(|n| n.as_str() == node)
            .count();
        touches as f64 * WIRE_CAP_PER_TERMINAL
    }

    /// Whether this cell has no inputs (tie cells).
    #[must_use]
    pub fn is_tie(&self) -> bool {
        self.inputs.is_empty() && self.clock.is_none()
    }
}

/// Internal builder state.
struct Builder {
    name: String,
    mos: Vec<Mos>,
    counter: usize,
}

impl Builder {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mos: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn nmos(&mut self, d: &str, g: &str, s: &str, fins: u32) {
        let name = format!("MN{}", self.mos.len());
        self.mos.push(Mos {
            name,
            polarity: Polarity::N,
            d: d.to_string(),
            g: g.to_string(),
            s: s.to_string(),
            nfin: fins,
        });
    }

    fn pmos(&mut self, d: &str, g: &str, s: &str, fins: u32) {
        let name = format!("MP{}", self.mos.len());
        self.mos.push(Mos {
            name,
            polarity: Polarity::P,
            d: d.to_string(),
            g: g.to_string(),
            s: s.to_string(),
            nfin: fins,
        });
    }

    /// Static CMOS inverter `out = !in`.
    fn inv(&mut self, input: &str, out: &str, drive: u32) {
        self.nmos(out, input, "gnd", NFIN_N * drive);
        self.pmos(out, input, "vdd", NFIN_P * drive);
    }

    /// Transmission gate between `a` and `b`; conducts when `n_gate` is high
    /// (and `p_gate`, its complement, low).
    fn tgate(&mut self, a: &str, b: &str, n_gate: &str, p_gate: &str, drive: u32) {
        self.nmos(a, n_gate, b, NFIN_N * drive);
        self.pmos(a, p_gate, b, NFIN_P * drive);
    }

    /// Series NMOS chain from `top` to gnd, gated by `gates` in order.
    fn nmos_chain(&mut self, top: &str, gates: &[&str], fins: u32) {
        let mut upper = top.to_string();
        for (i, g) in gates.iter().enumerate() {
            let lower = if i + 1 == gates.len() {
                "gnd".to_string()
            } else {
                self.fresh("sn")
            };
            self.nmos(&upper, g, &lower, fins);
            upper = lower;
        }
    }

    /// Series PMOS chain from `bottom` to vdd, gated by `gates` in order.
    fn pmos_chain(&mut self, bottom: &str, gates: &[&str], fins: u32) {
        let mut lower = bottom.to_string();
        for (i, g) in gates.iter().enumerate() {
            let upper = if i + 1 == gates.len() {
                "vdd".to_string()
            } else {
                self.fresh("sp")
            };
            self.pmos(&lower, g, &upper, fins);
            lower = upper;
        }
    }

    /// Parallel NMOS devices from `top` to gnd.
    fn nmos_parallel(&mut self, top: &str, gates: &[&str], fins: u32) {
        for g in gates {
            self.nmos(top, g, "gnd", fins);
        }
    }

    /// Parallel PMOS devices from `bottom` to vdd.
    fn pmos_parallel(&mut self, bottom: &str, gates: &[&str], fins: u32) {
        for g in gates {
            self.pmos(bottom, g, "vdd", fins);
        }
    }
}

fn input_names(n: usize) -> Vec<String> {
    ["A", "B", "C", "D", "E"]
        .iter()
        .take(n)
        .map(|s| (*s).to_string())
        .collect()
}

fn combinational(
    b: Builder,
    inputs: Vec<String>,
    output: &str,
    f: LogicFunction,
    drive: u32,
) -> CellNetlist {
    let mut functions = BTreeMap::new();
    functions.insert(output.to_string(), f);
    CellNetlist {
        name: b.name,
        inputs,
        outputs: vec![output.to_string()],
        clock: None,
        transistors: b.mos,
        functions,
        ff: None,
        drive,
    }
}

/// `INVx<d>`: static CMOS inverter.
#[must_use]
pub fn inverter(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("INVx{drive}"));
    b.inv("A", "Y", drive);
    let f = LogicFunction::from_eval(&["A"], |bits| bits & 1 == 0);
    combinational(b, input_names(1), "Y", f, drive)
}

/// `BUFx<d>`: two-stage buffer (weak first stage).
#[must_use]
pub fn buffer(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("BUFx{drive}"));
    let first = (drive / 3).max(1);
    b.inv("A", "yb", first);
    b.inv("yb", "Y", drive);
    let f = LogicFunction::from_eval(&["A"], |bits| bits & 1 != 0);
    combinational(b, input_names(1), "Y", f, drive)
}

/// `CLKBUFx<d>`: clock buffer (balanced two-stage).
#[must_use]
pub fn clock_buffer(drive: u32) -> CellNetlist {
    let mut c = buffer(drive);
    c.name = format!("CLKBUFx{drive}");
    c
}

/// `CLKINVx<d>`: clock inverter.
#[must_use]
pub fn clock_inverter(drive: u32) -> CellNetlist {
    let mut c = inverter(drive);
    c.name = format!("CLKINVx{drive}");
    c
}

/// `NAND<n>x<d>`: n-input NAND.
#[must_use]
pub fn nand(n: usize, drive: u32) -> CellNetlist {
    assert!((2..=4).contains(&n), "NAND arity 2..=4");
    let mut b = Builder::new(&format!("NAND{n}x{drive}"));
    let ins = input_names(n);
    let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
    b.nmos_chain("Y", &refs, NFIN_N * drive);
    b.pmos_parallel("Y", &refs, NFIN_P * drive);
    let mask = (1u16 << n) - 1;
    let f = LogicFunction::from_eval(&refs, move |bits| bits & mask != mask);
    combinational(b, ins, "Y", f, drive)
}

/// `NOR<n>x<d>`: n-input NOR.
#[must_use]
pub fn nor(n: usize, drive: u32) -> CellNetlist {
    assert!((2..=4).contains(&n), "NOR arity 2..=4");
    let mut b = Builder::new(&format!("NOR{n}x{drive}"));
    let ins = input_names(n);
    let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
    b.pmos_chain("Y", &refs, NFIN_P * drive);
    b.nmos_parallel("Y", &refs, NFIN_N * drive);
    let f = LogicFunction::from_eval(&refs, move |bits| bits == 0);
    combinational(b, ins, "Y", f, drive)
}

/// `AND<n>x<d>`: NAND followed by an inverter.
#[must_use]
pub fn and(n: usize, drive: u32) -> CellNetlist {
    let mut cell = nand(n, (drive / 2).max(1));
    let mut b = Builder::new(&format!("AND{n}x{drive}"));
    b.mos = cell.transistors.clone();
    // Rewire the NAND output onto an internal node, then invert.
    for t in &mut b.mos {
        for node in [&mut t.d, &mut t.g, &mut t.s] {
            if node == "Y" {
                *node = "yb".to_string();
            }
        }
    }
    b.inv("yb", "Y", drive);
    let mask = (1u16 << n) - 1;
    let refs: Vec<&str> = cell.inputs.iter().map(String::as_str).collect();
    let f = LogicFunction::from_eval(&refs, move |bits| bits & mask == mask);
    cell.name = b.name.clone();
    combinational(b, cell.inputs, "Y", f, drive)
}

/// `OR<n>x<d>`: NOR followed by an inverter.
#[must_use]
pub fn or(n: usize, drive: u32) -> CellNetlist {
    let cell = nor(n, (drive / 2).max(1));
    let mut b = Builder::new(&format!("OR{n}x{drive}"));
    b.mos = cell.transistors.clone();
    for t in &mut b.mos {
        for node in [&mut t.d, &mut t.g, &mut t.s] {
            if node == "Y" {
                *node = "yb".to_string();
            }
        }
    }
    b.inv("yb", "Y", drive);
    let refs: Vec<&str> = cell.inputs.iter().map(String::as_str).collect();
    let f = LogicFunction::from_eval(&refs, move |bits| bits != 0);
    combinational(b, cell.inputs, "Y", f, drive)
}

/// `AOI21x<d>`: `Y = !((A*B) + C)`.
#[must_use]
pub fn aoi21(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("AOI21x{drive}"));
    let (nf, pf) = (NFIN_N * drive, NFIN_P * drive);
    // Pull-down: series A,B in parallel with C.
    let mid = "sn_ab";
    b.nmos("Y", "A", mid, nf);
    b.nmos(mid, "B", "gnd", nf);
    b.nmos("Y", "C", "gnd", nf);
    // Pull-up: (A || B) in series with C.
    let top = "sp_ab";
    b.pmos(top, "A", "vdd", pf);
    b.pmos(top, "B", "vdd", pf);
    b.pmos("Y", "C", top, pf);
    let f = LogicFunction::from_eval(&["A", "B", "C"], |bits| {
        let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        !((a && b_) || c)
    });
    combinational(b, input_names(3), "Y", f, drive)
}

/// `AOI22x<d>`: `Y = !((A*B) + (C*D))`.
#[must_use]
pub fn aoi22(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("AOI22x{drive}"));
    let (nf, pf) = (NFIN_N * drive, NFIN_P * drive);
    b.nmos("Y", "A", "sab", nf);
    b.nmos("sab", "B", "gnd", nf);
    b.nmos("Y", "C", "scd", nf);
    b.nmos("scd", "D", "gnd", nf);
    b.pmos("pu1", "A", "vdd", pf);
    b.pmos("pu1", "B", "vdd", pf);
    b.pmos("Y", "C", "pu1", pf);
    b.pmos("Y", "D", "pu1", pf);
    let f = LogicFunction::from_eval(&["A", "B", "C", "D"], |bits| {
        let (a, b_, c, d) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
        !((a && b_) || (c && d))
    });
    combinational(b, input_names(4), "Y", f, drive)
}

/// `OAI21x<d>`: `Y = !((A+B) * C)`.
#[must_use]
pub fn oai21(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("OAI21x{drive}"));
    let (nf, pf) = (NFIN_N * drive, NFIN_P * drive);
    // Pull-down: (A || B) series C.
    b.nmos("Y", "C", "snc", nf);
    b.nmos("snc", "A", "gnd", nf);
    b.nmos("snc", "B", "gnd", nf);
    // Pull-up: series A,B in parallel with C.
    b.pmos("Y", "A", "spa", pf);
    b.pmos("spa", "B", "vdd", pf);
    b.pmos("Y", "C", "vdd", pf);
    let f = LogicFunction::from_eval(&["A", "B", "C"], |bits| {
        let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        !((a || b_) && c)
    });
    combinational(b, input_names(3), "Y", f, drive)
}

/// `OAI22x<d>`: `Y = !((A+B) * (C+D))`.
#[must_use]
pub fn oai22(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("OAI22x{drive}"));
    let (nf, pf) = (NFIN_N * drive, NFIN_P * drive);
    b.nmos("Y", "A", "sn1", nf);
    b.nmos("Y", "B", "sn1", nf);
    b.nmos("sn1", "C", "gnd", nf);
    b.nmos("sn1", "D", "gnd", nf);
    b.pmos("Y", "A", "sp1", pf);
    b.pmos("sp1", "B", "vdd", pf);
    b.pmos("Y", "C", "sp2", pf);
    b.pmos("sp2", "D", "vdd", pf);
    let f = LogicFunction::from_eval(&["A", "B", "C", "D"], |bits| {
        let (a, b_, c, d) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
        !((a || b_) && (c || d))
    });
    combinational(b, input_names(4), "Y", f, drive)
}

/// `AO21x<d>`: non-inverting AOI21 (adds an output inverter).
#[must_use]
pub fn ao21(drive: u32) -> CellNetlist {
    let inner = aoi21((drive / 2).max(1));
    let mut b = Builder::new(&format!("AO21x{drive}"));
    b.mos = inner.transistors.clone();
    for t in &mut b.mos {
        for node in [&mut t.d, &mut t.g, &mut t.s] {
            if node == "Y" {
                *node = "yb".to_string();
            }
        }
    }
    b.inv("yb", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B", "C"], |bits| {
        let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        (a && b_) || c
    });
    combinational(b, input_names(3), "Y", f, drive)
}

/// `OA21x<d>`: non-inverting OAI21.
#[must_use]
pub fn oa21(drive: u32) -> CellNetlist {
    let inner = oai21((drive / 2).max(1));
    let mut b = Builder::new(&format!("OA21x{drive}"));
    b.mos = inner.transistors.clone();
    for t in &mut b.mos {
        for node in [&mut t.d, &mut t.g, &mut t.s] {
            if node == "Y" {
                *node = "yb".to_string();
            }
        }
    }
    b.inv("yb", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B", "C"], |bits| {
        let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        (a || b_) && c
    });
    combinational(b, input_names(3), "Y", f, drive)
}

/// `XOR2x<d>`: transmission-gate XOR with buffered output.
#[must_use]
pub fn xor2(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("XOR2x{drive}"));
    let d1 = (drive / 2).max(1);
    b.inv("A", "an", d1);
    b.inv("B", "bn", d1);
    // yb = !(A ^ B) via pass network, then invert for Y.
    // When B = 1: yb follows an (TG), when B = 0: yb follows A.
    // ybi = B ? A : !A = XNOR(A, B); invert for Y.
    b.tgate("A", "ybi", "B", "bn", d1);
    b.tgate("an", "ybi", "bn", "B", d1);
    b.inv("ybi", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B"], |bits| ((bits & 1) ^ ((bits >> 1) & 1)) != 0);
    combinational(b, input_names(2), "Y", f, drive)
}

/// `XNOR2x<d>`: complement of [`xor2`].
#[must_use]
pub fn xnor2(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("XNOR2x{drive}"));
    let d1 = (drive / 2).max(1);
    b.inv("A", "an", d1);
    b.inv("B", "bn", d1);
    // ybi = B ? !A : A = XOR(A, B); invert for Y.
    b.tgate("an", "ybi", "B", "bn", d1);
    b.tgate("A", "ybi", "bn", "B", d1);
    b.inv("ybi", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B"], |bits| ((bits & 1) ^ ((bits >> 1) & 1)) == 0);
    combinational(b, input_names(2), "Y", f, drive)
}

/// `MUX2x<d>`: `Y = S ? B : A` (transmission-gate mux, buffered).
#[must_use]
pub fn mux2(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("MUX2x{drive}"));
    let d1 = (drive / 2).max(1);
    b.inv("S", "sn", d1);
    b.tgate("A", "ymi", "sn", "S", d1);
    b.tgate("B", "ymi", "S", "sn", d1);
    b.inv("ymi", "yb", d1);
    b.inv("yb", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B", "S"], |bits| {
        let (a, b_, s) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        if s {
            b_
        } else {
            a
        }
    });
    let mut cell = combinational(b, vec![], "Y", f, drive);
    cell.inputs = vec!["A".to_string(), "B".to_string(), "S".to_string()];
    cell
}

/// `MAJ3x<d>`: majority-of-three (carry kernel), complex-gate + inverter.
#[must_use]
pub fn maj3(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("MAJ3x{drive}"));
    let (nf, pf) = (NFIN_N * ((drive / 2).max(1)), NFIN_P * ((drive / 2).max(1)));
    // yb = !MAJ: pull-down on (A*B) + C*(A+B).
    b.nmos("yb", "A", "m1", nf);
    b.nmos("m1", "B", "gnd", nf);
    b.nmos("yb", "C", "m2", nf);
    b.nmos("m2", "A", "gnd", nf);
    b.nmos("m2", "B", "gnd", nf);
    b.pmos("yb", "A", "m3", pf);
    b.pmos("m3", "B", "vdd", pf);
    b.pmos("yb", "C", "m4", pf);
    b.pmos("m4", "A", "vdd", pf);
    b.pmos("m4", "B", "vdd", pf);
    b.inv("yb", "Y", drive);
    let f = LogicFunction::from_eval(&["A", "B", "C"], |bits| bits.count_ones() >= 2);
    combinational(b, input_names(3), "Y", f, drive)
}

/// `HAx<d>`: half adder with `S` (sum) and `CO` (carry) outputs.
#[must_use]
pub fn half_adder(drive: u32) -> CellNetlist {
    let mut xor_cell = xor2(drive);
    let mut b = Builder::new(&format!("HAx{drive}"));
    // Sum = A ^ B reusing the XOR topology but renaming the output to S.
    for t in &mut xor_cell.transistors {
        for node in [&mut t.d, &mut t.g, &mut t.s] {
            if node == "Y" {
                *node = "S".to_string();
            }
        }
    }
    b.mos = xor_cell.transistors;
    // Carry = A & B (NAND + INV).
    let d1 = (drive / 2).max(1);
    b.nmos("cb", "A", "hc1", NFIN_N * d1);
    b.nmos("hc1", "B", "gnd", NFIN_N * d1);
    b.pmos("cb", "A", "vdd", NFIN_P * d1);
    b.pmos("cb", "B", "vdd", NFIN_P * d1);
    b.inv("cb", "CO", drive);
    let fs = LogicFunction::from_eval(&["A", "B"], |bits| ((bits & 1) ^ ((bits >> 1) & 1)) != 0);
    let fc = LogicFunction::from_eval(&["A", "B"], |bits| bits & 3 == 3);
    let mut functions = BTreeMap::new();
    functions.insert("S".to_string(), fs);
    functions.insert("CO".to_string(), fc);
    CellNetlist {
        name: b.name,
        inputs: input_names(2),
        outputs: vec!["S".to_string(), "CO".to_string()],
        clock: None,
        transistors: b.mos,
        functions,
        ff: None,
        drive,
    }
}

/// `FAx<d>`: full adder (`S = A^B^CI`, `CO = MAJ(A,B,CI)`).
#[must_use]
pub fn full_adder(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("FAx{drive}"));
    let d1 = (drive / 2).max(1);
    // First XOR: x1 = A ^ B.
    b.inv("A", "fan", d1);
    b.inv("B", "fbn", d1);
    b.tgate("fan", "fx1b", "B", "fbn", d1);
    b.tgate("A", "fx1b", "fbn", "B", d1);
    b.inv("fx1b", "fx1", d1);
    // Second XOR: S = x1 ^ CI.
    b.inv("CI", "fcn", d1);
    b.tgate("fx1b", "fsb", "CI", "fcn", d1); // note: !x1 when CI=1 -> S = x1^CI
    b.tgate("fx1", "fsb", "fcn", "CI", d1);
    b.inv("fsb", "S", drive);
    // Carry: MAJ(A, B, CI) as complex gate + inverter.
    let (nf, pf) = (NFIN_N * d1, NFIN_P * d1);
    b.nmos("fcob", "A", "fm1", nf);
    b.nmos("fm1", "B", "gnd", nf);
    b.nmos("fcob", "CI", "fm2", nf);
    b.nmos("fm2", "A", "gnd", nf);
    b.nmos("fm2", "B", "gnd", nf);
    b.pmos("fcob", "A", "fm3", pf);
    b.pmos("fm3", "B", "vdd", pf);
    b.pmos("fcob", "CI", "fm4", pf);
    b.pmos("fm4", "A", "vdd", pf);
    b.pmos("fm4", "B", "vdd", pf);
    b.inv("fcob", "CO", drive);
    let inputs = vec!["A".to_string(), "B".to_string(), "CI".to_string()];
    let fs = LogicFunction::from_eval(&["A", "B", "CI"], |bits| bits.count_ones() % 2 == 1);
    let fc = LogicFunction::from_eval(&["A", "B", "CI"], |bits| bits.count_ones() >= 2);
    let mut functions = BTreeMap::new();
    functions.insert("S".to_string(), fs);
    functions.insert("CO".to_string(), fc);
    CellNetlist {
        name: b.name,
        inputs,
        outputs: vec!["S".to_string(), "CO".to_string()],
        clock: None,
        transistors: b.mos,
        functions,
        ff: None,
        drive,
    }
}

/// Shared master–slave flip-flop skeleton; `with_reset` adds an active-low
/// asynchronous clear (`RN`).
fn dff_body(name: &str, drive: u32, with_reset: bool) -> CellNetlist {
    let mut b = Builder::new(name);
    let d1 = 1;
    // Local clock buffering.
    b.inv("CLK", "clkb", d1);
    b.inv("clkb", "clki", d1);
    // Master latch: transparent when CLK = 0.
    b.tgate("D", "n1", "clkb", "clki", d1);
    if with_reset {
        // n2 = !(n1 & RN): NAND with reset.
        b.nmos("n2", "n1", "r1", NFIN_N);
        b.nmos("r1", "RN", "gnd", NFIN_N);
        b.pmos("n2", "n1", "vdd", NFIN_P);
        b.pmos("n2", "RN", "vdd", NFIN_P);
    } else {
        b.inv("n1", "n2", d1);
    }
    b.inv("n2", "n3", d1);
    b.tgate("n3", "n1", "clki", "clkb", d1); // master keeper
                                             // Slave latch: transparent when CLK = 1.
    b.tgate("n2", "n4", "clki", "clkb", d1);
    b.inv("n4", "n5", d1);
    b.inv("n5", "n6", d1);
    b.tgate("n6", "n4", "clkb", "clki", d1); // slave keeper
    if with_reset {
        // Force n4 high (Q low) asynchronously when RN = 0.
        b.pmos("n4", "RN", "vdd", NFIN_P * 2);
    }
    // Output buffer: Q = !n4 = D (after a rising edge).
    b.inv("n4", "Q", drive);

    let mut inputs = vec!["D".to_string()];
    if with_reset {
        inputs.push("RN".to_string());
    }
    let q_fn = if with_reset {
        LogicFunction::from_eval(&["D", "RN"], |bits| bits & 1 != 0 && bits & 2 != 0)
    } else {
        LogicFunction::from_eval(&["D"], |bits| bits & 1 != 0)
    };
    let mut functions = BTreeMap::new();
    functions.insert("Q".to_string(), q_fn);
    CellNetlist {
        name: b.name,
        inputs,
        outputs: vec!["Q".to_string()],
        clock: Some("CLK".to_string()),
        transistors: b.mos,
        functions,
        ff: Some(FfSpec {
            clocked_on: "CLK".to_string(),
            next_state: "D".to_string(),
            clear: with_reset.then(|| "RN".to_string()),
        }),
        drive,
    }
}

/// `DFFx<d>`: rising-edge D flip-flop.
#[must_use]
pub fn dff(drive: u32) -> CellNetlist {
    dff_body(&format!("DFFx{drive}"), drive, false)
}

/// `DFFRx<d>`: rising-edge D flip-flop with asynchronous active-low reset.
#[must_use]
pub fn dffr(drive: u32) -> CellNetlist {
    dff_body(&format!("DFFRx{drive}"), drive, true)
}

/// `TIEHI`: constant-1 driver.
#[must_use]
pub fn tiehi() -> CellNetlist {
    let mut b = Builder::new("TIEHIx1");
    // Diode-connected NMOS holds an internal low, PMOS drives Y high.
    b.nmos("tn", "tn", "gnd", NFIN_N);
    b.pmos("Y", "tn", "vdd", NFIN_P);
    let f = LogicFunction::from_eval(&[], |_| true);
    let mut functions = BTreeMap::new();
    functions.insert("Y".to_string(), f);
    CellNetlist {
        name: b.name,
        inputs: vec![],
        outputs: vec!["Y".to_string()],
        clock: None,
        transistors: b.mos,
        functions,
        ff: None,
        drive: 1,
    }
}

/// `TIELO`: constant-0 driver.
#[must_use]
pub fn tielo() -> CellNetlist {
    let mut b = Builder::new("TIELOx1");
    b.pmos("tp", "tp", "vdd", NFIN_P);
    b.nmos("Y", "tp", "gnd", NFIN_N);
    let f = LogicFunction::from_eval(&[], |_| false);
    let mut functions = BTreeMap::new();
    functions.insert("Y".to_string(), f);
    CellNetlist {
        name: b.name,
        inputs: vec![],
        outputs: vec!["Y".to_string()],
        clock: None,
        transistors: b.mos,
        functions,
        ff: None,
        drive: 1,
    }
}

/// `DLYx<d>`: four-stage delay buffer (weak internal stages).
#[must_use]
pub fn delay_cell(drive: u32) -> CellNetlist {
    let mut b = Builder::new(&format!("DLYx{drive}"));
    b.inv("A", "dl1", 1);
    b.inv("dl1", "dl2", 1);
    b.inv("dl2", "dl3", 1);
    b.inv("dl3", "Y", drive);
    let f = LogicFunction::from_eval(&["A"], |bits| bits & 1 != 0);
    combinational(b, input_names(1), "Y", f, drive)
}

/// Resolve a library cell name (e.g. `"NAND3x2"`) back to its generator.
///
/// Returns `None` for names outside the family naming scheme. Used to
/// characterize exactly the subset of cells a netlist instantiates.
#[must_use]
pub fn by_name(name: &str) -> Option<CellNetlist> {
    let (family, drive) = name.rsplit_once('x')?;
    let drive: u32 = drive.parse().ok()?;
    Some(match family {
        "INV" => inverter(drive),
        "BUF" => buffer(drive),
        "CLKBUF" => clock_buffer(drive),
        "CLKINV" => clock_inverter(drive),
        "NAND2" => nand(2, drive),
        "NAND3" => nand(3, drive),
        "NAND4" => nand(4, drive),
        "NOR2" => nor(2, drive),
        "NOR3" => nor(3, drive),
        "NOR4" => nor(4, drive),
        "AND2" => and(2, drive),
        "AND3" => and(3, drive),
        "AND4" => and(4, drive),
        "OR2" => or(2, drive),
        "OR3" => or(3, drive),
        "OR4" => or(4, drive),
        "AOI21" => aoi21(drive),
        "AOI22" => aoi22(drive),
        "OAI21" => oai21(drive),
        "OAI22" => oai22(drive),
        "AO21" => ao21(drive),
        "OA21" => oa21(drive),
        "XOR2" => xor2(drive),
        "XNOR2" => xnor2(drive),
        "MUX2" => mux2(drive),
        "DLY" => delay_cell(drive),
        "MAJ3" => maj3(drive),
        "HA" => half_adder(drive),
        "FA" => full_adder(drive),
        "DFF" => dff(drive),
        "DFFR" => dffr(drive),
        "TIEHI" => tiehi(),
        "TIELO" => tielo(),
        _ => return None,
    })
}

/// The full cell set characterized by this repository (ASAP7-style families
/// and drive strengths, ~190 cells).
#[must_use]
pub fn standard_cell_set() -> Vec<CellNetlist> {
    let mut cells = Vec::new();
    for d in [1u32, 2, 3, 4, 6, 8, 12, 16] {
        cells.push(inverter(d));
        cells.push(buffer(d));
    }
    for d in [2u32, 4, 6, 8, 12, 16] {
        cells.push(clock_buffer(d));
    }
    for d in [2u32, 4, 8, 16] {
        cells.push(clock_inverter(d));
    }
    for arity in [2usize, 3, 4] {
        for d in [1u32, 2, 3, 4, 6, 8, 12] {
            cells.push(nand(arity, d));
            cells.push(nor(arity, d));
            cells.push(and(arity, d));
            cells.push(or(arity, d));
        }
    }
    for d in [1u32, 2, 4, 8] {
        cells.push(aoi21(d));
        cells.push(aoi22(d));
        cells.push(oai21(d));
        cells.push(oai22(d));
        cells.push(ao21(d));
        cells.push(oa21(d));
        cells.push(xor2(d));
        cells.push(xnor2(d));
        cells.push(mux2(d));
        cells.push(delay_cell(d));
    }
    for d in [1u32, 2, 4] {
        cells.push(maj3(d));
        cells.push(half_adder(d));
        cells.push(full_adder(d));
    }
    for d in [1u32, 2, 4, 8] {
        cells.push(dff(d));
        cells.push(dffr(d));
    }
    cells.push(tiehi());
    cells.push(tielo());
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_size_matches_paper_scale() {
        let cells = standard_cell_set();
        assert!(
            (150..=230).contains(&cells.len()),
            "paper characterizes 200 cells; we ship {}",
            cells.len()
        );
    }

    #[test]
    fn names_are_unique() {
        let cells = standard_cell_set();
        let mut names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate cell names");
    }

    #[test]
    fn every_output_has_a_function() {
        for cell in standard_cell_set() {
            for out in &cell.outputs {
                assert!(
                    cell.functions.contains_key(out),
                    "{}: output {out} lacks a function",
                    cell.name
                );
            }
        }
    }

    #[test]
    fn functions_match_input_lists() {
        for cell in standard_cell_set() {
            for (out, f) in &cell.functions {
                for input in f.inputs() {
                    assert!(
                        cell.inputs.contains(input),
                        "{}: function of {out} references unknown input {input}",
                        cell.name
                    );
                }
            }
        }
    }

    #[test]
    fn transistor_terminals_are_wired() {
        // Every gate node must be a pin, supply, or driven internal node;
        // every source/drain path must eventually reach a supply or pin.
        for cell in standard_cell_set() {
            let mut known: Vec<&str> = vec!["vdd", "gnd"];
            known.extend(cell.inputs.iter().map(String::as_str));
            known.extend(cell.outputs.iter().map(String::as_str));
            if let Some(c) = &cell.clock {
                known.push(c);
            }
            let internals = cell.internal_nodes();
            known.extend(internals.iter().map(String::as_str));
            for t in &cell.transistors {
                for node in [&t.d, &t.g, &t.s] {
                    assert!(
                        known.contains(&node.as_str()),
                        "{}: dangling node {node}",
                        cell.name
                    );
                }
                assert!(t.nfin > 0, "{}: zero-fin device", cell.name);
            }
        }
    }

    #[test]
    fn nand_function_truth_table() {
        let c = nand(2, 1);
        let f = &c.functions["Y"];
        assert!(f.eval(0b00) && f.eval(0b01) && f.eval(0b10));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder(1);
        let s = &c.functions["S"];
        let co = &c.functions["CO"];
        for bits in 0u16..8 {
            let ones = bits.count_ones();
            assert_eq!(s.eval(bits), ones % 2 == 1, "S at {bits:03b}");
            assert_eq!(co.eval(bits), ones >= 2, "CO at {bits:03b}");
        }
    }

    #[test]
    fn drive_scales_fins() {
        let small = inverter(1);
        let large = inverter(4);
        assert_eq!(large.total_fins(), 4 * small.total_fins());
        assert!(large.area() > small.area());
    }

    #[test]
    fn dff_is_sequential_with_clock() {
        let c = dff(1);
        assert!(c.ff.is_some());
        assert_eq!(c.clock.as_deref(), Some("CLK"));
        assert!(!c.is_tie());
        let r = dffr(1);
        assert_eq!(r.ff.as_ref().unwrap().clear.as_deref(), Some("RN"));
        assert!(r.inputs.contains(&"RN".to_string()));
    }

    #[test]
    fn tie_cells_have_no_inputs() {
        assert!(tiehi().is_tie());
        assert!(tielo().is_tie());
    }

    #[test]
    fn by_name_round_trips_the_standard_set() {
        for cell in standard_cell_set() {
            let back =
                by_name(&cell.name).unwrap_or_else(|| panic!("{} not resolvable", cell.name));
            assert_eq!(back.name, cell.name);
            assert_eq!(back.total_fins(), cell.total_fins());
        }
        assert!(by_name("FROB2x1").is_none());
        assert!(by_name("INVxQ").is_none());
    }

    #[test]
    fn wire_cap_counts_terminals() {
        let c = inverter(1);
        // Node Y touches two drains.
        let cap = c.wire_cap("Y");
        assert!((cap - 2.0 * WIRE_CAP_PER_TERMINAL).abs() < 1e-24);
    }
}
