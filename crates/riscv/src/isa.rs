//! RV64IMFD instruction definitions, decoding, and encoding.

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// Integer load/store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// Signed byte.
    B,
    /// Signed half.
    H,
    /// Signed word.
    W,
    /// Double word.
    D,
    /// Unsigned byte.
    Bu,
    /// Unsigned half.
    Hu,
    /// Unsigned word.
    Wu,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B | MemWidth::Bu => 1,
            MemWidth::H | MemWidth::Hu => 2,
            MemWidth::W | MemWidth::Wu => 4,
            MemWidth::D => 8,
        }
    }
}

/// Register-register / register-immediate integer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`sub` is encoded separately).
    Add,
    /// Subtraction.
    Sub,
    /// Shift left logical.
    Sll,
    /// Set less than (signed).
    Slt,
    /// Set less than unsigned.
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
    /// Multiply (low 64).
    Mul,
    /// Multiply high signed.
    Mulh,
    /// Multiply high unsigned.
    Mulhu,
    /// Divide signed.
    Div,
    /// Divide unsigned.
    Divu,
    /// Remainder signed.
    Rem,
    /// Remainder unsigned.
    Remu,
}

/// Floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpWidth {
    /// `*.s` single.
    S,
    /// `*.d` double.
    D,
}

/// Floating-point arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Floating-point comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmp {
    /// `feq`
    Eq,
    /// `flt`
    Lt,
    /// `fle`
    Le,
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Load upper immediate.
    Lui {
        /// Destination.
        rd: u8,
        /// Already-shifted immediate.
        imm: i64,
    },
    /// PC-relative upper immediate.
    Auipc {
        /// Destination.
        rd: u8,
        /// Already-shifted immediate.
        imm: i64,
    },
    /// Jump and link.
    Jal {
        /// Destination (link).
        rd: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Indirect jump and link.
    Jalr {
        /// Destination (link).
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left operand.
        rs1: u8,
        /// Right operand.
        rs2: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Integer load.
    Load {
        /// Width/signedness.
        width: MemWidth,
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Integer store.
    Store {
        /// Width.
        width: MemWidth,
        /// Data register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Register-immediate ALU operation (64-bit).
    OpImm {
        /// Operation (`Add`, `Slt`, `Sltu`, `Xor`, `Or`, `And`, `Sll`,
        /// `Srl`, `Sra`).
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Immediate (shift amount for shifts).
        imm: i64,
    },
    /// Register-immediate ALU operation (32-bit, sign-extended result).
    OpImmW {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Immediate.
        imm: i64,
    },
    /// Register-register ALU operation (64-bit), including M extension.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Left source.
        rs1: u8,
        /// Right source.
        rs2: u8,
    },
    /// Register-register ALU operation (32-bit, sign-extended result).
    OpW {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Left source.
        rs1: u8,
        /// Right source.
        rs2: u8,
    },
    /// Count set bits (`Zbb cpop`) — decoded only when the extension is
    /// enabled in the pipeline; always encodable for the ablation study.
    Cpop {
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
    },
    /// Environment call (terminates simulation).
    Ecall,
    /// Fence (timing no-op here).
    Fence,
    /// Floating-point load.
    FLoad {
        /// Precision.
        width: FpWidth,
        /// FP destination.
        frd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Floating-point store.
    FStore {
        /// Precision.
        width: FpWidth,
        /// FP data register.
        frs2: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Floating-point arithmetic.
    FpArith {
        /// Operation.
        op: FpOp,
        /// Precision.
        width: FpWidth,
        /// FP destination.
        frd: u8,
        /// FP left source.
        frs1: u8,
        /// FP right source.
        frs2: u8,
    },
    /// Floating-point compare to integer register.
    FpCompare {
        /// Comparison.
        cmp: FpCmp,
        /// Precision.
        width: FpWidth,
        /// Integer destination.
        rd: u8,
        /// FP left source.
        frs1: u8,
        /// FP right source.
        frs2: u8,
    },
    /// Sign-injection (covers `fmv.d`/`fneg.d`/`fabs.d` pseudo-ops).
    FSgnj {
        /// Variant: 0 = sgnj, 1 = sgnjn, 2 = sgnjx.
        variant: u8,
        /// Precision.
        width: FpWidth,
        /// FP destination.
        frd: u8,
        /// FP left source.
        frs1: u8,
        /// FP right source.
        frs2: u8,
    },
    /// Convert double to signed 32-bit integer (`fcvt.w.d`, RTZ).
    FcvtWD {
        /// Integer destination.
        rd: u8,
        /// FP source.
        frs1: u8,
    },
    /// Convert signed 32-bit integer to double (`fcvt.d.w`).
    FcvtDW {
        /// FP destination.
        frd: u8,
        /// Integer source.
        rs1: u8,
    },
    /// Convert double to signed 64-bit integer (`fcvt.l.d`, RTZ).
    FcvtLD {
        /// Integer destination.
        rd: u8,
        /// FP source.
        frs1: u8,
    },
    /// Convert signed 64-bit integer to double (`fcvt.d.l`).
    FcvtDL {
        /// FP destination.
        frd: u8,
        /// Integer source.
        rs1: u8,
    },
    /// Move FP bit pattern to integer register (`fmv.x.d`).
    FmvXD {
        /// Integer destination.
        rd: u8,
        /// FP source.
        frs1: u8,
    },
    /// Move integer bit pattern to FP register (`fmv.d.x`).
    FmvDX {
        /// FP destination.
        frd: u8,
        /// Integer source.
        rs1: u8,
    },
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64;
    let lo = ((w >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}
fn imm_b(w: u32) -> i64 {
    let b12 = ((w >> 31) & 1) as i64;
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3f) as i64;
    let b4_1 = ((w >> 8) & 0xf) as i64;
    let v = (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1);
    (v << 51) >> 51
}
fn imm_u(w: u32) -> i64 {
    ((w & 0xffff_f000) as i32) as i64
}
fn imm_j(w: u32) -> i64 {
    let b20 = ((w >> 31) & 1) as i64;
    let b19_12 = ((w >> 12) & 0xff) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3ff) as i64;
    let v = (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1);
    (v << 43) >> 43
}

/// Decode a 32-bit instruction word.
#[must_use]
pub fn decode(w: u32) -> Option<Inst> {
    let opcode = w & 0x7f;
    match opcode {
        0x37 => Some(Inst::Lui {
            rd: rd(w),
            imm: imm_u(w),
        }),
        0x17 => Some(Inst::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        }),
        0x6f => Some(Inst::Jal {
            rd: rd(w),
            offset: imm_j(w),
        }),
        0x67 if funct3(w) == 0 => Some(Inst::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        }),
        0x63 => {
            let cond = match funct3(w) {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::Ltu,
                7 => BranchCond::Geu,
                _ => return None,
            };
            Some(Inst::Branch {
                cond,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            })
        }
        0x03 => {
            let width = match funct3(w) {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                4 => MemWidth::Bu,
                5 => MemWidth::Hu,
                6 => MemWidth::Wu,
                _ => return None,
            };
            Some(Inst::Load {
                width,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            })
        }
        0x23 => {
            let width = match funct3(w) {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return None,
            };
            Some(Inst::Store {
                width,
                rs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            })
        }
        0x13 => {
            let op = match funct3(w) {
                0 => AluOp::Add,
                1 => {
                    // slli or cpop (Zbb encodes cpop as shift-family).
                    if funct7(w) == 0x30 && rs2(w) == 2 {
                        return Some(Inst::Cpop {
                            rd: rd(w),
                            rs1: rs1(w),
                        });
                    }
                    AluOp::Sll
                }
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if (w >> 26) == 0x10 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => unreachable!(),
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm_i(w) & 0x3f,
                _ => imm_i(w),
            };
            Some(Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            })
        }
        0x1b => {
            let op = match funct3(w) {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                5 => {
                    if (w >> 26) == 0x10 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                _ => return None,
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm_i(w) & 0x1f,
                _ => imm_i(w),
            };
            Some(Inst::OpImmW {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            })
        }
        0x33 => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0x00, 1) => AluOp::Sll,
                (0x00, 2) => AluOp::Slt,
                (0x00, 3) => AluOp::Sltu,
                (0x00, 4) => AluOp::Xor,
                (0x00, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0x00, 6) => AluOp::Or,
                (0x00, 7) => AluOp::And,
                (0x01, 0) => AluOp::Mul,
                (0x01, 1) => AluOp::Mulh,
                (0x01, 3) => AluOp::Mulhu,
                (0x01, 4) => AluOp::Div,
                (0x01, 5) => AluOp::Divu,
                (0x01, 6) => AluOp::Rem,
                (0x01, 7) => AluOp::Remu,
                _ => return None,
            };
            Some(Inst::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            })
        }
        0x3b => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0x00, 1) => AluOp::Sll,
                (0x00, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0x01, 0) => AluOp::Mul,
                (0x01, 4) => AluOp::Div,
                (0x01, 6) => AluOp::Rem,
                _ => return None,
            };
            Some(Inst::OpW {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            })
        }
        0x73 if w == 0x0000_0073 => Some(Inst::Ecall),
        0x0f => Some(Inst::Fence),
        0x07 => {
            let width = match funct3(w) {
                2 => FpWidth::S,
                3 => FpWidth::D,
                _ => return None,
            };
            Some(Inst::FLoad {
                width,
                frd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            })
        }
        0x27 => {
            let width = match funct3(w) {
                2 => FpWidth::S,
                3 => FpWidth::D,
                _ => return None,
            };
            Some(Inst::FStore {
                width,
                frs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            })
        }
        0x53 => decode_fp(w),
        _ => None,
    }
}

fn decode_fp(w: u32) -> Option<Inst> {
    let f7 = funct7(w);
    let width = match f7 & 3 {
        0 => FpWidth::S,
        1 => FpWidth::D,
        _ => return None,
    };
    match f7 >> 2 {
        0x00 => Some(Inst::FpArith {
            op: FpOp::Add,
            width,
            frd: rd(w),
            frs1: rs1(w),
            frs2: rs2(w),
        }),
        0x01 => Some(Inst::FpArith {
            op: FpOp::Sub,
            width,
            frd: rd(w),
            frs1: rs1(w),
            frs2: rs2(w),
        }),
        0x02 => Some(Inst::FpArith {
            op: FpOp::Mul,
            width,
            frd: rd(w),
            frs1: rs1(w),
            frs2: rs2(w),
        }),
        0x03 => Some(Inst::FpArith {
            op: FpOp::Div,
            width,
            frd: rd(w),
            frs1: rs1(w),
            frs2: rs2(w),
        }),
        0x04 => Some(Inst::FSgnj {
            variant: funct3(w) as u8,
            width,
            frd: rd(w),
            frs1: rs1(w),
            frs2: rs2(w),
        }),
        0x14 => {
            let cmp = match funct3(w) {
                0 => FpCmp::Le,
                1 => FpCmp::Lt,
                2 => FpCmp::Eq,
                _ => return None,
            };
            Some(Inst::FpCompare {
                cmp,
                width,
                rd: rd(w),
                frs1: rs1(w),
                frs2: rs2(w),
            })
        }
        0x18 => match rs2(w) {
            0 => Some(Inst::FcvtWD {
                rd: rd(w),
                frs1: rs1(w),
            }),
            2 => Some(Inst::FcvtLD {
                rd: rd(w),
                frs1: rs1(w),
            }),
            _ => None,
        },
        0x1a => match rs2(w) {
            0 => Some(Inst::FcvtDW {
                frd: rd(w),
                rs1: rs1(w),
            }),
            2 => Some(Inst::FcvtDL {
                frd: rd(w),
                rs1: rs1(w),
            }),
            _ => None,
        },
        0x1c if funct3(w) == 0 => Some(Inst::FmvXD {
            rd: rd(w),
            frs1: rs1(w),
        }),
        0x1e if funct3(w) == 0 => Some(Inst::FmvDX {
            frd: rd(w),
            rs1: rs1(w),
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn enc_r(opcode: u32, f3: u32, f7: u32, rd: u8, rs1: u8, rs2: u8) -> u32 {
    opcode
        | (u32::from(rd) << 7)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (f7 << 25)
}

fn enc_i(opcode: u32, f3: u32, rd: u8, rs1: u8, imm: i64) -> u32 {
    opcode
        | (u32::from(rd) << 7)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

fn enc_s(opcode: u32, f3: u32, rs1: u8, rs2: u8, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn enc_b(opcode: u32, f3: u32, rs1: u8, rs2: u8, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn enc_u(opcode: u32, rd: u8, imm: i64) -> u32 {
    opcode | (u32::from(rd) << 7) | ((imm as u32) & 0xffff_f000)
}

fn enc_j(opcode: u32, rd: u8, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | (u32::from(rd) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Encode an instruction to its 32-bit word.
#[must_use]
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => enc_u(0x37, rd, imm),
        Inst::Auipc { rd, imm } => enc_u(0x17, rd, imm),
        Inst::Jal { rd, offset } => enc_j(0x6f, rd, offset),
        Inst::Jalr { rd, rs1, offset } => enc_i(0x67, 0, rd, rs1, offset),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match cond {
                BranchCond::Eq => 0,
                BranchCond::Ne => 1,
                BranchCond::Lt => 4,
                BranchCond::Ge => 5,
                BranchCond::Ltu => 6,
                BranchCond::Geu => 7,
            };
            enc_b(0x63, f3, rs1, rs2, offset)
        }
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match width {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
                MemWidth::D => 3,
                MemWidth::Bu => 4,
                MemWidth::Hu => 5,
                MemWidth::Wu => 6,
            };
            enc_i(0x03, f3, rd, rs1, offset)
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let f3 = match width {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
                MemWidth::D => 3,
                _ => unreachable!("unsigned store widths do not exist"),
            };
            enc_s(0x23, f3, rs1, rs2, offset)
        }
        Inst::OpImm { op, rd, rs1, imm } => match op {
            AluOp::Add => enc_i(0x13, 0, rd, rs1, imm),
            AluOp::Slt => enc_i(0x13, 2, rd, rs1, imm),
            AluOp::Sltu => enc_i(0x13, 3, rd, rs1, imm),
            AluOp::Xor => enc_i(0x13, 4, rd, rs1, imm),
            AluOp::Or => enc_i(0x13, 6, rd, rs1, imm),
            AluOp::And => enc_i(0x13, 7, rd, rs1, imm),
            AluOp::Sll => enc_i(0x13, 1, rd, rs1, imm & 0x3f),
            AluOp::Srl => enc_i(0x13, 5, rd, rs1, imm & 0x3f),
            AluOp::Sra => enc_i(0x13, 5, rd, rs1, (imm & 0x3f) | 0x400),
            _ => unreachable!("not an OpImm op"),
        },
        Inst::OpImmW { op, rd, rs1, imm } => match op {
            AluOp::Add => enc_i(0x1b, 0, rd, rs1, imm),
            AluOp::Sll => enc_i(0x1b, 1, rd, rs1, imm & 0x1f),
            AluOp::Srl => enc_i(0x1b, 5, rd, rs1, imm & 0x1f),
            AluOp::Sra => enc_i(0x1b, 5, rd, rs1, (imm & 0x1f) | 0x400),
            _ => unreachable!("not an OpImmW op"),
        },
        Inst::Op { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                AluOp::Add => (0x00, 0),
                AluOp::Sub => (0x20, 0),
                AluOp::Sll => (0x00, 1),
                AluOp::Slt => (0x00, 2),
                AluOp::Sltu => (0x00, 3),
                AluOp::Xor => (0x00, 4),
                AluOp::Srl => (0x00, 5),
                AluOp::Sra => (0x20, 5),
                AluOp::Or => (0x00, 6),
                AluOp::And => (0x00, 7),
                AluOp::Mul => (0x01, 0),
                AluOp::Mulh => (0x01, 1),
                AluOp::Mulhu => (0x01, 3),
                AluOp::Div => (0x01, 4),
                AluOp::Divu => (0x01, 5),
                AluOp::Rem => (0x01, 6),
                AluOp::Remu => (0x01, 7),
            };
            enc_r(0x33, f3, f7, rd, rs1, rs2)
        }
        Inst::OpW { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                AluOp::Add => (0x00, 0),
                AluOp::Sub => (0x20, 0),
                AluOp::Sll => (0x00, 1),
                AluOp::Srl => (0x00, 5),
                AluOp::Sra => (0x20, 5),
                AluOp::Mul => (0x01, 0),
                AluOp::Div => (0x01, 4),
                AluOp::Rem => (0x01, 6),
                _ => unreachable!("not an OpW op"),
            };
            enc_r(0x3b, f3, f7, rd, rs1, rs2)
        }
        Inst::Cpop { rd, rs1 } => enc_r(0x13, 1, 0x30, rd, rs1, 2),
        Inst::Ecall => 0x0000_0073,
        Inst::Fence => 0x0000_000f,
        Inst::FLoad {
            width,
            frd,
            rs1,
            offset,
        } => enc_i(
            0x07,
            if width == FpWidth::S { 2 } else { 3 },
            frd,
            rs1,
            offset,
        ),
        Inst::FStore {
            width,
            frs2,
            rs1,
            offset,
        } => enc_s(
            0x27,
            if width == FpWidth::S { 2 } else { 3 },
            rs1,
            frs2,
            offset,
        ),
        Inst::FpArith {
            op,
            width,
            frd,
            frs1,
            frs2,
        } => {
            let f7 = (match op {
                FpOp::Add => 0x00,
                FpOp::Sub => 0x01,
                FpOp::Mul => 0x02,
                FpOp::Div => 0x03,
            } << 2)
                | if width == FpWidth::S { 0 } else { 1 };
            enc_r(0x53, 7, f7, frd, frs1, frs2) // rm = dynamic
        }
        Inst::FpCompare {
            cmp,
            width,
            rd,
            frs1,
            frs2,
        } => {
            let f3 = match cmp {
                FpCmp::Le => 0,
                FpCmp::Lt => 1,
                FpCmp::Eq => 2,
            };
            let f7 = (0x14 << 2) | if width == FpWidth::S { 0 } else { 1 };
            enc_r(0x53, f3, f7, rd, frs1, frs2)
        }
        Inst::FSgnj {
            variant,
            width,
            frd,
            frs1,
            frs2,
        } => {
            let f7 = (0x04 << 2) | if width == FpWidth::S { 0 } else { 1 };
            enc_r(0x53, u32::from(variant), f7, frd, frs1, frs2)
        }
        Inst::FcvtWD { rd, frs1 } => enc_r(0x53, 1, (0x18 << 2) | 1, rd, frs1, 0),
        Inst::FcvtLD { rd, frs1 } => enc_r(0x53, 1, (0x18 << 2) | 1, rd, frs1, 2),
        Inst::FcvtDW { frd, rs1 } => enc_r(0x53, 0, (0x1a << 2) | 1, frd, rs1, 0),
        Inst::FcvtDL { frd, rs1 } => enc_r(0x53, 0, (0x1a << 2) | 1, frd, rs1, 2),
        Inst::FmvXD { rd, frs1 } => enc_r(0x53, 0, (0x1c << 2) | 1, rd, frs1, 0),
        Inst::FmvDX { frd, rs1 } => enc_r(0x53, 0, (0x1e << 2) | 1, frd, rs1, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(inst: Inst) {
        let w = encode(&inst);
        let back = decode(w).unwrap_or_else(|| panic!("decode failed for {inst:?} ({w:#010x})"));
        assert_eq!(inst, back, "word {w:#010x}");
    }

    #[test]
    fn round_trip_core_set() {
        round_trip(Inst::Lui {
            rd: 5,
            imm: 0x12345 << 12,
        });
        round_trip(Inst::Auipc { rd: 1, imm: -4096 });
        round_trip(Inst::Jal {
            rd: 1,
            offset: 2048,
        });
        round_trip(Inst::Jal { rd: 0, offset: -16 });
        round_trip(Inst::Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        });
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            round_trip(Inst::Branch {
                cond,
                rs1: 10,
                rs2: 11,
                offset: -64,
            });
        }
        for width in [
            MemWidth::B,
            MemWidth::H,
            MemWidth::W,
            MemWidth::D,
            MemWidth::Bu,
            MemWidth::Hu,
            MemWidth::Wu,
        ] {
            round_trip(Inst::Load {
                width,
                rd: 7,
                rs1: 2,
                offset: -8,
            });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            round_trip(Inst::Store {
                width,
                rs2: 7,
                rs1: 2,
                offset: 40,
            });
        }
    }

    #[test]
    fn round_trip_alu() {
        for op in [
            AluOp::Add,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
        ] {
            round_trip(Inst::OpImm {
                op,
                rd: 3,
                rs1: 4,
                imm: -17,
            });
        }
        for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            round_trip(Inst::OpImm {
                op,
                rd: 3,
                rs1: 4,
                imm: 63,
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ] {
            round_trip(Inst::Op {
                op,
                rd: 3,
                rs1: 4,
                rs2: 5,
            });
        }
        round_trip(Inst::OpImmW {
            op: AluOp::Add,
            rd: 1,
            rs1: 2,
            imm: 100,
        });
        round_trip(Inst::OpW {
            op: AluOp::Sub,
            rd: 1,
            rs1: 2,
            rs2: 3,
        });
        round_trip(Inst::Cpop { rd: 9, rs1: 10 });
    }

    #[test]
    fn round_trip_fp() {
        for op in [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div] {
            round_trip(Inst::FpArith {
                op,
                width: FpWidth::D,
                frd: 1,
                frs1: 2,
                frs2: 3,
            });
        }
        for cmp in [FpCmp::Eq, FpCmp::Lt, FpCmp::Le] {
            round_trip(Inst::FpCompare {
                cmp,
                width: FpWidth::D,
                rd: 5,
                frs1: 6,
                frs2: 7,
            });
        }
        round_trip(Inst::FLoad {
            width: FpWidth::D,
            frd: 0,
            rs1: 10,
            offset: 16,
        });
        round_trip(Inst::FStore {
            width: FpWidth::D,
            frs2: 0,
            rs1: 10,
            offset: -24,
        });
        round_trip(Inst::FSgnj {
            variant: 0,
            width: FpWidth::D,
            frd: 1,
            frs1: 2,
            frs2: 2,
        });
        round_trip(Inst::FcvtWD { rd: 1, frs1: 2 });
        round_trip(Inst::FcvtDW { frd: 1, rs1: 2 });
        round_trip(Inst::FcvtLD { rd: 1, frs1: 2 });
        round_trip(Inst::FcvtDL { frd: 1, rs1: 2 });
        round_trip(Inst::FmvXD { rd: 1, frs1: 2 });
        round_trip(Inst::FmvDX { frd: 1, rs1: 2 });
    }

    #[test]
    fn immediates_sign_extend() {
        // beq x0, x0, -4096 is the most negative B immediate.
        let w = encode(&Inst::Branch {
            cond: BranchCond::Eq,
            rs1: 0,
            rs2: 0,
            offset: -4096,
        });
        match decode(w).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -4096),
            other => panic!("wrong decode: {other:?}"),
        }
        let w = encode(&Inst::Jal {
            rd: 0,
            offset: -(1 << 20),
        });
        match decode(w).unwrap() {
            Inst::Jal { offset, .. } => assert_eq!(offset, -(1 << 20)),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(decode(0xffff_ffff), None);
        assert_eq!(decode(0x0000_0000), None);
    }
}
