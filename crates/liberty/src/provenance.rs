//! Library provenance: where a corner's numbers came from.
//!
//! A [`crate::Library`] has always meant "SPICE characterized this". The
//! learned-surrogate subsystem (`cryo-surrogate`) introduces corners whose
//! tables were *predicted* by a trained model, and anything downstream —
//! the audit firewall, signoff reports, cache policies — must be able to
//! tell the two apart. [`Provenance`] records that distinction on the
//! library itself, together with the model hash and held-out residual
//! statistics that bound how much the predicted numbers can be trusted.

use serde::{Deserialize, Serialize};

/// Held-out prediction-error statistics of a trained surrogate, measured in
/// the linear (delay/slew/energy) domain as `|predicted - actual| /
/// max(|actual|, ε)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidualStats {
    /// Training samples the model was fitted on.
    pub n_train: usize,
    /// Held-out samples the residuals were measured on.
    pub n_holdout: usize,
    /// Mean absolute relative error over the holdout set.
    pub mean_abs_rel_err: f64,
    /// Worst absolute relative error over the holdout set.
    pub max_abs_rel_err: f64,
}

impl Default for ResidualStats {
    fn default() -> Self {
        ResidualStats {
            n_train: 0,
            n_holdout: 0,
            mean_abs_rel_err: 0.0,
            max_abs_rel_err: 0.0,
        }
    }
}

/// How a library corner's tables were produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Provenance {
    /// Every table came from SPICE characterization — the historical (and
    /// default) meaning of a `Library`. Serializes as nothing at all, so
    /// pre-surrogate artifacts are byte-identical and round-trip.
    #[default]
    Characterized,
    /// The tables were emitted by a trained surrogate model.
    Predicted {
        /// FNV-64 digest of the trained model's exact weight bit patterns.
        model_hash: String,
        /// Held-out residual statistics of that model.
        residual: ResidualStats,
    },
}

impl Provenance {
    /// Whether this is a predicted (surrogate-emitted) corner.
    #[must_use]
    pub fn is_predicted(&self) -> bool {
        matches!(self, Provenance::Predicted { .. })
    }
}

// The vendored serde derive only handles unit-variant enums, and
// `Characterized` must serialize as an *absent* field (see `Library`'s
// hand-written impls), so both impls are written out.
impl Serialize for Provenance {
    fn to_value(&self) -> serde::Value {
        match self {
            Provenance::Characterized => serde::Value::Null,
            Provenance::Predicted {
                model_hash,
                residual,
            } => serde::Value::Object(vec![
                ("model_hash".to_string(), model_hash.to_value()),
                ("residual".to_string(), residual.to_value()),
            ]),
        }
    }
}

impl Deserialize for Provenance {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(Provenance::Characterized),
            serde::Value::Object(_) => Ok(Provenance::Predicted {
                model_hash: Deserialize::from_value(v.get("model_hash"))
                    .map_err(|e| serde::Error::custom(format!("Provenance.model_hash: {e}")))?,
                residual: Deserialize::from_value(v.get("residual"))
                    .map_err(|e| serde::Error::custom(format!("Provenance.residual: {e}")))?,
            }),
            other => Err(serde::Error::custom(format!(
                "expected null or object for Provenance, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterized_serializes_as_null_and_round_trips() {
        let p = Provenance::Characterized;
        assert_eq!(p.to_value(), serde::Value::Null);
        let back = Provenance::from_value(&serde::Value::Null).unwrap();
        assert_eq!(back, p);
        assert!(!p.is_predicted());
    }

    #[test]
    fn predicted_round_trips_with_stats() {
        let p = Provenance::Predicted {
            model_hash: "deadbeefdeadbeef".into(),
            residual: ResidualStats {
                n_train: 1200,
                n_holdout: 300,
                mean_abs_rel_err: 0.031,
                max_abs_rel_err: 0.18,
            },
        };
        let v = p.to_value();
        let back = Provenance::from_value(&v).unwrap();
        assert_eq!(back, p);
        assert!(back.is_predicted());
    }
}
