//! Extension study (paper Sec. VII: "further power reduction could be
//! achieved by ... supply voltage reduction"): characterize a representative
//! cell subset at 10 K across supply voltages and report the delay/leakage
//! trade.
use cryo_cells::{topology, CharConfig, Characterizer};
use cryo_device::{ModelCard, Polarity};

fn main() {
    let nfet = ModelCard::nominal(Polarity::N);
    let pfet = ModelCard::nominal(Polarity::P);
    let cells = vec![
        topology::inverter(1),
        topology::inverter(4),
        topology::nand(2, 2),
        topology::nor(2, 2),
        topology::xor2(2),
        topology::full_adder(1),
    ];
    println!("=== Sec. VII ablation: supply-voltage scaling at 10 K ===");
    println!(
        "{:>6} {:>14} {:>16} {:>18}",
        "Vdd", "mean delay", "vs 0.70 V", "library leakage"
    );
    let mut base_delay = None;
    for vdd in [0.70, 0.65, 0.60, 0.55, 0.50] {
        let mut cfg = CharConfig::fast(10.0);
        cfg.vdd = vdd;
        let engine = Characterizer::new(&nfet, &pfet, cfg);
        match engine.characterize_library(&format!("vdd_{vdd}"), &cells) {
            Ok(lib) => {
                let stats = lib.stats();
                let base = *base_delay.get_or_insert(stats.mean_delay);
                println!(
                    "{vdd:>5.2}V {:>11.2} ps {:>15.2}x {:>15.3e} W",
                    stats.mean_delay * 1e12,
                    stats.mean_delay / base,
                    stats.total_avg_leakage
                );
            }
            Err(e) => println!("{vdd:>5.2}V characterization failed: {e}"),
        }
    }
    println!("\n(The steep 10 K subthreshold swing keeps cells functional well below");
    println!(" the nominal 0.7 V — the headroom the paper's Sec. VII points at.)");
}
