//! I/Q plane encoding into hypervectors (equation (3) of the paper).

use crate::hypervector::Hv128;
use crate::item_memory::ItemMemory;

/// Encodes I/Q points into hypervectors: each coordinate is quantized into
/// an item-memory level and the two item vectors are bound:
/// `P = x̄_P ⊕ ȳ_P`.
#[derive(Debug, Clone, PartialEq)]
pub struct IqEncoder {
    items_x: ItemMemory,
    items_y: ItemMemory,
    /// Lower edge of the quantized range.
    pub qmin: f64,
    /// Levels per unit (scale factor).
    pub qscale: f64,
}

impl IqEncoder {
    /// Build an encoder over `levels` quantization levels covering
    /// `[qmin, qmax]` on both axes.
    ///
    /// # Panics
    ///
    /// Panics unless `qmax > qmin` and `levels >= 2`.
    #[must_use]
    pub fn new(levels: usize, qmin: f64, qmax: f64, seed: u64) -> Self {
        assert!(qmax > qmin && levels >= 2, "degenerate quantizer");
        Self {
            items_x: ItemMemory::generate_levels(levels, seed ^ 0x78_69),
            items_y: ItemMemory::generate_levels(levels, seed ^ 0x79_69),
            qmin,
            qscale: levels as f64 / (qmax - qmin),
        }
    }

    /// Quantize a coordinate to its level, clamped into range — the exact
    /// arithmetic (truncating conversion) the RISC-V kernel performs.
    #[must_use]
    pub fn quantize(&self, v: f64) -> usize {
        let raw = (v - self.qmin) * self.qscale;
        // `fcvt.w.d` with RTZ truncates toward zero.
        let level = raw as i64;
        level.clamp(0, self.items_x.levels() as i64 - 1) as usize
    }

    /// Encode an I/Q point.
    #[must_use]
    pub fn encode(&self, x: f64, y: f64) -> Hv128 {
        self.items_x
            .item(self.quantize(x))
            .bind(self.items_y.item(self.quantize(y)))
    }

    /// The item memories as kernel data tables (`[lo, hi]` per level).
    #[must_use]
    pub fn tables(&self) -> (Vec<[u64; 2]>, Vec<[u64; 2]>) {
        (self.items_x.as_words(), self.items_y.as_words())
    }

    /// Number of levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.items_x.levels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> IqEncoder {
        IqEncoder::new(16, -2.0, 2.0, 11)
    }

    #[test]
    fn quantization_covers_range() {
        let e = enc();
        assert_eq!(e.quantize(-10.0), 0);
        assert_eq!(e.quantize(10.0), 15);
        assert_eq!(e.quantize(-2.0), 0);
        let mid = e.quantize(0.0);
        assert!((7..=8).contains(&mid), "mid level = {mid}");
    }

    #[test]
    fn nearby_points_share_encodings() {
        let e = enc();
        let a = e.encode(0.50, -1.0);
        let b = e.encode(0.52, -1.0);
        assert_eq!(a, b, "same quantization cell");
    }

    #[test]
    fn distant_points_decorrelate() {
        let e = enc();
        let a = e.encode(-1.8, -1.8);
        let b = e.encode(1.8, 1.8);
        assert!(a.hamming(b) > 35, "d = {}", a.hamming(b));
    }

    #[test]
    fn encoding_is_bind_of_items() {
        let e = enc();
        let x = 0.7;
        let y = -0.9;
        let manual = e
            .items_x
            .item(e.quantize(x))
            .bind(e.items_y.item(e.quantize(y)));
        assert_eq!(e.encode(x, y), manual);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_inverted_range() {
        let _ = IqEncoder::new(16, 2.0, -2.0, 0);
    }
}
