//! Scratch tuning harness: prints device figures of merit at 300 K and 10 K.
use cryo_device::{FinFet, IvCurve, ModelCard, Polarity};

fn main() {
    for pol in [Polarity::N, Polarity::P] {
        let card = ModelCard::nominal(pol);
        println!("=== {pol} ===");
        for temp in [300.0, 10.0] {
            let d = FinFet::new(&card, temp, 1);
            let s = pol.sign();
            let ion = d.ids(s * 0.7, s * 0.7).abs();
            let ioff = d.ids(0.0, s * 0.7).abs();
            let lin = IvCurve::sweep(&d, 0.05, 0.75, 150);
            let vth_cc = lin.vgs_at_current(1e-6).unwrap_or(f64::NAN);
            let ss = lin
                .subthreshold_swing(ioff.max(1e-13) * 5.0, 2e-7)
                .unwrap_or(f64::NAN);
            println!(
                "T={temp:5.0}K  Ion={:8.2} uA/fin  Ioff={:10.3e} A  Vth_cc={:6.4} V  SS={:5.1} mV/dec  Vth_model={:6.4}",
                ion * 1e6, ioff, vth_cc, ss, d.vth()
            );
        }
        let d300 = FinFet::new(&card, 300.0, 1);
        let d10 = FinFet::new(&card, 10.0, 1);
        let s = pol.sign();
        println!(
            "Ion(10K)/Ion(300K) = {:.3}   Ioff ratio = {:.3e}",
            d10.ids(s * 0.7, s * 0.7) / d300.ids(s * 0.7, s * 0.7),
            (d10.ids(0.0, s * 0.7) / d300.ids(0.0, s * 0.7)).abs()
        );
        let l300 = IvCurve::sweep(&d300, 0.05, 0.75, 300);
        let l10 = IvCurve::sweep(&d10, 0.05, 0.75, 300);
        let v300 = l300.vgs_at_current(1e-6).unwrap_or(f64::NAN);
        let v10 = l10.vgs_at_current(1e-6).unwrap_or(f64::NAN);
        println!("Vth_cc gain = {:.3}  ({v300:.4} -> {v10:.4})", v10 / v300);
    }
}
