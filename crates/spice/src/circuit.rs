//! Circuit description: nodes and elements.

use cryo_device::FinFet;

use crate::source::Source;

/// Identifier of a circuit node. Node 0 is always ground.
pub type NodeId = usize;

/// The ground node, shared by every circuit.
pub const GROUND: NodeId = 0;

/// One circuit element.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // FinFET instances dominate real circuits; boxing would only add indirection
pub enum ElementKind {
    /// Linear resistor between two nodes, ohms.
    Resistor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Resistance in ohms; must be positive.
        ohms: f64,
    },
    /// Linear capacitor between two nodes, farads.
    Capacitor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Capacitance in farads; must be non-negative.
        farads: f64,
    },
    /// Independent voltage source with a waveform.
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform.
        source: Source,
        /// Index into the branch-current unknowns (assigned by the circuit).
        branch: usize,
    },
    /// A FinFET with drain/gate/source terminals (bulk tied to source).
    Fet {
        /// Drain node.
        d: NodeId,
        /// Gate node.
        g: NodeId,
        /// Source node.
        s: NodeId,
        /// Evaluated device (model card bound to temperature and fin count).
        dev: FinFet,
    },
}

/// A named element.
#[derive(Debug, Clone)]
pub struct Element {
    /// Instance name, e.g. `"MN1"`.
    pub name: String,
    /// The element body.
    pub kind: ElementKind,
}

/// A flat transistor-level circuit.
///
/// Build with the `node`/`resistor`/`capacitor`/`vsource`/`finfet` methods,
/// then hand to [`crate::dc_operating_point`] or [`crate::transient`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
    n_branches: usize,
}

impl Circuit {
    /// Create an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            n_branches: 0,
        }
    }

    /// Register (or look up) a named node and return its id.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return GROUND;
        }
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            return idx;
        }
        self.node_names.push(name.to_string());
        self.node_names.len() - 1
    }

    /// Name of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Look up a node id by name without creating it.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(GROUND);
        }
        self.node_names.iter().position(|n| n == name)
    }

    /// Number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage-source branch unknowns.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.n_branches
    }

    /// The element list in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Add a resistor.
    ///
    /// # Panics
    ///
    /// Panics on non-positive resistance.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) {
        assert!(ohms > 0.0, "resistor {name} must have positive resistance");
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Resistor { a, b, ohms },
        });
    }

    /// Add a capacitor.
    ///
    /// # Panics
    ///
    /// Panics on negative capacitance.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) {
        assert!(farads >= 0.0, "capacitor {name} must be non-negative");
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Capacitor { a, b, farads },
        });
    }

    /// Add an independent voltage source and return its branch index
    /// (usable with [`crate::TranResult::source_current`]).
    pub fn vsource(&mut self, name: &str, pos: NodeId, neg: NodeId, source: Source) -> usize {
        let branch = self.n_branches;
        self.n_branches += 1;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::VSource {
                pos,
                neg,
                source,
                branch,
            },
        });
        branch
    }

    /// Add a FinFET. The device's lumped terminal capacitances (`Cgs`,
    /// `Cgd`, `Cdb`) are added automatically as linear capacitors.
    pub fn finfet(&mut self, name: &str, d: NodeId, g: NodeId, s: NodeId, dev: FinFet) {
        let cgs = dev.cgs();
        let cgd = dev.cgd();
        let cdb = dev.cdb();
        self.capacitor(&format!("{name}.cgs"), g, s, cgs);
        self.capacitor(&format!("{name}.cgd"), g, d, cgd);
        self.capacitor(&format!("{name}.cdb"), d, GROUND, cdb);
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Fet { d, g, s, dev },
        });
    }

    /// Find the branch index of a named voltage source.
    #[must_use]
    pub fn source_branch(&self, name: &str) -> Option<usize> {
        self.elements.iter().find_map(|e| match &e.kind {
            ElementKind::VSource { branch, .. } if e.name == name => Some(*branch),
            _ => None,
        })
    }

    /// Total unknown count: non-ground nodes plus source branches.
    #[must_use]
    pub fn unknowns(&self) -> usize {
        (self.node_count() - 1) + self.n_branches
    }

    /// Human-readable name of MNA unknown `idx`: the node name for voltage
    /// unknowns, `I(<source>)` for branch-current unknowns. Used to label
    /// singular-matrix failures with the offending circuit quantity.
    #[must_use]
    pub fn unknown_name(&self, idx: usize) -> String {
        let nn = self.node_count() - 1;
        if idx < nn {
            return self.node_names[idx + 1].clone();
        }
        let branch = idx - nn;
        for e in &self.elements {
            if let ElementKind::VSource { branch: b, .. } = &e.kind {
                if *b == branch {
                    return format!("I({})", e.name);
                }
            }
        }
        format!("branch{branch}")
    }

    /// Largest `last_event` time across all sources (transient window hint).
    #[must_use]
    pub fn last_source_event(&self) -> f64 {
        self.elements
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::VSource { source, .. } => source.last_event(),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node("gnd"), GROUND);
        assert_eq!(c.node("0"), GROUND);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, GROUND, Source::dc(1.0));
        c.resistor("R1", a, GROUND, 100.0);
        assert_eq!(c.unknowns(), 2); // node a + branch current
        assert_eq!(c.source_branch("V1"), Some(0));
        assert_eq!(c.source_branch("V2"), None);
    }

    #[test]
    #[should_panic(expected = "positive resistance")]
    fn zero_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, GROUND, 0.0);
    }

    #[test]
    fn finfet_adds_parasitic_caps() {
        use cryo_device::{ModelCard, Polarity};
        let mut c = Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        let dev = FinFet::new(&ModelCard::nominal(Polarity::N), 300.0, 2);
        c.finfet("MN1", d, g, s, dev);
        let caps = c
            .elements()
            .iter()
            .filter(|e| matches!(e.kind, ElementKind::Capacitor { .. }))
            .count();
        assert_eq!(caps, 3);
    }
}
