//! Characterized library corners and their statistics.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cell::{ArcKind, Cell};
use crate::provenance::Provenance;
use crate::{LibertyError, Result};

/// A characterized library corner: a set of cells at one (temperature,
/// voltage) operating condition.
#[derive(Debug, Clone)]
pub struct Library {
    /// Library name, e.g. `cryo5_tt_0p70v_10k`.
    pub name: String,
    /// Characterization temperature, kelvin.
    pub temperature: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Where the tables came from: SPICE (the default) or a trained
    /// surrogate. Characterized corners omit the field on serialization,
    /// so pre-surrogate caches and golden snapshots stay byte-identical.
    pub provenance: Provenance,
    cells: Vec<Cell>,
    index: HashMap<String, usize>,
}

// Hand-written serde: the derive emitted `name, temperature, vdd, cells`
// (index skipped), and that exact field order and set must survive for
// Characterized corners — the disk cache and every golden snapshot hash
// those bytes. Predicted corners append a `provenance` object.
impl Serialize for Library {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("temperature".to_string(), self.temperature.to_value()),
            ("vdd".to_string(), self.vdd.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ];
        if self.provenance.is_predicted() {
            fields.push(("provenance".to_string(), self.provenance.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for Library {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let obj = serde::object_fields(v, "Library")?;
        fn field<T: Deserialize>(
            obj: &serde::Value,
            name: &str,
        ) -> std::result::Result<T, serde::Error> {
            Deserialize::from_value(obj.get(name))
                .map_err(|e| serde::Error::custom(format!("Library.{name}: {e}")))
        }
        Ok(Self {
            name: field(obj, "name")?,
            temperature: field(obj, "temperature")?,
            vdd: field(obj, "vdd")?,
            provenance: field(obj, "provenance")?,
            cells: field(obj, "cells")?,
            index: HashMap::new(),
        })
    }
}

impl Library {
    /// Create an empty library corner.
    #[must_use]
    pub fn new(name: &str, temperature: f64, vdd: f64) -> Self {
        Self {
            name: name.to_string(),
            temperature,
            vdd,
            provenance: Provenance::default(),
            cells: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Add a cell. Replaces any existing cell of the same name.
    pub fn add_cell(&mut self, cell: Cell) {
        if let Some(&i) = self.index.get(&cell.name) {
            self.cells[i] = cell;
        } else {
            self.index.insert(cell.name.clone(), self.cells.len());
            self.cells.push(cell);
        }
    }

    /// Cells in insertion order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library holds no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Look up a cell by name.
    ///
    /// # Errors
    ///
    /// [`LibertyError::UnknownCell`] when absent.
    pub fn cell(&self, name: &str) -> Result<&Cell> {
        self.index
            .get(name)
            .map(|&i| &self.cells[i])
            .or_else(|| self.cells.iter().find(|c| c.name == name))
            .ok_or_else(|| LibertyError::UnknownCell {
                name: name.to_string(),
            })
    }

    /// Rebuild the name index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }

    /// Every propagation delay stored in the library — one value per
    /// (cell, arc, edge, slew, load) combination. This is the population
    /// behind the paper's Fig. 5 histogram.
    #[must_use]
    pub fn all_delays(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for cell in &self.cells {
            for arc in &cell.arcs {
                if matches!(arc.kind, ArcKind::Setup | ArcKind::Hold) {
                    continue;
                }
                out.extend_from_slice(arc.cell_rise.values());
                out.extend_from_slice(arc.cell_fall.values());
            }
        }
        out
    }

    /// Histogram of all delays with the given bin width (seconds).
    #[must_use]
    pub fn delay_histogram(&self, bin_width: f64) -> DelayHistogram {
        let delays = self.all_delays();
        let max = delays.iter().copied().fold(0.0, f64::max);
        let n_bins = ((max / bin_width).ceil() as usize + 1).max(1);
        let mut counts = vec![0usize; n_bins];
        for d in &delays {
            let bin = ((d / bin_width) as usize).min(n_bins - 1);
            counts[bin] += 1;
        }
        DelayHistogram {
            bin_width,
            counts,
            total: delays.len(),
        }
    }

    /// Whether a cell's stored tables are unusable: present but empty,
    /// shape-inconsistent, or non-finite. Such cells can only arrive
    /// through deserialization (the `Lut2` constructor rejects them) or a
    /// truncated ingest, and counting them as "covered" would let a
    /// degenerate library sail through coverage enforcement. Arc-less
    /// cells (ties) are legitimately table-free and are not degenerate.
    fn cell_is_degenerate(cell: &Cell) -> bool {
        cell.arcs.iter().any(|arc| {
            [
                &arc.cell_rise,
                &arc.cell_fall,
                &arc.rise_transition,
                &arc.fall_transition,
            ]
            .into_iter()
            .any(|t| {
                t.values().is_empty()
                    || t.values().len() != t.index1().len() * t.index2().len()
                    || t.values().iter().any(|v| !v.is_finite())
            })
        })
    }

    /// The expected cells that are present but carry degenerate tables, in
    /// input order.
    #[must_use]
    pub fn degenerate_cells<S: AsRef<str>>(&self, expected: &[S]) -> Vec<String> {
        expected
            .iter()
            .map(AsRef::as_ref)
            .filter(|n| self.cell(n).is_ok_and(Self::cell_is_degenerate))
            .map(str::to_string)
            .collect()
    }

    /// Fraction of `expected` cell names this library actually contains
    /// with usable tables, in `[0, 1]`. Cells whose tables are present but
    /// empty/degenerate do not count. An empty expectation counts as full
    /// coverage.
    #[must_use]
    pub fn coverage<S: AsRef<str>>(&self, expected: &[S]) -> f64 {
        if expected.is_empty() {
            return 1.0;
        }
        let present = expected
            .iter()
            .filter(|n| {
                self.cell(n.as_ref())
                    .is_ok_and(|c| !Self::cell_is_degenerate(c))
            })
            .count();
        present as f64 / expected.len() as f64
    }

    /// The expected cell names this library is missing, in input order.
    #[must_use]
    pub fn missing_cells<S: AsRef<str>>(&self, expected: &[S]) -> Vec<String> {
        expected
            .iter()
            .map(AsRef::as_ref)
            .filter(|n| !self.index.contains_key(*n))
            .map(str::to_string)
            .collect()
    }

    /// Check that coverage of `expected` meets `floor` (a fraction in
    /// `[0, 1]`). Cells with degenerate tables count against coverage and
    /// are reported alongside the truly missing ones.
    ///
    /// # Errors
    ///
    /// [`LibertyError::IncompleteLibrary`] naming the missing and
    /// degenerate cells when coverage falls below the floor.
    pub fn validate_coverage<S: AsRef<str>>(&self, expected: &[S], floor: f64) -> Result<()> {
        let coverage = self.coverage(expected);
        if coverage < floor {
            let mut missing = self.missing_cells(expected);
            missing.extend(self.degenerate_cells(expected));
            return Err(LibertyError::IncompleteLibrary {
                name: self.name.clone(),
                coverage,
                floor,
                missing,
            });
        }
        Ok(())
    }

    /// Aggregate statistics for reporting.
    #[must_use]
    pub fn stats(&self) -> LibraryStats {
        let delays = self.all_delays();
        let n = delays.len().max(1) as f64;
        let mean = delays.iter().sum::<f64>() / n;
        let max = delays.iter().copied().fold(0.0, f64::max);
        let leakage: f64 = self.cells.iter().map(Cell::average_leakage).sum();
        LibraryStats {
            cell_count: self.cells.len(),
            arc_delay_count: delays.len(),
            mean_delay: mean,
            max_delay: max,
            total_avg_leakage: leakage,
        }
    }
}

/// Histogram of every delay value in a library (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayHistogram {
    /// Bin width in seconds.
    pub bin_width: f64,
    /// Count per bin, starting at delay 0.
    pub counts: Vec<usize>,
    /// Total number of samples.
    pub total: usize,
}

impl DelayHistogram {
    /// Fraction of samples shared with `other` (histogram intersection /
    /// total) — the "large overlap" metric for Fig. 5.
    #[must_use]
    pub fn overlap(&self, other: &DelayHistogram) -> f64 {
        assert!(
            (self.bin_width - other.bin_width).abs() < f64::EPSILON,
            "histograms must share a bin width"
        );
        let n = self.counts.len().max(other.counts.len());
        let mut inter = 0usize;
        for i in 0..n {
            let a = self.counts.get(i).copied().unwrap_or(0);
            let b = other.counts.get(i).copied().unwrap_or(0);
            inter += a.min(b);
        }
        inter as f64 / self.total.max(other.total).max(1) as f64
    }
}

/// Aggregate library statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryStats {
    /// Number of cells.
    pub cell_count: usize,
    /// Number of delay samples across all arcs and grid points.
    pub arc_delay_count: usize,
    /// Mean delay, seconds.
    pub mean_delay: f64,
    /// Maximum delay, seconds.
    pub max_delay: f64,
    /// Sum of average cell leakage, watts.
    pub total_avg_leakage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Pin, TimingArc, TimingSense};
    use crate::function::LogicFunction;
    use crate::table::Lut2;

    fn cell_with_delay(name: &str, delay: f64) -> Cell {
        let f = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        let d = Lut2::constant(delay);
        Cell {
            name: name.to_string(),
            area: 0.05,
            pins: vec![Pin::input("A", 0.4e-15), Pin::output("Y", f)],
            arcs: vec![TimingArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                kind: ArcKind::Combinational,
                sense: TimingSense::NegativeUnate,
                cell_rise: d.clone(),
                cell_fall: d.clone(),
                rise_transition: d.clone(),
                fall_transition: d,
            }],
            power_arcs: vec![],
            leakage_states: vec![(0, 2e-9)],
            ff: None,
            drive: 1,
        }
    }

    fn lib() -> Library {
        let mut l = Library::new("test_lib", 300.0, 0.7);
        l.add_cell(cell_with_delay("INVx1", 5e-12));
        l.add_cell(cell_with_delay("INVx2", 3e-12));
        l
    }

    #[test]
    fn lookup_and_replace() {
        let mut l = lib();
        assert!(l.cell("INVx1").is_ok());
        assert!(matches!(
            l.cell("NOPE"),
            Err(LibertyError::UnknownCell { .. })
        ));
        l.add_cell(cell_with_delay("INVx1", 9e-12));
        assert_eq!(l.len(), 2, "replacement does not duplicate");
        assert_eq!(
            l.cell("INVx1").unwrap().arcs[0].cell_rise.lookup(0.0, 0.0),
            9e-12
        );
    }

    #[test]
    fn delay_population() {
        let l = lib();
        let d = l.all_delays();
        assert_eq!(d.len(), 4); // 2 cells × (rise + fall) × 1 grid point
        let stats = l.stats();
        assert_eq!(stats.cell_count, 2);
        assert!((stats.mean_delay - 4e-12).abs() < 1e-24);
        assert!((stats.max_delay - 5e-12).abs() < 1e-24);
        assert!((stats.total_avg_leakage - 4e-9).abs() < 1e-18);
    }

    #[test]
    fn histogram_counts_everything() {
        let l = lib();
        let h = l.delay_histogram(1e-12);
        assert_eq!(h.total, 4);
        assert_eq!(h.counts.iter().sum::<usize>(), 4);
        assert_eq!(h.counts[3], 2); // the two 3 ps samples
        assert_eq!(h.counts[5], 2); // the two 5 ps samples
    }

    #[test]
    fn identical_histograms_fully_overlap() {
        let l = lib();
        let h = l.delay_histogram(1e-12);
        assert!((h.overlap(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_tracks_expected_cells() {
        let l = lib();
        let expected = ["INVx1", "INVx2", "NANDx1", "NORx1"];
        assert!((l.coverage(&expected) - 0.5).abs() < 1e-12);
        assert_eq!(l.missing_cells(&expected), vec!["NANDx1", "NORx1"]);
        assert!(l.validate_coverage(&expected, 0.5).is_ok());
        let err = l.validate_coverage(&expected, 0.95).unwrap_err();
        match err {
            LibertyError::IncompleteLibrary {
                coverage, missing, ..
            } => {
                assert!((coverage - 0.5).abs() < 1e-12);
                assert_eq!(missing.len(), 2);
            }
            other => panic!("wrong error: {other}"),
        }
        let none: [&str; 0] = [];
        assert!((l.coverage(&none) - 1.0).abs() < 1e-12, "vacuous coverage");
    }

    #[test]
    fn degenerate_tables_count_against_coverage() {
        let mut l = lib();
        // An empty table can only arrive through serde, which bypasses the
        // Lut2 constructor — exactly what a truncated ingest produces.
        let empty: Lut2 =
            serde_json::from_str(r#"{"index1":[],"index2":[],"values":[]}"#).unwrap();
        let mut hollow = cell_with_delay("NANDx1", 4e-12);
        hollow.arcs[0].cell_rise = empty;
        l.add_cell(hollow);
        let expected = ["INVx1", "INVx2", "NANDx1"];
        assert!(
            (l.coverage(&expected) - 2.0 / 3.0).abs() < 1e-12,
            "present-but-degenerate must not count as covered"
        );
        assert_eq!(l.degenerate_cells(&expected), vec!["NANDx1"]);
        // The plain presence check still sees it, so the degenerate cell is
        // reported through validate_coverage, not missing_cells.
        assert!(l.missing_cells(&expected).is_empty());
        match l.validate_coverage(&expected, 0.95).unwrap_err() {
            LibertyError::IncompleteLibrary { missing, .. } => {
                assert_eq!(missing, vec!["NANDx1"]);
            }
            other => panic!("wrong error: {other}"),
        }
        // Tie-style cells with no arcs are not degenerate.
        let mut tie = cell_with_delay("TIEHI", 1e-12);
        tie.arcs.clear();
        l.add_cell(tie);
        assert!((l.coverage(&["TIEHI"]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_reindexes() {
        let l = lib();
        let json = serde_json::to_string(&l).unwrap();
        let mut back: Library = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert!(back.cell("INVx2").is_ok());
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn characterized_provenance_is_invisible_in_serialization() {
        // Byte-identity contract: a SPICE-characterized corner must
        // serialize exactly as the pre-surrogate format did, so cache
        // files and golden snapshots survive the field's introduction.
        let l = lib();
        let json = serde_json::to_string(&l).unwrap();
        assert!(
            !json.contains("provenance"),
            "characterized corners must omit provenance: {json}"
        );
        let back: Library = serde_json::from_str(&json).unwrap();
        assert_eq!(back.provenance, Provenance::Characterized);
    }

    #[test]
    fn predicted_provenance_round_trips() {
        let mut l = lib();
        l.provenance = Provenance::Predicted {
            model_hash: "0123456789abcdef".into(),
            residual: crate::provenance::ResidualStats {
                n_train: 100,
                n_holdout: 25,
                mean_abs_rel_err: 0.02,
                max_abs_rel_err: 0.09,
            },
        };
        let json = serde_json::to_string(&l).unwrap();
        assert!(json.contains("model_hash"));
        let mut back: Library = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert_eq!(back.provenance, l.provenance);
        assert_eq!(back.len(), l.len());
    }
}
