//! Cross-crate property-based tests on the core invariants.

use proptest::prelude::*;

use cryo_soc::hdc::Hv128;
use cryo_soc::liberty::Lut2;
use cryo_soc::riscv::isa::{decode, encode, AluOp, BranchCond, Inst, MemWidth};

// ---------------------------------------------------------------------------
// The paper's radicand optimization (Sec. V-B): comparing squared distances
// is exactly equivalent to comparing distances.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn radicand_comparison_equals_sqrt_comparison(
        xm in -10.0f64..10.0, ym in -10.0f64..10.0,
        x0 in -10.0f64..10.0, y0 in -10.0f64..10.0,
        x1 in -10.0f64..10.0, y1 in -10.0f64..10.0,
    ) {
        let d0_sq = (xm - x0).powi(2) + (ym - y0).powi(2);
        let d1_sq = (xm - x1).powi(2) + (ym - y1).powi(2);
        let with_sqrt = d1_sq.sqrt() < d0_sq.sqrt();
        let radicand = d1_sq < d0_sq;
        prop_assert_eq!(with_sqrt, radicand);
    }
}

// ---------------------------------------------------------------------------
// The paper's equation (4): merging the class vector into the item vector
// leaves every Hamming distance unchanged.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn hdc_rewrite_is_exact(
        c_lo in any::<u64>(), c_hi in any::<u64>(),
        x_lo in any::<u64>(), x_hi in any::<u64>(),
        y_lo in any::<u64>(), y_hi in any::<u64>(),
    ) {
        let c = Hv128::new(c_lo, c_hi);
        let x = Hv128::new(x_lo, x_hi);
        let y = Hv128::new(y_lo, y_hi);
        // d = popcount(C ⊕ x ⊕ y) == popcount((C ⊕ x) ⊕ y)
        let direct = c.bind(x).bind(y).count_ones();
        let prebound = (c.bind(x)).bind(y).count_ones();
        let assoc = c.bind(x.bind(y)).count_ones();
        prop_assert_eq!(direct, prebound);
        prop_assert_eq!(direct, assoc);
    }

    #[test]
    fn hamming_triangle_inequality(
        a_lo in any::<u64>(), a_hi in any::<u64>(),
        b_lo in any::<u64>(), b_hi in any::<u64>(),
        c_lo in any::<u64>(), c_hi in any::<u64>(),
    ) {
        let a = Hv128::new(a_lo, a_hi);
        let b = Hv128::new(b_lo, b_hi);
        let c = Hv128::new(c_lo, c_hi);
        prop_assert!(a.hamming(c) <= a.hamming(b) + b.hamming(c));
        prop_assert_eq!(a.hamming(b), b.hamming(a));
        prop_assert_eq!(a.hamming(a), 0);
    }
}

// ---------------------------------------------------------------------------
// ISA encode/decode round trip over randomized instructions.
// ---------------------------------------------------------------------------

fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = 0u8..32;
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ];
    let width = prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D),
    ];
    let cond = prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ];
    prop_oneof![
        (reg.clone(), -2048i64..2048, reg.clone(), alu.clone()).prop_map(|(rd, imm, rs1, op)| {
            match op {
                AluOp::Sub | AluOp::Mul | AluOp::Div | AluOp::Rem => Inst::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    imm,
                },
                AluOp::Sll | AluOp::Srl | AluOp::Sra => Inst::OpImm {
                    op,
                    rd,
                    rs1,
                    imm: imm.rem_euclid(64),
                },
                _ => Inst::OpImm { op, rd, rs1, imm },
            }
        }),
        (reg.clone(), reg.clone(), reg.clone(), alu).prop_map(|(rd, rs1, rs2, op)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (cond, reg.clone(), reg.clone(), -2048i64..2048).prop_map(|(cond, rs1, rs2, off)| {
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset: (off / 2) * 2,
            }
        }),
        (width.clone(), reg.clone(), reg.clone(), -2048i64..2048).prop_map(
            |(width, rd, rs1, offset)| Inst::Load {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (width, reg.clone(), reg.clone(), -2048i64..2048).prop_map(|(width, rs2, rs1, offset)| {
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            }
        }),
        (reg.clone(), (-(1i64 << 19)..(1i64 << 19))).prop_map(|(rd, off)| Inst::Jal {
            rd,
            offset: (off / 2) * 2
        }),
        (reg, -(1i64 << 31) / 4096..(1i64 << 31) / 4096)
            .prop_map(|(rd, imm)| Inst::Lui { rd, imm: imm << 12 }),
    ]
}

proptest! {
    #[test]
    fn isa_encode_decode_round_trip(inst in arb_inst()) {
        let word = encode(&inst);
        let back = decode(word);
        prop_assert_eq!(Some(inst), back, "word {:#010x}", word);
    }
}

// ---------------------------------------------------------------------------
// NLDM interpolation: inside the grid, the result is bounded by the table's
// extremes; on grid points it is exact.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn lut_interpolation_is_bounded_inside_grid(
        values in prop::collection::vec(1e-12f64..1e-9, 9),
        fs in 0.0f64..1.0,
        fl in 0.0f64..1.0,
    ) {
        let slews = vec![1e-12, 10e-12, 100e-12];
        let loads = vec![1e-15, 10e-15, 100e-15];
        let lut = Lut2::new(slews.clone(), loads.clone(), values.clone()).unwrap();
        let s = slews[0] + fs * (slews[2] - slews[0]);
        let l = loads[0] + fl * (loads[2] - loads[0]);
        let v = lut.lookup(s, l);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-18 && v <= max + 1e-18, "v = {v}, range [{min}, {max}]");
    }

    #[test]
    fn lut_exact_on_grid_points(
        values in prop::collection::vec(1e-12f64..1e-9, 9),
        i in 0usize..3,
        j in 0usize..3,
    ) {
        let slews = vec![1e-12, 10e-12, 100e-12];
        let loads = vec![1e-15, 10e-15, 100e-15];
        let lut = Lut2::new(slews.clone(), loads.clone(), values.clone()).unwrap();
        let v = lut.lookup(slews[i], loads[j]);
        prop_assert!((v - values[i * 3 + j]).abs() < 1e-20);
    }
}

// ---------------------------------------------------------------------------
// Cache model vs. a brute-force LRU reference.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..4096, 1..200)) {
        use cryo_soc::riscv::cache::{Cache, CacheConfig};
        let cfg = CacheConfig { size: 8 * 64, ways: 2, line: 64, hit_latency: 0 };
        let mut cache = Cache::new(cfg);
        // Reference: per-set LRU lists.
        let sets = 4usize;
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for &addr in &addrs {
            let line = addr / 64;
            let set = (line as usize) % sets;
            let tag = line / sets as u64;
            let lru = &mut reference[set];
            let expected_hit = lru.contains(&tag);
            if expected_hit {
                lru.retain(|&t| t != tag);
            } else if lru.len() == 2 {
                lru.remove(0);
            }
            lru.push(tag);
            let (hit, _) = cache.access(addr, false);
            prop_assert_eq!(hit, expected_hit, "addr {:#x}", addr);
        }
    }
}

// ---------------------------------------------------------------------------
// Liberty writer/parser round trip on randomized tables.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn liberty_text_round_trips_random_tables(
        values in prop::collection::vec(1e-13f64..5e-10, 9),
        trans in prop::collection::vec(1e-13f64..2e-10, 9),
        cap in 1e-16f64..5e-15,
        leak in 1e-12f64..1e-7,
    ) {
        use cryo_soc::liberty::format::{parse_library, write_library};
        use cryo_soc::liberty::{
            ArcKind, Cell, Library, LogicFunction, Pin, TimingArc, TimingSense,
        };
        let slews = vec![1e-12, 10e-12, 100e-12];
        let loads = vec![1e-15, 5e-15, 20e-15];
        let table = Lut2::new(slews.clone(), loads.clone(), values.clone()).unwrap();
        let ttable = Lut2::new(slews, loads, trans).unwrap();
        let mut lib = Library::new("prop_lib", 300.0, 0.7);
        lib.add_cell(Cell {
            name: "INVx1".into(),
            area: 0.05,
            pins: vec![
                Pin::input("A", cap),
                Pin::output("Y", LogicFunction::from_eval(&["A"], |b| b & 1 == 0)),
            ],
            arcs: vec![TimingArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                kind: ArcKind::Combinational,
                sense: TimingSense::NegativeUnate,
                cell_rise: table.clone(),
                cell_fall: table.scaled(0.9),
                rise_transition: ttable.clone(),
                fall_transition: ttable,
            }],
            power_arcs: vec![],
            leakage_states: vec![(0, leak)],
            ff: None,
            drive: 1,
        });
        let back = parse_library(&write_library(&lib)).expect("round trip parses");
        let orig = &lib.cell("INVx1").unwrap().arcs[0];
        let rt = &back.cell("INVx1").unwrap().arcs[0];
        for (slew, load) in [(1e-12, 1e-15), (4e-12, 9e-15), (100e-12, 20e-15)] {
            let a = orig.cell_rise.lookup(slew, load);
            let b = rt.cell_rise.lookup(slew, load);
            // ps text precision: 1e-6 ps = 1e-18 s absolute.
            prop_assert!((a - b).abs() < 1e-6 * a.abs() + 1e-18, "{a:e} vs {b:e}");
        }
        let pin_cap = back.cell("INVx1").unwrap().pin("A").unwrap().capacitance;
        prop_assert!((pin_cap - cap).abs() < 1e-6 * cap + 1e-21);
    }
}
