//! Physical-invariant audits over NLDM libraries.
//!
//! The signoff firewall's library layer: every invariant a trustworthy
//! corner must satisfy — finite tables, positive delays and slews, delay
//! monotone non-decreasing in load, fully populated characterization
//! grids, and the cross-corner rule that a cell's 10 K delay stays within
//! a configurable band of its 300 K delay. Violations become structured
//! [`Finding`]s that name the exact entity (cell, arc, table, row,
//! column), the invariant, and the observed value against its bound —
//! the difference between "the run completed" and "the numbers can be
//! trusted".
//!
//! The types here are shared across the stack: `cryo-cells`, `cryo-sta`,
//! `cryo-power`, and `cryo-core` all report through [`AuditReport`], so
//! one machine-readable artifact covers the whole pipeline.

use serde::{Deserialize, Serialize};

use crate::cell::{ArcKind, Cell, TimingArc};
use crate::library::Library;
use crate::table::Lut2;

/// One invariant violation, attributed to the smallest entity that owns it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Pipeline stage whose audit produced the finding (`charlib300`,
    /// `sta10`, ...).
    pub stage: String,
    /// Offending entity, most-specific-first path:
    /// `<cell>`, `<cell>/<related>-><pin>/<table>`, or
    /// `<cell>/<related>-><pin>/<table>[<row>,<col>]`.
    pub entity: String,
    /// Invariant that failed (`finite`, `delay_positive`,
    /// `delay_monotone_load`, `grid_populated`, `cross_corner_band`, ...).
    pub invariant: String,
    /// Observed value, rendered as text so NaN/∞ survive JSON.
    pub observed: String,
    /// The bound the observation violated.
    pub bound: String,
}

impl Finding {
    /// Build a finding; `observed` is rendered with enough precision to
    /// reproduce the violation.
    #[must_use]
    pub fn new(stage: &str, entity: String, invariant: &str, observed: f64, bound: String) -> Self {
        Self {
            stage: stage.to_string(),
            entity,
            invariant: invariant.to_string(),
            observed: format!("{observed:e}"),
            bound,
        }
    }

    /// The cell that owns the entity (leading path component).
    #[must_use]
    pub fn cell(&self) -> &str {
        self.entity.split('/').next().unwrap_or(&self.entity)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} violated (observed {}, bound {})",
            self.stage, self.entity, self.invariant, self.observed, self.bound
        )
    }
}

/// Machine-readable audit outcome, embedded in `CharReport`/`TimingReport`
/// and the supervised pipeline report so CI and golden tests can assert
/// "zero findings" on clean runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Open violations (post-repair for gated runs).
    pub findings: Vec<Finding>,
    /// Cells whose violations were repaired by targeted
    /// re-characterization (Gate mode).
    pub repaired: Vec<String>,
}

impl AuditReport {
    /// True when the report carries no findings and no repairs — the state
    /// a clean run must serialize as (the field is omitted entirely, so
    /// clean artifacts stay byte-identical to the pre-audit pipeline).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.repaired.is_empty()
    }

    /// Append a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.findings.extend(other.findings);
        self.repaired.extend(other.repaired);
    }

    /// Distinct offending cells in first-seen order — the quarantine set
    /// for targeted re-characterization.
    #[must_use]
    pub fn offending_cells(&self) -> Vec<String> {
        let mut cells: Vec<String> = Vec::new();
        for f in &self.findings {
            let c = f.cell().to_string();
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        cells
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} finding(s), {} cell(s) repaired",
            self.findings.len(),
            self.repaired.len()
        )
    }
}

/// Tunable bounds for the library audits.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Relative slack tolerated before a delay decrease across adjacent
    /// loads counts as non-monotone (characterized tables carry measurement
    /// noise; a signoff tool must not cry wolf over half a femtosecond).
    pub monotone_rel_tol: f64,
    /// Expected `(slew_points, load_points)` grid for propagation arcs;
    /// `None` skips the shape check (used for hand-built test libraries).
    pub expected_grid: Option<(usize, usize)>,
    /// Allowed band for `mean_delay(10 K) / mean_delay(300 K)` per cell.
    pub cross_corner_band: (f64, f64),
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            monotone_rel_tol: 0.02,
            expected_grid: None,
            cross_corner_band: (0.5, 2.0),
        }
    }
}

/// What a table's values are allowed to look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableRole {
    /// Propagation delay: finite, positive, monotone in load.
    Delay,
    /// Output transition: finite, positive.
    Transition,
    /// Setup/hold margin: finite (legitimately negative sometimes).
    Constraint,
    /// Switching energy: finite.
    Energy,
}

fn entity_for(cell: &str, arc: &TimingArc, table: &str) -> String {
    format!("{cell}/{}->{}/{table}", arc.related_pin, arc.pin)
}

/// Audit one table under `role`, appending findings to `out`.
fn audit_table(
    stage: &str,
    entity: &str,
    t: &Lut2,
    role: TableRole,
    cfg: &AuditConfig,
    expect_grid: bool,
    out: &mut AuditReport,
) {
    let (n1, n2) = (t.index1().len(), t.index2().len());
    // Degenerate shapes can only arrive through serde (the constructor
    // rejects them) — exactly the silent-corruption path the audit exists
    // to catch.
    if t.values().is_empty() || t.values().len() != n1 * n2 || n1 == 0 || n2 == 0 {
        out.push(Finding::new(
            stage,
            entity.to_string(),
            "grid_populated",
            t.values().len() as f64,
            format!("{n1}x{n2} values"),
        ));
        return;
    }
    if expect_grid {
        if let Some((es, el)) = cfg.expected_grid {
            if (n1, n2) != (es, el) {
                out.push(Finding::new(
                    stage,
                    entity.to_string(),
                    "grid_populated",
                    (n1 * n2) as f64,
                    format!("{es}x{el} grid"),
                ));
            }
        }
    }
    for r in 0..n1 {
        for c in 0..n2 {
            let v = t.values()[r * n2 + c];
            if !v.is_finite() {
                out.push(Finding::new(
                    stage,
                    format!("{entity}[{r},{c}]"),
                    "finite",
                    v,
                    "finite".to_string(),
                ));
                continue;
            }
            match role {
                TableRole::Delay if v <= 0.0 => out.push(Finding::new(
                    stage,
                    format!("{entity}[{r},{c}]"),
                    "delay_positive",
                    v,
                    "> 0".to_string(),
                )),
                TableRole::Transition if v <= 0.0 => out.push(Finding::new(
                    stage,
                    format!("{entity}[{r},{c}]"),
                    "slew_positive",
                    v,
                    "> 0".to_string(),
                )),
                _ => {}
            }
        }
    }
    // Delay monotone non-decreasing in load: more capacitance can never
    // make a gate faster. The offending entry is the one that *dropped*
    // (right element of the violating pair).
    if role == TableRole::Delay && n2 > 1 {
        for r in 0..n1 {
            for c in 1..n2 {
                let prev = t.values()[r * n2 + c - 1];
                let v = t.values()[r * n2 + c];
                if !(prev.is_finite() && v.is_finite()) {
                    continue;
                }
                if v < prev * (1.0 - cfg.monotone_rel_tol) {
                    out.push(Finding::new(
                        stage,
                        format!("{entity}[{r},{c}]"),
                        "delay_monotone_load",
                        v,
                        format!(">= {:e} (load-monotone)", prev * (1.0 - cfg.monotone_rel_tol)),
                    ));
                }
            }
        }
    }
}

/// Audit every table of one cell.
#[must_use]
pub fn audit_cell(stage: &str, cell: &Cell, cfg: &AuditConfig) -> AuditReport {
    let mut out = AuditReport::default();
    for arc in &cell.arcs {
        let (delay_role, expect_grid) = match arc.kind {
            ArcKind::Combinational | ArcKind::ClockToQ => (TableRole::Delay, true),
            ArcKind::Setup | ArcKind::Hold => (TableRole::Constraint, false),
        };
        for (name, t, role) in [
            ("cell_rise", &arc.cell_rise, delay_role),
            ("cell_fall", &arc.cell_fall, delay_role),
            ("rise_transition", &arc.rise_transition, TableRole::Transition),
            ("fall_transition", &arc.fall_transition, TableRole::Transition),
        ] {
            // Constraint arcs leave their transition tables unused; only
            // finiteness matters there.
            let role = if delay_role == TableRole::Constraint {
                TableRole::Constraint
            } else {
                role
            };
            audit_table(
                stage,
                &entity_for(&cell.name, arc, name),
                t,
                role,
                cfg,
                expect_grid && role == TableRole::Delay,
                &mut out,
            );
        }
    }
    for pa in &cell.power_arcs {
        for (name, t) in [("rise_energy", &pa.rise_energy), ("fall_energy", &pa.fall_energy)] {
            let entity = format!("{}/{}->{}/{name}", cell.name, pa.related_pin, pa.pin);
            audit_table(stage, &entity, t, TableRole::Energy, cfg, false, &mut out);
        }
    }
    for (state, w) in &cell.leakage_states {
        if !w.is_finite() || *w < 0.0 {
            out.push(Finding::new(
                stage,
                format!("{}/leakage[{state}]", cell.name),
                "leakage_nonneg",
                *w,
                ">= 0, finite".to_string(),
            ));
        }
    }
    out
}

/// Audit every cell of a library.
#[must_use]
pub fn audit_library(stage: &str, lib: &Library, cfg: &AuditConfig) -> AuditReport {
    let mut out = AuditReport::default();
    for cell in lib.cells() {
        out.merge(audit_cell(stage, cell, cfg));
    }
    out
}

/// Mean propagation delay of a cell (across all combinational/clk→Q arc
/// tables), or `None` for arc-less cells (ties).
#[must_use]
pub fn mean_cell_delay(cell: &Cell) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for arc in &cell.arcs {
        if !matches!(arc.kind, ArcKind::Combinational | ArcKind::ClockToQ) {
            continue;
        }
        for t in [&arc.cell_rise, &arc.cell_fall] {
            if !t.values().is_empty() {
                sum += t.mean();
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Cross-corner audit: each cell's cold/warm mean-delay ratio must sit in
/// `cfg.cross_corner_band`. A 10 K library dramatically slower (or faster)
/// than its 300 K sibling is corrupt even if each corner looks
/// self-consistent — this is the paper's trustworthy-delta requirement.
#[must_use]
pub fn audit_cross_corner(
    stage: &str,
    warm: &Library,
    cold: &Library,
    cfg: &AuditConfig,
) -> AuditReport {
    let mut out = AuditReport::default();
    let (lo, hi) = cfg.cross_corner_band;
    for cell in cold.cells() {
        let Ok(warm_cell) = warm.cell(&cell.name) else {
            continue;
        };
        let (Some(d_cold), Some(d_warm)) = (mean_cell_delay(cell), mean_cell_delay(warm_cell))
        else {
            continue;
        };
        if d_warm <= 0.0 {
            continue; // warm corner is broken; its own audit reports that
        }
        let ratio = d_cold / d_warm;
        if !ratio.is_finite() || ratio < lo || ratio > hi {
            out.push(Finding::new(
                stage,
                cell.name.clone(),
                "cross_corner_band",
                ratio,
                format!("[{lo}, {hi}] x 300 K delay"),
            ));
        }
    }
    out
}

/// Pick the anchor nearest to `lib` in log-temperature distance (delay
/// physics scale multiplicatively with temperature, so 4 K vs 10 K is a
/// bigger step than 250 K vs 300 K even though the kelvin gap says
/// otherwise). Anchors at a different supply voltage are only considered
/// when no same-VDD anchor exists — a VDD step moves delays far more than
/// any temperature step in the calibrated range. Returns `None` for an
/// empty anchor list; ties break toward the warmer anchor.
#[must_use]
pub fn nearest_anchor<'a>(lib: &Library, anchors: &[&'a Library]) -> Option<&'a Library> {
    let same_vdd: Vec<&&Library> = anchors
        .iter()
        .filter(|a| (a.vdd - lib.vdd).abs() < 5e-4)
        .collect();
    let pool: Vec<&&Library> = if same_vdd.is_empty() {
        anchors.iter().collect()
    } else {
        same_vdd
    };
    let dist = |a: &Library| {
        if a.temperature > 0.0 && lib.temperature > 0.0 {
            (a.temperature / lib.temperature).ln().abs()
        } else {
            f64::INFINITY
        }
    };
    pool.into_iter()
        .min_by(|a, b| {
            dist(a)
                .partial_cmp(&dist(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.temperature
                        .partial_cmp(&a.temperature)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
        .copied()
}

/// [`audit_cross_corner`] generalized from the historical hardcoded
/// 300 K-vs-10 K pair to an arbitrary corner list: `lib` is compared
/// against its [`nearest_anchor`] among `anchors`. An empty anchor list
/// audits clean — the first corner of a farm has nothing to compare
/// against, which is exactly why farms SPICE-anchor it.
#[must_use]
pub fn audit_cross_corner_nearest(
    stage: &str,
    lib: &Library,
    anchors: &[&Library],
    cfg: &AuditConfig,
) -> AuditReport {
    match nearest_anchor(lib, anchors) {
        Some(anchor) => audit_cross_corner(stage, anchor, lib, cfg),
        None => AuditReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Pin, TimingSense};
    use crate::function::LogicFunction;

    fn grid_table(base: f64) -> Lut2 {
        // Strictly increasing in both axes: base + slew + load terms.
        let s = [1e-12, 2e-12, 3e-12];
        let l = [1e-15, 2e-15, 3e-15];
        let mut vals = Vec::new();
        for si in s {
            for li in l {
                vals.push(base + 2.0 * si + 3e3 * li);
            }
        }
        Lut2::new(s.to_vec(), l.to_vec(), vals).unwrap()
    }

    fn cell_with(rise: Lut2) -> Cell {
        let f = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        Cell {
            name: "INVx1".into(),
            area: 0.05,
            pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
            arcs: vec![TimingArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                kind: ArcKind::Combinational,
                sense: TimingSense::NegativeUnate,
                cell_rise: rise,
                cell_fall: grid_table(1e-12),
                rise_transition: grid_table(0.5e-12),
                fall_transition: grid_table(0.5e-12),
            }],
            power_arcs: vec![],
            leakage_states: vec![(0, 1e-9)],
            ff: None,
            drive: 1,
        }
    }

    #[test]
    fn clean_cell_has_no_findings() {
        let rep = audit_cell("t", &cell_with(grid_table(1e-12)), &AuditConfig::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn sign_flip_is_flagged_with_exact_coordinates() {
        let t = grid_table(1e-12);
        let mut vals = t.values().to_vec();
        vals[4] = -vals[4]; // row 1, col 1
        let bad = Lut2::new(t.index1().to_vec(), t.index2().to_vec(), vals).unwrap();
        let rep = audit_cell("t", &cell_with(bad), &AuditConfig::default());
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "delay_positive" && f.entity.ends_with("cell_rise[1,1]")));
        assert_eq!(rep.offending_cells(), vec!["INVx1".to_string()]);
    }

    #[test]
    fn monotone_drop_names_the_dropped_entry() {
        let t = grid_table(1e-12);
        let mut vals = t.values().to_vec();
        vals[5] = vals[3] * 0.5; // row 1, col 2 drops below col 1
        let bad = Lut2::new(t.index1().to_vec(), t.index2().to_vec(), vals).unwrap();
        let rep = audit_cell("t", &cell_with(bad), &AuditConfig::default());
        let mono: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.invariant == "delay_monotone_load")
            .collect();
        assert_eq!(mono.len(), 1);
        assert!(mono[0].entity.ends_with("cell_rise[1,2]"), "{}", mono[0].entity);
    }

    #[test]
    fn degenerate_deserialized_table_is_flagged() {
        // serde bypasses Lut2::new — an empty table can only arrive that way.
        let empty: Lut2 =
            serde_json::from_str(r#"{"index1":[],"index2":[],"values":[]}"#).unwrap();
        let rep = audit_cell("t", &cell_with(empty), &AuditConfig::default());
        assert!(rep.findings.iter().any(|f| f.invariant == "grid_populated"));
    }

    #[test]
    fn cross_corner_band_catches_a_slow_cold_cell() {
        let mut warm = Library::new("w", 300.0, 0.7);
        let mut cold = Library::new("c", 10.0, 0.7);
        warm.add_cell(cell_with(grid_table(1e-12)));
        let mut slow = cell_with(grid_table(1e-12));
        for arc in &mut slow.arcs {
            arc.cell_rise = arc.cell_rise.scaled(3.0);
            arc.cell_fall = arc.cell_fall.scaled(3.0);
        }
        cold.add_cell(slow);
        let rep = audit_cross_corner("x", &warm, &cold, &AuditConfig::default());
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].invariant, "cross_corner_band");
        assert_eq!(rep.findings[0].cell(), "INVx1");
    }

    #[test]
    fn nearest_anchor_prefers_log_distance_and_same_vdd() {
        let l300 = Library::new("w300", 300.0, 0.7);
        let l77 = Library::new("w77", 77.0, 0.7);
        let l300_lo = Library::new("w300lo", 300.0, 0.65);
        let mut cold = Library::new("c", 10.0, 0.7);
        cold.add_cell(cell_with(grid_table(1e-12)));
        // 10 K is nearer 77 K than 300 K in log distance.
        let got = nearest_anchor(&cold, &[&l300, &l77]).unwrap();
        assert_eq!(got.name, "w77");
        // Linear distance would pick 77 K for a 200 K library too; log
        // distance correctly picks 300 K (ratio 1.5 vs 2.6).
        let warmish = Library::new("m", 200.0, 0.7);
        assert_eq!(nearest_anchor(&warmish, &[&l300, &l77]).unwrap().name, "w300");
        // A same-VDD anchor beats a nearer-in-T anchor at another VDD.
        let mid = Library::new("m2", 250.0, 0.7);
        assert_eq!(
            nearest_anchor(&mid, &[&l300_lo, &l77]).unwrap().name,
            "w77"
        );
        assert!(nearest_anchor(&cold, &[]).is_none());
    }

    #[test]
    fn nearest_anchor_audit_generalizes_the_pair() {
        let mut w300 = Library::new("w300", 300.0, 0.7);
        w300.add_cell(cell_with(grid_table(1e-12)));
        let mut w77 = Library::new("w77", 77.0, 0.7);
        let mut fast77 = cell_with(grid_table(1e-12));
        for arc in &mut fast77.arcs {
            arc.cell_rise = arc.cell_rise.scaled(0.9);
            arc.cell_fall = arc.cell_fall.scaled(0.9);
        }
        w77.add_cell(fast77);
        // A 10 K corner 3x slower than its nearest (77 K) anchor is caught
        // even though the 300 K comparison alone would also pass 0.9*3 = 2.7
        // — the point is the anchor choice, not the band.
        let mut cold = Library::new("c", 10.0, 0.7);
        let mut slow = cell_with(grid_table(1e-12));
        for arc in &mut slow.arcs {
            arc.cell_rise = arc.cell_rise.scaled(2.7);
            arc.cell_fall = arc.cell_fall.scaled(2.7);
        }
        cold.add_cell(slow);
        let rep =
            audit_cross_corner_nearest("x", &cold, &[&w300, &w77], &AuditConfig::default());
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].invariant, "cross_corner_band");
        // With no anchors the audit is clean by definition.
        assert!(audit_cross_corner_nearest("x", &cold, &[], &AuditConfig::default()).is_clean());
    }

    #[test]
    fn report_serde_round_trips_with_nan_observations() {
        let mut rep = AuditReport::default();
        rep.push(Finding::new("s", "C/x->y/t[0,0]".into(), "finite", f64::NAN, "finite".into()));
        let json = serde_json::to_string(&rep).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
        assert!(!back.is_clean());
        assert_eq!(back.findings[0].cell(), "C");
    }
}
