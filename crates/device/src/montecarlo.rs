//! Process-variation Monte-Carlo on the compact model.
//!
//! Sec. III of the paper singles out transistor mismatch as a first-order
//! challenge for cryogenic design: geometric scaling raises the mismatch
//! between identical devices, and the threshold-voltage shift at cryogenic
//! temperature compounds it. This module samples process-perturbed model
//! cards (the same perturbation model the virtual wafer uses for its hidden
//! die) and reports the statistical spread of the figures of merit at any
//! temperature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::IvCurve;
use crate::model::FinFet;
use crate::params::ModelCard;

/// Relative 3-sigma process spreads applied per sampled die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Work-function / threshold spread (relative on `VTH0`).
    pub sigma_vth0: f64,
    /// Mobility spread (relative on `U0`).
    pub sigma_u0: f64,
    /// Series-resistance spread (relative on `RSW`/`RDW`).
    pub sigma_rsw: f64,
    /// Band-tail spread (relative on `T0`) — cryogenic-specific variation.
    pub sigma_t0: f64,
    /// Cryo threshold-shift spread (relative on `TVTH`).
    pub sigma_tvth: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        Self {
            sigma_vth0: 0.02,
            sigma_u0: 0.03,
            sigma_rsw: 0.05,
            sigma_t0: 0.04,
            sigma_tvth: 0.03,
        }
    }
}

/// Statistics of a sampled figure of merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sigma: f64,
    /// Sample count.
    pub n: usize,
}

impl Spread {
    /// Relative spread `sigma / mean`.
    #[must_use]
    pub fn relative(&self) -> f64 {
        if self.mean.abs() > 0.0 {
            self.sigma / self.mean.abs()
        } else {
            0.0
        }
    }
}

fn stats(samples: &[f64]) -> Spread {
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
    Spread {
        mean,
        sigma: var.sqrt(),
        n,
    }
}

/// Sample one process-perturbed die from `nominal`.
#[must_use]
pub fn sample_die(nominal: &ModelCard, variation: &VariationModel, rng: &mut StdRng) -> ModelCard {
    let mut card = nominal.clone();
    let mut gauss = |sigma: f64| -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        1.0 + sigma / 3.0 * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    card.vth0 *= gauss(variation.sigma_vth0);
    card.u0 *= gauss(variation.sigma_u0);
    let r = gauss(variation.sigma_rsw);
    card.rsw *= r;
    card.rdw *= r;
    card.t0 *= gauss(variation.sigma_t0);
    card.tvth *= gauss(variation.sigma_tvth);
    card
}

/// Deterministic process-corner card: the die sitting `sign` relative
/// 3-sigma units from nominal on every speed-relevant parameter, with the
/// signs arranged so `sign = +1` is the slow (ss) corner — higher
/// threshold, lower mobility, higher series resistance, larger cryogenic
/// Vth shift — and `sign = -1` the fast (ff) corner. `sign = 0` returns
/// the nominal (tt) card unchanged, bit for bit. The band-tail parameter
/// `t0` is left nominal: its effect on speed is not monotone, so it has
/// no meaningful "slow" direction.
///
/// This is the corner-farm counterpart of [`sample_die`]: the same spread
/// model, evaluated at its deterministic extremes instead of sampled.
#[must_use]
pub fn corner_die(nominal: &ModelCard, variation: &VariationModel, sign: f64) -> ModelCard {
    let mut card = nominal.clone();
    if sign == 0.0 {
        return card;
    }
    card.vth0 *= 1.0 + sign * variation.sigma_vth0;
    card.u0 *= 1.0 - sign * variation.sigma_u0;
    card.rsw *= 1.0 + sign * variation.sigma_rsw;
    card.rdw *= 1.0 + sign * variation.sigma_rsw;
    card.tvth *= 1.0 + sign * variation.sigma_tvth;
    card
}

/// Monte-Carlo result at one temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchResult {
    /// Temperature, kelvin.
    pub temp: f64,
    /// Constant-current threshold voltage spread, volts.
    pub vth: Spread,
    /// On-current spread, amperes.
    pub ion: Spread,
}

/// Run an `n`-die Monte-Carlo at `temp`, extracting constant-current Vth
/// (1 µA criterion, linear region) and Ion.
#[must_use]
pub fn mismatch_run(
    nominal: &ModelCard,
    variation: &VariationModel,
    temp: f64,
    n: usize,
    seed: u64,
) -> MismatchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vths = Vec::with_capacity(n);
    let mut ions = Vec::with_capacity(n);
    for _ in 0..n {
        let die = sample_die(nominal, variation, &mut rng);
        let dev = FinFet::new(&die, temp, 1);
        let curve = IvCurve::sweep(&dev, 0.05, 0.75, 160);
        if let Some(vth) = curve.vgs_at_current(1e-6) {
            vths.push(vth);
        }
        let s = die.polarity.sign();
        ions.push(dev.ids(s * 0.7, s * 0.7).abs());
    }
    MismatchResult {
        temp,
        vth: stats(&vths),
        ion: stats(&ions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let nominal = ModelCard::nominal(Polarity::N);
        let var = VariationModel::default();
        let a = mismatch_run(&nominal, &var, 300.0, 40, 5);
        let b = mismatch_run(&nominal, &var, 300.0, 40, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn spread_is_nonzero_and_mean_is_near_nominal() {
        let nominal = ModelCard::nominal(Polarity::N);
        let var = VariationModel::default();
        let r = mismatch_run(&nominal, &var, 300.0, 120, 1);
        assert!(r.vth.sigma > 0.0);
        assert!(
            (r.vth.mean - 0.214).abs() < 0.02,
            "mean Vth_cc near nominal: {}",
            r.vth.mean
        );
        assert!(r.ion.relative() < 0.2);
    }

    #[test]
    fn absolute_vth_mismatch_grows_at_cryo() {
        // The paper's Sec. III: mismatch and the Vth increase compound at
        // cryogenic temperature (TVTH variation adds to VTH0 variation).
        let nominal = ModelCard::nominal(Polarity::N);
        let var = VariationModel::default();
        let r300 = mismatch_run(&nominal, &var, 300.0, 150, 9);
        let r10 = mismatch_run(&nominal, &var, 10.0, 150, 9);
        assert!(
            r10.vth.sigma > r300.vth.sigma,
            "sigma(Vth): {:.2} mV @300K vs {:.2} mV @10K",
            r300.vth.sigma * 1e3,
            r10.vth.sigma * 1e3
        );
        assert!(r10.vth.mean > r300.vth.mean, "Vth itself rises");
    }

    #[test]
    fn process_corners_order_the_on_current() {
        let nominal = ModelCard::nominal(Polarity::N);
        let var = VariationModel::default();
        let ss = corner_die(&nominal, &var, 1.0);
        let tt = corner_die(&nominal, &var, 0.0);
        let ff = corner_die(&nominal, &var, -1.0);
        assert_eq!(tt, nominal, "tt is the nominal card, bit for bit");
        let ion = |card: &ModelCard| {
            let dev = FinFet::new(card, 300.0, 1);
            let s = card.polarity.sign();
            dev.ids(s * 0.7, s * 0.7).abs()
        };
        assert!(
            ion(&ss) < ion(&tt) && ion(&tt) < ion(&ff),
            "ss slower than tt slower than ff: {:.3e} / {:.3e} / {:.3e}",
            ion(&ss),
            ion(&tt),
            ion(&ff)
        );
        assert!(ss.vth0 > tt.vth0 && ff.vth0 < tt.vth0);
        assert!(ss.tvth > tt.tvth, "slow silicon shifts harder when cooled");
        assert_eq!(ss, corner_die(&nominal, &var, 1.0), "deterministic");
    }

    #[test]
    fn corner_cards_stay_inside_calibrated_audit_bounds() {
        // The farm characterizes ss/ff cards through the same audit
        // firewall as tt; a ±3-sigma corner must not trip it.
        let var = VariationModel::default();
        for sign in [1.0, -1.0] {
            let n = corner_die(&ModelCard::nominal(Polarity::N), &var, sign);
            let p = corner_die(&ModelCard::nominal(Polarity::P), &var, sign);
            let findings = crate::audit::audit_cards(&n, &p);
            assert!(findings.is_empty(), "sign {sign}: {findings:?}");
        }
    }

    #[test]
    fn zero_variation_collapses_the_spread() {
        let nominal = ModelCard::nominal(Polarity::N);
        let var = VariationModel {
            sigma_vth0: 0.0,
            sigma_u0: 0.0,
            sigma_rsw: 0.0,
            sigma_t0: 0.0,
            sigma_tvth: 0.0,
        };
        let r = mismatch_run(&nominal, &var, 300.0, 30, 3);
        assert!(r.vth.sigma < 1e-6);
        assert!(r.ion.sigma < 1e-12);
    }
}
