//! End-to-end signoff on a scaled-down SoC: characterize exactly the cells
//! the netlist uses, run STA and power at 300 K and 10 K, and assert the
//! paper's qualitative results hold on the miniature.

use std::collections::BTreeSet;

use cryo_soc::cells::{topology, CharConfig, Characterizer};
use cryo_soc::device::{ModelCard, Polarity};
use cryo_soc::liberty::Library;
use cryo_soc::netlist::{build_soc, SocConfig};
use cryo_soc::power::{analyze_power, simulate_toggles, ActivityProfile, PowerConfig};
use cryo_soc::sta::{analyze, StaConfig};

/// Characterize only the cells `design` instantiates (keeps the test fast).
fn library_for_design(design: &cryo_soc::netlist::Design, temp: f64) -> Library {
    let used: BTreeSet<&str> = design.instances().iter().map(|i| i.cell.as_str()).collect();
    let cells: Vec<_> = used
        .iter()
        .map(|name| topology::by_name(name).unwrap_or_else(|| panic!("unknown cell {name}")))
        .collect();
    let engine = Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        CharConfig::fast(temp),
    );
    engine
        .characterize_library(&format!("soc_mini_{temp}"), &cells)
        .expect("characterization")
}

#[test]
fn tiny_soc_signs_off_at_both_corners() {
    let design = build_soc(&SocConfig::tiny());
    let lib300 = library_for_design(&design, 300.0);
    let lib10 = library_for_design(&design, 10.0);
    design.check(&lib300).expect("clean netlist");

    // --- Timing: valid at both corners, 10 K within ~15 % of 300 K. ------
    let mean300 = lib300.stats().mean_delay;
    let sta = |lib: &Library| {
        let cfg = StaConfig {
            macro_delay_scale: lib.stats().mean_delay / mean300,
            ..StaConfig::default()
        };
        analyze(&design, lib, &cfg).expect("sta")
    };
    let t300 = sta(&lib300);
    let t10 = sta(&lib10);
    assert!(t300.critical_path_delay > 50e-12, "path is nontrivial");
    assert!(t300.critical_path_delay < 5e-9, "path is sane");
    let ratio = t10.critical_path_delay / t300.critical_path_delay;
    assert!(
        (0.85..1.20).contains(&ratio),
        "paper: timing 'impacted only marginally'; ratio = {ratio:.3}"
    );
    assert!(t300.critical_path.len() > 5, "path has real depth");
    assert!(t10.worst_hold_slack > 0.0, "paper: hold times not impacted");

    // --- Power: leakage collapse makes 10 K feasible. --------------------
    let profile = ActivityProfile::with_default(0.15);
    let power = |lib: &Library, f: f64| {
        let cfg = PowerConfig::at(&ModelCard::nominal(Polarity::N), lib.temperature, f);
        analyze_power(&design, lib, &cfg, &profile, None).expect("power")
    };
    let p300 = power(&lib300, t300.fmax());
    let p10 = power(&lib10, t10.fmax());
    assert!(
        p300.sram_leakage_w > 0.1,
        "581 KB of ultra-low-Vth SRAM leaks heavily at 300 K: {:.3} W",
        p300.sram_leakage_w
    );
    assert!(
        p10.sram_leakage_w < 1e-3,
        "SRAM leakage collapses at 10 K: {:.3e} W",
        p10.sram_leakage_w
    );
    let leak300 = p300.logic_leakage_w + p300.sram_leakage_w;
    let leak10 = p10.logic_leakage_w + p10.sram_leakage_w;
    assert!(
        leak10 / leak300 < 0.01,
        "paper: 99.76 % leakage reduction; got {:.4}",
        1.0 - leak10 / leak300
    );
    // Dynamic power stays the same order of magnitude across corners.
    let dyn_ratio = p10.dynamic_w / p300.dynamic_w;
    assert!(
        (0.5..1.5).contains(&dyn_ratio),
        "dynamic ratio {dyn_ratio:.3}"
    );
}


#[test]
fn measured_toggles_agree_with_profile_order_of_magnitude() {
    // The paper extracts real switching activity from gate-level
    // simulation; our region profiles must land in the same regime as the
    // measured-toggle path on a design where both are tractable.
    let design = build_soc(&SocConfig::tiny());
    let lib = library_for_design(&design, 300.0);
    // Pseudo-random primary-input vectors (rstn held high).
    let n_pi = design.primary_inputs.len();
    let mut seed = 0xACDCu64;
    let vectors: Vec<Vec<bool>> = (0..48)
        .map(|_| {
            (0..n_pi)
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect()
        })
        .collect();
    let toggles = simulate_toggles(&design, &lib, &vectors).expect("toggle sim");
    assert!(toggles.mean_activity() > 0.0, "something must switch");
    let cfg = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, 1e9);
    let profile = ActivityProfile::with_default(toggles.mean_activity());
    let p_measured = analyze_power(&design, &lib, &cfg, &profile, Some(&toggles)).unwrap();
    let p_profile = analyze_power(&design, &lib, &cfg, &profile, None).unwrap();
    let ratio = p_measured.dynamic_w / p_profile.dynamic_w;
    assert!(
        (0.2..5.0).contains(&ratio),
        "measured vs profile dynamic power: {:.3e} vs {:.3e}",
        p_measured.dynamic_w,
        p_profile.dynamic_w
    );
    // Leakage is activity-independent: identical either way.
    assert_eq!(p_measured.logic_leakage_w, p_profile.logic_leakage_w);
}

#[test]
fn library_subset_covers_full_soc_cell_names() {
    // Every cell the full-size SoC instantiates must resolve to a topology
    // (otherwise full-flow characterization would fail midway).
    let design = build_soc(&SocConfig::default());
    let used: BTreeSet<&str> = design.instances().iter().map(|i| i.cell.as_str()).collect();
    for name in used {
        assert!(
            topology::by_name(name).is_some(),
            "SoC instantiates unknown cell {name}"
        );
    }
}

#[test]
fn soc_area_and_regions_scale_with_config() {
    let tiny = build_soc(&SocConfig::tiny());
    let full = build_soc(&SocConfig::default());
    assert!(full.cell_count() > 20 * tiny.cell_count());
    let regions = full.region_histogram();
    assert!(regions["uncore"] > regions["alu"], "uncore dominates count");
    // Macro memory matches the paper at any logic scale.
    let kb: f64 = full.macros().iter().map(|m| m.spec.kbytes).sum();
    assert!((kb - 581.0).abs() < 1.0);
}
