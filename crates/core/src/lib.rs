#![warn(missing_docs)]
//! The paper's contribution, end to end: the cryogenic-SoC exploration flow.
//!
//! `cryo-core` wires every substrate of this workspace into the pipeline of
//! the paper's Fig. 1:
//!
//! ```text
//! measurements → transistor model → cell libraries (300 K / 10 K)
//!      → SoC netlist → STA (Table 1) → power (Fig. 6)
//!      → workload cycle counts (Table 2) → qubit-scaling verdict (Fig. 7)
//! ```
//!
//! - [`flow::CryoFlow`] — the orchestrator: characterized-library caching,
//!   SoC construction, timing/power signoff, workload timing, and the
//!   calibration policy of DESIGN.md §5.
//! - [`experiments`] — one driver per paper table/figure, returning
//!   serializable result structs with the paper's reference values
//!   embedded, so every regeneration binary prints paper-vs-measured.

pub mod audit;
pub mod corners;
pub mod experiments;
pub mod flow;
pub mod supervise;
pub mod surrogate;

pub use audit::AuditPolicy;
pub use corners::{
    Corner, CornerFarm, CornerOutcome, CornerProvenance, CornerRecord, CornerSpec, FarmConfig,
    FarmManifest, FarmReport, FarmRun, Process,
};
pub use flow::{CryoFlow, FlowConfig, Workload};
pub use supervise::{PipelineReport, Stage, StageRecord, Supervisor, SupervisorConfig};
pub use surrogate::SurrogatePolicy;

use std::error::Error;
use std::fmt;

/// Top-level flow errors (wrapping each stage's error type).
#[derive(Debug)]
pub enum CoreError {
    /// Device modelling / calibration failed.
    Device(cryo_device::DeviceError),
    /// Cell characterization failed.
    Cells(cryo_cells::CellError),
    /// Netlist construction failed.
    Netlist(cryo_netlist::NetlistError),
    /// Timing analysis failed.
    Sta(cryo_sta::StaError),
    /// Power analysis failed.
    Power(cryo_power::PowerError),
    /// Workload simulation failed.
    Riscv(cryo_riscv::RiscvError),
    /// Qubit substrate failed.
    Qubit(cryo_qubit::QubitError),
    /// Characterization completed but covered too few cells to sign off.
    Coverage {
        /// Library corner name.
        corner: String,
        /// Achieved coverage fraction in `[0, 1]`.
        coverage: f64,
        /// Configured coverage floor in `[0, 1]`.
        floor: f64,
        /// Cells absent from the library.
        missing: Vec<String>,
    },
    /// A supervised pipeline stage overran its deadline budget.
    StageTimeout {
        /// Stage name (see [`supervise::Stage::name`]).
        stage: String,
        /// The budget that was exceeded, seconds.
        budget_s: f64,
    },
    /// An environment/configuration knob failed validation at flow start.
    Config {
        /// Variable or knob name (e.g. `CRYO_FAULTS`).
        var: String,
        /// The rejected value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The audit firewall found physical-invariant violations that survived
    /// (or had no) targeted repair, under [`AuditPolicy::Gate`].
    AuditFailed {
        /// Stage whose boundary audit failed (see [`supervise::Stage::name`]).
        stage: String,
        /// The full finding list, each naming the exact entity and invariant.
        report: cryo_liberty::AuditReport,
    },
    /// The corner farm completed but too few corners signed off.
    FarmCoverage {
        /// Corners that signed (SPICE, predicted, or derated).
        signed: usize,
        /// Total corners in the farm.
        total: usize,
        /// Configured minimum signed fraction in `[0, 1]`.
        floor: f64,
        /// Names of the corners that did not sign.
        failed: Vec<String>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Device(e) => write!(f, "device stage: {e}"),
            CoreError::Cells(e) => write!(f, "characterization stage: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist stage: {e}"),
            CoreError::Sta(e) => write!(f, "timing stage: {e}"),
            CoreError::Power(e) => write!(f, "power stage: {e}"),
            CoreError::Riscv(e) => write!(f, "workload stage: {e}"),
            CoreError::Qubit(e) => write!(f, "qubit stage: {e}"),
            CoreError::Coverage {
                corner,
                coverage,
                floor,
                missing,
            } => write!(
                f,
                "characterization coverage for {corner} is {:.1} % (floor {:.1} %); missing: {}",
                coverage * 100.0,
                floor * 100.0,
                missing.join(", ")
            ),
            CoreError::StageTimeout { stage, budget_s } => {
                write!(f, "stage {stage} exceeded its {budget_s:.3} s budget")
            }
            CoreError::Config { var, value, reason } => {
                write!(f, "invalid {var}={value:?}: {reason}")
            }
            CoreError::AuditFailed { stage, report } => {
                write!(
                    f,
                    "audit firewall: stage {stage} has {} unrepaired finding(s): {}",
                    report.findings.len(),
                    report.summary()
                )
            }
            CoreError::FarmCoverage {
                signed,
                total,
                floor,
                failed,
            } => write!(
                f,
                "corner farm signed {signed}/{total} corners (floor {:.1} %); unsigned: {}",
                floor * 100.0,
                failed.join(", ")
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Cells(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::Sta(e) => Some(e),
            CoreError::Power(e) => Some(e),
            CoreError::Riscv(e) => Some(e),
            CoreError::Qubit(e) => Some(e),
            CoreError::Coverage { .. }
            | CoreError::StageTimeout { .. }
            | CoreError::Config { .. }
            | CoreError::AuditFailed { .. }
            | CoreError::FarmCoverage { .. } => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

from_err!(Device, cryo_device::DeviceError);
from_err!(Cells, cryo_cells::CellError);
from_err!(Netlist, cryo_netlist::NetlistError);
from_err!(Sta, cryo_sta::StaError);
from_err!(Power, cryo_power::PowerError);
from_err!(Riscv, cryo_riscv::RiscvError);
from_err!(Qubit, cryo_qubit::QubitError);

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
