#![warn(missing_docs)]
//! Gate-level netlists, SRAM macros, and the Rocket-class RV64 SoC
//! generator.
//!
//! This crate stands in for the Chipyard RTL + commercial synthesis/P&R
//! steps of the paper's flow (Sec. V-A): it produces the *structural
//! artifact* those tools hand to signoff — a gate-level netlist mapped onto
//! the characterized cell library, with fanout-based wire parasitics and
//! SRAM macros for the caches — which `cryo-sta` and `cryo-power` then
//! analyze at 300 K and 10 K.
//!
//! - [`design`] — the netlist container: nets, cell instances, macro
//!   instances, connectivity queries, and design-rule checks.
//! - [`builder`] — gate-level construction helpers and word-level datapath
//!   generators (ripple/carry adders, shifters, comparators, multipliers,
//!   register banks, muxes).
//! - [`sram`] — the SRAM macro model with device-derived leakage and
//!   access-energy figures (the paper adds power to the ASAP7 IP the same
//!   way, from its own calibrated transistor model).
//! - [`soc`] — the five-stage RV64 SoC: fetch, decode, execute (ALU,
//!   shifter, multiplier, FPU approximation), memory (L1/L2 macros + tag
//!   compare), writeback, and clock distribution.

pub mod builder;
pub mod design;
pub mod optimize;
pub mod soc;
pub mod sram;
pub mod verilog;

pub use builder::DesignBuilder;
pub use design::{Design, Instance, MacroInstance, NetId};
pub use soc::{build_soc, SocConfig};
pub use sram::SramMacro;
pub use optimize::{fix_fanout, FanoutFixStats};
pub use verilog::write_verilog;

use std::error::Error;
use std::fmt;

/// Errors from netlist construction and checking.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// An instance references a cell the target library does not provide.
    UnmappedCell {
        /// Instance name.
        instance: String,
        /// Missing cell name.
        cell: String,
    },
    /// A net has no driver or multiple drivers.
    DriverConflict {
        /// Net name.
        net: String,
        /// Number of drivers found.
        drivers: usize,
    },
    /// The combinational graph contains a cycle.
    CombinationalLoop {
        /// A net on the cycle.
        net: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnmappedCell { instance, cell } => {
                write!(f, "instance {instance} uses unmapped cell {cell}")
            }
            NetlistError::DriverConflict { net, drivers } => {
                write!(f, "net {net} has {drivers} drivers")
            }
            NetlistError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
        }
    }
}

impl Error for NetlistError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetlistError>;
