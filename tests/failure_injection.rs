//! Failure injection: every engine reports structured errors instead of
//! panicking or hanging when handed defective inputs, and the
//! characterization flow degrades gracefully under the deterministic
//! fault-injection harness (retry ladder, sibling derating, checkpoint
//! quarantine, resume without re-simulation).

use std::collections::BTreeSet;

use cryo_soc::cells::{
    cache, topology, CellStatus, CharConfig, Characterizer, CheckpointStore,
};
use cryo_soc::device::{FinFet, ModelCard, Polarity};
use cryo_soc::liberty::{LibertyError, Library, Lut2};
use cryo_soc::netlist::{build_soc, DesignBuilder, NetlistError, SocConfig};
use cryo_soc::power::{analyze_power, ActivityProfile, PowerConfig};
use cryo_soc::riscv::asm::assemble;
use cryo_soc::riscv::cpu::Cpu;
use cryo_soc::riscv::RiscvError;
use cryo_soc::spice::{
    dc_operating_point, fault, transient, Circuit, FaultPlan, Source, SpiceError, TranConfig,
    GROUND,
};
use cryo_soc::sta::{analyze, StaConfig, StaError};
use proptest::prelude::*;

#[test]
fn conflicting_ideal_sources_are_singular_or_unsolvable() {
    // Two ideal voltage sources forcing different values onto one node.
    let mut c = Circuit::new();
    let n = c.node("n");
    c.vsource("V1", n, GROUND, Source::dc(1.0));
    c.vsource("V2", n, GROUND, Source::dc(2.0));
    c.resistor("R", n, GROUND, 1e3);
    let r = dc_operating_point(&c);
    assert!(
        matches!(
            r,
            Err(SpiceError::SingularMatrix { .. }) | Err(SpiceError::NoConvergence { .. })
        ),
        "got {r:?}"
    );
}

#[test]
fn empty_circuit_is_rejected_cleanly() {
    let c = Circuit::new();
    assert!(matches!(
        dc_operating_point(&c),
        Err(SpiceError::EmptyCircuit)
    ));
}

#[test]
fn combinational_loop_is_detected_by_sta() {
    // Ring of two inverters with no register: a combinational loop.
    let mut lib = Library::new("loop_lib", 300.0, 0.7);
    let inv_fn = cryo_soc::liberty::LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
    lib.add_cell(cryo_soc::liberty::Cell {
        name: "INVx1".into(),
        area: 0.05,
        pins: vec![
            cryo_soc::liberty::Pin::input("A", 1e-15),
            cryo_soc::liberty::Pin::output("Y", inv_fn),
        ],
        arcs: vec![cryo_soc::liberty::TimingArc {
            related_pin: "A".into(),
            pin: "Y".into(),
            kind: cryo_soc::liberty::ArcKind::Combinational,
            sense: cryo_soc::liberty::TimingSense::NegativeUnate,
            cell_rise: Lut2::constant(10e-12),
            cell_fall: Lut2::constant(10e-12),
            rise_transition: Lut2::constant(5e-12),
            fall_transition: Lut2::constant(5e-12),
        }],
        power_arcs: vec![],
        leakage_states: vec![(0, 1e-9)],
        ff: None,
        drive: 1,
    });
    let mut b = DesignBuilder::new("ring");
    let fb = b.net("feedback");
    let y1 = b.inv(fb, 1);
    let y2 = b.inv(y1, 1);
    b.alias_with_buffer(y2, fb); // BUFx2 closes the loop
    b.mark_output(y2);
    // Library lacks BUFx2 -> unmapped-cell error first; add it.
    let buf_fn = cryo_soc::liberty::LogicFunction::from_eval(&["A"], |bits| bits & 1 != 0);
    let mut buf = lib.cell("INVx1").unwrap().clone();
    buf.name = "BUFx2".into();
    buf.pins[1].function = Some(buf_fn);
    lib.add_cell(buf);
    let design = b.finish();
    let err = analyze(&design, &lib, &StaConfig::default()).unwrap_err();
    assert!(matches!(err, StaError::CombinationalLoop { .. }), "{err}");
}

#[test]
fn unmapped_cell_is_reported_by_netlist_check() {
    let mut b = DesignBuilder::new("bad");
    let x = b.input("x");
    let _ = b.gate("FANTASYx9", &[x]);
    let design = b.finish();
    let lib = Library::new("empty", 300.0, 0.7);
    assert!(matches!(
        design.check(&lib),
        Err(NetlistError::UnmappedCell { .. })
    ));
}

#[test]
fn malformed_tables_are_rejected() {
    assert!(matches!(
        Lut2::new(vec![2.0, 1.0], vec![1.0], vec![0.0, 0.0]),
        Err(LibertyError::MalformedTable { .. })
    ));
}

#[test]
fn cpu_faults_on_out_of_range_access() {
    let program = assemble(
        "li a0, 0x7fffffff
         slli a0, a0, 8
         ld a1, 0(a0)
         ecall",
    )
    .unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    let err = cpu.run(100).unwrap_err();
    assert!(matches!(err, RiscvError::MemoryFault { .. }), "{err}");
}

#[test]
fn cpu_faults_on_illegal_instruction() {
    let program = assemble("nop\necall").unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    // Overwrite the nop with an undecodable word.
    cpu.write_mem(0x1000, &0xffff_ffffu32.to_le_bytes())
        .unwrap();
    let err = cpu.run(10).unwrap_err();
    assert!(
        matches!(err, RiscvError::IllegalInstruction { .. }),
        "{err}"
    );
}

#[test]
fn assembler_reports_line_numbers() {
    let err = assemble("nop\nnop\nbogus_mnemonic a0").unwrap_err();
    match err {
        RiscvError::Asm { line, .. } => assert_eq!(line, 3),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn infinite_loop_hits_budget_not_hang() {
    let program = assemble("spin: j spin").unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    assert!(matches!(
        cpu.run(10_000),
        Err(RiscvError::Timeout { executed: 10_000 })
    ));
}

// ---------------------------------------------------------------------------
// Deterministic fault injection: one test per fault kind, then checkpoint /
// resume, then the full-flow graceful-degradation acceptance test.
// ---------------------------------------------------------------------------

/// A small solvable circuit (resistor divider) for solver-fault tests.
fn divider() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let m = c.node("m");
    c.vsource("V1", a, GROUND, Source::dc(1.0));
    c.resistor("R1", a, m, 1e3);
    c.resistor("R2", m, GROUND, 1e3);
    c
}

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cryo_soc_fault_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_characterizer() -> Characterizer {
    Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        CharConfig::fast(300.0),
    )
}

#[test]
fn injected_dc_nonconvergence_surfaces_as_structured_error() {
    let _g = fault::install_guard(FaultPlan {
        dc_no_convergence: 1.0,
        ..FaultPlan::new(7)
    });
    let r = dc_operating_point(&divider());
    assert!(matches!(r, Err(SpiceError::NoConvergence { .. })), "{r:?}");
    assert!(fault::injection_count() >= 1);
}

#[test]
fn injected_singular_matrix_surfaces_as_structured_error() {
    let _g = fault::install_guard(FaultPlan {
        singular_matrix: 1.0,
        ..FaultPlan::new(7)
    });
    let r = dc_operating_point(&divider());
    assert!(matches!(r, Err(SpiceError::SingularMatrix { .. })), "{r:?}");
}

#[test]
fn injected_nan_device_eval_is_detected_not_propagated() {
    // NaN poisoning only matters where a device model is evaluated.
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let a = c.node("a");
    let y = c.node("y");
    c.vsource("VDD", vdd, GROUND, Source::dc(0.7));
    c.vsource("VA", a, GROUND, Source::dc(0.0));
    let nc = ModelCard::nominal(Polarity::N);
    let pc = ModelCard::nominal(Polarity::P);
    c.finfet("MP", y, a, vdd, FinFet::new(&pc, 300.0, 2));
    c.finfet("MN", y, a, GROUND, FinFet::new(&nc, 300.0, 2));
    let _g = fault::install_guard(FaultPlan {
        nan_device: 1.0,
        ..FaultPlan::new(7)
    });
    let r = dc_operating_point(&c);
    assert!(
        matches!(
            r,
            Err(SpiceError::NonFinite { .. }) | Err(SpiceError::NoConvergence { .. })
        ),
        "NaN must become a structured error, got {r:?}"
    );
}

#[test]
fn injected_tran_nonconvergence_surfaces_as_structured_error() {
    let mut c = divider();
    let m = c.find_node("m").unwrap();
    c.capacitor("C1", m, GROUND, 1e-15);
    let _g = fault::install_guard(FaultPlan {
        tran_no_convergence: 1.0,
        ..FaultPlan::new(7)
    });
    let r = transient(&c, &TranConfig::with_steps(1e-9, 20));
    assert!(matches!(r, Err(SpiceError::NoConvergence { .. })), "{r:?}");
}

#[test]
fn truncated_cache_write_is_quarantined_on_load() {
    let dir = scratch("cache_trunc");
    let mut lib = Library::new("trunc_lib", 300.0, 0.7);
    lib.add_cell({
        let f = cryo_soc::liberty::LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        cryo_soc::liberty::Cell {
            name: "INVx1".into(),
            area: 0.05,
            pins: vec![
                cryo_soc::liberty::Pin::input("A", 1e-15),
                cryo_soc::liberty::Pin::output("Y", f),
            ],
            arcs: vec![],
            power_arcs: vec![],
            leakage_states: vec![(0, 1e-9)],
            ff: None,
            drive: 1,
        }
    });
    {
        // Crash-during-write simulation: the file lands truncated.
        let _g = fault::install_guard(FaultPlan {
            cache_corruption: 1.0,
            ..FaultPlan::new(7)
        });
        cache::store(&dir, "trunc_lib", "k1", &lib).unwrap();
    }
    assert!(
        cache::load(&dir, "trunc_lib", "k1").is_none(),
        "truncated cache must read as a miss"
    );
    let path = cache::cache_path(&dir, "trunc_lib", "k1");
    let mut corrupt = path.into_os_string();
    corrupt.push(".corrupt");
    assert!(
        std::path::Path::new(&corrupt).exists(),
        "evidence file must survive quarantine"
    );
    // A clean re-store round-trips again.
    cache::store(&dir, "trunc_lib", "k1", &lib).unwrap();
    assert!(cache::load(&dir, "trunc_lib", "k1").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_entry_is_quarantined_and_recomputed() {
    let dir = scratch("ckpt_corrupt");
    let store = CheckpointStore::open(&dir, "mini", "k1").unwrap();
    let engine = fast_characterizer();
    let inv = topology::inverter(1);
    let good = engine.characterize_cell(&inv).unwrap();
    store.store(&good).unwrap();

    // Flip a byte in the payload: the checksum must catch it.
    let path = store.path(&inv.name);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();

    let cells = [inv];
    let (lib, report) = engine.characterize_library_robust("mini", &cells, Some(&store));
    assert!(lib.cell("INVx1").is_ok());
    let outcome = report.outcome("INVx1").unwrap();
    assert_eq!(
        outcome.status,
        CellStatus::Characterized,
        "corrupt checkpoint must be re-characterized, not trusted"
    );
    let mut corrupt = path.into_os_string();
    corrupt.push(".corrupt");
    assert!(
        std::path::Path::new(&corrupt).exists(),
        "corrupt checkpoint entry must be quarantined for inspection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_resumes_without_resimulating() {
    let dir = scratch("ckpt_resume");
    let store = CheckpointStore::open(&dir, "mini", "k1").unwrap();
    let engine = fast_characterizer();
    let cells = [
        topology::inverter(1),
        topology::inverter(2),
        topology::nand(2, 1),
    ];

    // "Interrupted" first run: only the first cell reached the checkpoint.
    let (_, report) = engine.characterize_library_robust("mini", &cells[..1], Some(&store));
    assert_eq!(report.outcome("INVx1").unwrap().status, CellStatus::Characterized);

    // Restarted run resumes the finished cell and characterizes the rest.
    let (lib, report) = engine.characterize_library_robust("mini", &cells, Some(&store));
    assert_eq!(lib.len(), 3);
    assert_eq!(report.outcome("INVx1").unwrap().status, CellStatus::Resumed);
    assert_eq!(report.outcome("INVx2").unwrap().status, CellStatus::Characterized);
    assert_eq!(report.outcome("NAND2x1").unwrap().status, CellStatus::Characterized);

    // A third run finds everything checkpointed: zero SPICE invocations.
    fault::reset_sim_counts();
    let (lib, report) = engine.characterize_library_robust("mini", &cells, Some(&store));
    assert_eq!(lib.len(), 3);
    assert_eq!(report.resumed_count(), 3);
    let counts = fault::sim_counts();
    assert_eq!(
        (counts.dc, counts.tran),
        (0, 0),
        "a fully-checkpointed run must not re-simulate anything"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-flow acceptance: a per-cell injected fault exhausts the retry
/// ladder, the victim is derated from its drive-strength sibling, coverage
/// stays above the flow's 95 % floor, and STA + power still sign off.
#[test]
fn flow_survives_injected_cell_fault_with_derating() {
    let design = build_soc(&SocConfig::tiny());
    let used: BTreeSet<&str> = design.instances().iter().map(|i| i.cell.as_str()).collect();
    let names: Vec<String> = used.iter().map(|s| s.to_string()).collect();
    let cells: Vec<_> = names
        .iter()
        .map(|n| topology::by_name(n).unwrap_or_else(|| panic!("unknown cell {n}")))
        .collect();

    // Victim: has a drive-strength sibling in the set, and its name is not
    // a substring of any other cell's (scope matching is substring-based,
    // so e.g. INVx1 would also hit INVx16).
    let family = |n: &str| n.trim_end_matches(|c: char| c.is_ascii_digit()).to_string();
    let victim = names
        .iter()
        .find(|n| {
            n.len() > family(n).len()
                && names.iter().any(|o| o != *n && family(o) == family(n))
                && names.iter().all(|o| o == *n || !o.contains(n.as_str()))
        })
        .expect("tiny SoC uses at least one multi-member drive family")
        .clone();

    let engine = fast_characterizer();
    let report = {
        // Every solve for the victim fails: DC and transient both refuse.
        let _g = fault::install_guard(FaultPlan {
            dc_no_convergence: 1.0,
            tran_no_convergence: 1.0,
            scope: Some(victim.clone()),
            ..FaultPlan::new(42)
        });
        let (lib, report) = engine.characterize_library_robust("soc_faulted", &cells, None);

        // Degradation is graceful: coverage holds, the report names the
        // victim, and the ladder was fully climbed before giving up.
        assert!(
            lib.coverage(&names) >= 0.95,
            "coverage {:.3} fell below the floor",
            lib.coverage(&names)
        );
        let outcome = report.outcome(&victim).unwrap();
        assert_eq!(outcome.status, CellStatus::Derated, "victim: {victim}");
        assert_eq!(
            outcome.attempts,
            engine.config().max_attempts as u32,
            "ladder must be exhausted before derating"
        );
        assert!(outcome.fault.is_some(), "fault cause must be recorded");
        let donor = outcome.derated_from.clone().unwrap();
        assert_eq!(family(&donor), family(&victim), "donor is a drive sibling");

        // Signoff still runs on the degraded library.
        design.check(&lib).expect("netlist maps cleanly");
        let timing = analyze(&design, &lib, &StaConfig::default()).expect("sta");
        assert!(timing.critical_path_delay > 0.0);
        let pcfg = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, timing.fmax());
        let profile = ActivityProfile::with_default(0.15);
        let power = analyze_power(&design, &lib, &pcfg, &profile, None).expect("power");
        assert!(power.total() > 0.0);
        report
    };
    assert_eq!(report.failed().len(), 0, "nothing was dropped outright");
    assert_eq!(report.derated().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The DC solve ladder (gmin stepping + source stepping) converges on
    /// randomly perturbed pathological circuits: cross-coupled latches with
    /// mismatched devices, weak leakage ties, and off-nominal supplies.
    #[test]
    fn dc_ladder_converges_on_perturbed_latches(
        nfin_a in 1u32..5,
        nfin_b in 1u32..5,
        r_exp in 4.0f64..9.0,
        vdd in 0.55f64..0.85,
    ) {
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        let mut c = Circuit::new();
        let vddn = c.node("vdd");
        c.vsource("VDD", vddn, GROUND, Source::dc(vdd));
        let q = c.node("q");
        let qb = c.node("qb");
        c.finfet("MP1", q, qb, vddn, FinFet::new(&pc, 300.0, nfin_a));
        c.finfet("MN1", q, qb, GROUND, FinFet::new(&nc, 300.0, nfin_a));
        c.finfet("MP2", qb, q, vddn, FinFet::new(&pc, 300.0, nfin_b));
        c.finfet("MN2", qb, q, GROUND, FinFet::new(&nc, 300.0, nfin_b));
        // Weak tie: breaks metastable symmetry, conditions the matrix badly.
        c.resistor("RW", q, GROUND, 10f64.powf(r_exp));
        let op = dc_operating_point(&c);
        prop_assert!(op.is_ok(), "latch failed to converge: {:?}", op.err());
        let op = op.unwrap();
        for n in [q, qb] {
            let v = op.voltage(n);
            prop_assert!(v.is_finite(), "non-finite node voltage");
            prop_assert!(
                (-0.05..=vdd + 0.05).contains(&v),
                "node voltage {v} outside rails at vdd {vdd}"
            );
        }
    }
}
