//! Sparse incremental solve kernel with symbolic-factorization reuse.
//!
//! The characterization flow solves the *same* MNA structure thousands of
//! times: every Newton iteration of every timestep of every NLDM grid point
//! re-assembles a matrix whose sparsity pattern is fixed by the circuit
//! topology. This module exploits that in three layers, every one of which
//! preserves the dense kernel's results **bit for bit**:
//!
//! 1. **Structural factorization reuse** ([`SparseLu`]). The stamp pattern
//!    is analyzed once per circuit; numeric refactorization then touches
//!    only structural non-zeros (original entries plus fill-in under the
//!    recorded pivot sequence) and skips the dense kernel's work on
//!    positions that are identically `+0.0`. Values are kept in the dense
//!    row-major [`Matrix`] so every surviving floating-point operation is
//!    the *same* operation, on the same values, in the same order as the
//!    dense kernel — see the bit-exactness argument below.
//! 2. **Warm-started DC operating points** (the thread-local DC memo). All
//!    49 slew/load grid points of an NLDM arc share one DC operating point
//!    (capacitors do not stamp in DC and the stimulus ramp starts after
//!    `t = 0`), so the memo keyed on the *exact* bits of the DC-relevant
//!    netlist returns the previously converged vector instead of re-running
//!    the Newton ladder. A deterministic solver returns identical bits for
//!    identical inputs, so a hit is indistinguishable from a re-solve.
//! 3. **Batched device evaluation**: `dc::assemble` gathers all FET bias
//!    points into a flat SoA buffer ([`Workspace`]) and evaluates them in
//!    one pass before stamping in element order.
//!
//! # Why the fast path is bit-exact
//!
//! The dense kernel's elimination at step `k` does, for every row `r > k`:
//! `factor = A[r][k] / pivot` (stored), then — only when `factor != 0.0` —
//! `A[r][c] -= factor * A[k][c]` for `c > k`. Two observations make
//! structural skipping exact:
//!
//! * An assembled MNA matrix contains no `-0.0`: the matrix is cleared to
//!   `+0.0` and IEEE-754 addition in round-to-nearest never produces `-0.0`
//!   from a `+0.0` accumulator (`+0.0 + -0.0 = +0.0`). The elimination
//!   update `x - f·y` likewise cannot produce `-0.0` in the active
//!   submatrix (equal operands subtract to `+0.0`).
//! * Therefore every structurally-zero position holds exactly `+0.0`, and
//!   (a) a skipped update column `c` has `A[k][c] = +0.0`, so the dense
//!   kernel computes `x - f·(+0.0) = x` bitwise — skipping it changes
//!   nothing; (b) a skipped row has `A[r][k] = +0.0`, so the dense kernel
//!   computes `factor = ±0.0`, stores it, and skips the row update itself
//!   (`factor != 0.0` is false) — the only trace is a `±0.0` in the strictly
//!   lower triangle, which the factorization never reads again; (c) pivot
//!   search uses a strict `>` comparison, so a `+0.0` at a structurally-zero
//!   position can never win over the recorded candidate scan, and an
//!   all-zero column classifies as [`SpiceError::SingularMatrix`] at the
//!   same column either way.
//!
//! The pivot sequence is *verified*, not assumed: each fast refactorization
//! replays the dense argmax over the structural candidate rows and falls
//! back to a full dense factorization (recording the new sequence and
//! re-running symbolic analysis) the moment the values would have made the
//! dense kernel pivot differently. After such a bootstrap the solve also
//! runs through the dense substitution once, so the `±0.0` factor stores
//! the dense kernel leaves at structurally-zero positions are consumed
//! exactly as the dense kernel would.
//!
//! # Kernel selection
//!
//! `CRYO_KERNEL=dense|sparse` (default `sparse`) picks the kernel
//! process-wide; [`kernel_override_guard`] overrides it per thread for
//! differential tests. The selection is excluded from every cache and
//! checkpoint key — both kernels produce byte-identical artifacts, which
//! `tests/kernel_golden.rs` and `crates/spice/tests/kernel_equivalence.rs`
//! enforce. `CRYO_WARMSTART=on|off` (default `on`) controls the DC memo
//! the same way. A general compressed-storage engine with fill-reducing
//! ordering ([`CsrMatrix`]) backs the differential proptests; it trades
//! bit-identity for a reordered (lower-fill) elimination and therefore
//! agrees with the dense kernel to rounding (1e-12 relative), not bytes —
//! the production path never uses it.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::circuit::{Circuit, ElementKind, NodeId, GROUND};
use crate::solver::Matrix;
use crate::{Result, SpiceError};

// ----------------------------------------------------------------------
// Kernel selection and warm-start switches
// ----------------------------------------------------------------------

/// Which linear-algebra kernel backs Newton solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Row-major dense LU with partial pivoting (the original path).
    Dense,
    /// Structural factorization with symbolic reuse; bit-identical to
    /// [`KernelKind::Dense`].
    Sparse,
}

impl KernelKind {
    /// Canonical spelling, matching the `CRYO_KERNEL` values.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Dense => "dense",
            KernelKind::Sparse => "sparse",
        }
    }
}

/// Parse a `CRYO_KERNEL` value.
///
/// # Errors
///
/// Returns a human-readable description for anything but `dense`/`sparse`.
pub fn parse_kernel_spec(raw: &str) -> std::result::Result<KernelKind, String> {
    match raw.trim() {
        "dense" => Ok(KernelKind::Dense),
        "sparse" => Ok(KernelKind::Sparse),
        other => Err(format!(
            "CRYO_KERNEL must be \"dense\" or \"sparse\", got \"{other}\""
        )),
    }
}

/// Read and validate `CRYO_KERNEL` from the environment.
///
/// `Ok(None)` when unset.
///
/// # Errors
///
/// Propagates [`parse_kernel_spec`] failures (flow startup turns these into
/// a structured config error instead of silently defaulting).
pub fn kernel_from_env_checked() -> std::result::Result<Option<KernelKind>, String> {
    match std::env::var("CRYO_KERNEL") {
        Ok(raw) => parse_kernel_spec(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parse a `CRYO_WARMSTART` value (`on` / `off`).
///
/// # Errors
///
/// Returns a description for anything else.
pub fn parse_warmstart_spec(raw: &str) -> std::result::Result<bool, String> {
    match raw.trim() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!(
            "CRYO_WARMSTART must be \"on\" or \"off\", got \"{other}\""
        )),
    }
}

/// Read and validate `CRYO_WARMSTART` from the environment (`Ok(None)` when
/// unset).
///
/// # Errors
///
/// Propagates [`parse_warmstart_spec`] failures.
pub fn warmstart_from_env_checked() -> std::result::Result<Option<bool>, String> {
    match std::env::var("CRYO_WARMSTART") {
        Ok(raw) => parse_warmstart_spec(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

thread_local! {
    static KERNEL_OVERRIDE: Cell<Option<KernelKind>> = const { Cell::new(None) };
    static WARMSTART_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
    static STATS: Cell<KernelStats> = const { Cell::new(KernelStats::ZERO) };
    static DC_MEMO: RefCell<HashMap<String, Vec<f64>>> = RefCell::new(HashMap::new());
}

/// The kernel active on this thread: per-thread override, else
/// `CRYO_KERNEL`, else [`KernelKind::Sparse`].
///
/// An invalid environment value falls back to the default here; flow
/// entry points validate strictly via [`kernel_from_env_checked`].
#[must_use]
pub fn current_kernel() -> KernelKind {
    if let Some(k) = KERNEL_OVERRIDE.with(Cell::get) {
        return k;
    }
    match std::env::var("CRYO_KERNEL") {
        Ok(raw) => parse_kernel_spec(&raw).unwrap_or(KernelKind::Sparse),
        Err(_) => KernelKind::Sparse,
    }
}

/// Whether DC warm starts (the operating-point memo) are enabled on this
/// thread: per-thread override, else `CRYO_WARMSTART`, else on.
#[must_use]
pub fn warmstart_enabled() -> bool {
    if let Some(w) = WARMSTART_OVERRIDE.with(Cell::get) {
        return w;
    }
    match std::env::var("CRYO_WARMSTART") {
        Ok(raw) => parse_warmstart_spec(&raw).unwrap_or(true),
        Err(_) => true,
    }
}

/// RAII guard restoring the previous per-thread kernel override on drop.
pub struct KernelOverrideGuard {
    prev: Option<KernelKind>,
}

impl Drop for KernelOverrideGuard {
    fn drop(&mut self) {
        KERNEL_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Force `kernel` for this thread until the guard drops. Worker threads of
/// the parallel characterization scheduler inherit the spawning thread's
/// kernel through this, mirroring fault-plan inheritance.
#[must_use]
pub fn kernel_override_guard(kernel: KernelKind) -> KernelOverrideGuard {
    let prev = KERNEL_OVERRIDE.with(|c| c.replace(Some(kernel)));
    KernelOverrideGuard { prev }
}

/// RAII guard restoring the previous per-thread warm-start override on drop.
pub struct WarmstartOverrideGuard {
    prev: Option<bool>,
}

impl Drop for WarmstartOverrideGuard {
    fn drop(&mut self) {
        WARMSTART_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Force warm starts on or off for this thread until the guard drops.
#[must_use]
pub fn warmstart_override_guard(enabled: bool) -> WarmstartOverrideGuard {
    let prev = WARMSTART_OVERRIDE.with(|c| c.replace(Some(enabled)));
    WarmstartOverrideGuard { prev }
}

// ----------------------------------------------------------------------
// Kernel work counters
// ----------------------------------------------------------------------

/// Always-on per-thread counters of kernel work, separate from
/// [`crate::SimCounts`] (which counts *solves* and participates in
/// checkpoint accounting; these count the work *within* solves and exist to
/// prove that symbolic reuse and warm starts actually skip work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Newton iterations executed (each assembles and factors once).
    pub newton_iters: u64,
    /// Numeric refactorizations that reused the symbolic analysis.
    pub lu_fast: u64,
    /// Full dense factorizations: first factor of a circuit, or pivot
    /// drift on the fast path.
    pub lu_bootstrap: u64,
    /// DC operating points served from the warm-start memo.
    pub dc_memo_hits: u64,
    /// Converged DC operating points stored into the memo.
    pub dc_memo_stores: u64,
}

impl KernelStats {
    const ZERO: KernelStats = KernelStats {
        newton_iters: 0,
        lu_fast: 0,
        lu_bootstrap: 0,
        dc_memo_hits: 0,
        dc_memo_stores: 0,
    };
}

/// This thread's accumulated kernel counters.
#[must_use]
pub fn kernel_stats() -> KernelStats {
    STATS.with(Cell::get)
}

/// Zero this thread's kernel counters.
pub fn reset_kernel_stats() {
    STATS.with(|s| s.set(KernelStats::ZERO));
}

/// Read and zero this thread's kernel counters (worker threads hand their
/// counts to the spawning thread with this, like `take_sim_counts`).
#[must_use]
pub fn take_kernel_stats() -> KernelStats {
    STATS.with(|s| s.replace(KernelStats::ZERO))
}

/// Fold counters taken from another thread into this one's.
pub fn add_kernel_stats(extra: KernelStats) {
    STATS.with(|s| {
        let mut cur = s.get();
        cur.newton_iters += extra.newton_iters;
        cur.lu_fast += extra.lu_fast;
        cur.lu_bootstrap += extra.lu_bootstrap;
        cur.dc_memo_hits += extra.dc_memo_hits;
        cur.dc_memo_stores += extra.dc_memo_stores;
        s.set(cur);
    });
}

pub(crate) fn bump_stats(f: impl FnOnce(&mut KernelStats)) {
    STATS.with(|s| {
        let mut cur = s.get();
        f(&mut cur);
        s.set(cur);
    });
}

// ----------------------------------------------------------------------
// DC operating-point memo (warm starts)
// ----------------------------------------------------------------------

/// Reset the per-thread solve context: clears the DC warm-start memo.
///
/// The characterization flow calls this at every cell boundary so a cell's
/// results can never depend on which cells (if any) ran before it on the
/// same worker thread — the determinism contract that keeps jobs-1 and
/// jobs-N runs byte-identical.
pub fn reset_solve_context() {
    DC_MEMO.with(|m| m.borrow_mut().clear());
}

/// Exact-bits memo key for a DC operating point.
///
/// Everything the DC solve consumes is folded in at full precision:
/// topology, element values as `f64` bits, source values *at `t = 0`*, the
/// unknown layout, and the solver's gmin. Capacitances are deliberately
/// excluded — capacitors do not stamp in DC analysis — which is exactly why
/// all load/slew grid points of an arc share one entry. Element names are
/// excluded (they cannot affect the solution).
pub(crate) fn dc_memo_key(ckt: &Circuit, gmin: f64) -> String {
    let mut key = String::with_capacity(256);
    let _ = write!(
        key,
        "n{},b{},g{:016x};",
        ckt.node_count(),
        ckt.branch_count(),
        gmin.to_bits()
    );
    for el in ckt.elements() {
        match &el.kind {
            ElementKind::Resistor { a, b, ohms } => {
                let _ = write!(key, "R{a},{b},{:016x};", ohms.to_bits());
            }
            // DC never stamps capacitors: the value is irrelevant, but the
            // element still occupies a slot in the companion bookkeeping,
            // so keep the terminals for structural fidelity.
            ElementKind::Capacitor { a, b, .. } => {
                let _ = write!(key, "C{a},{b};");
            }
            ElementKind::VSource {
                pos,
                neg,
                source,
                branch,
            } => {
                let _ = write!(
                    key,
                    "V{pos},{neg},{branch},{:016x};",
                    source.value(0.0).to_bits()
                );
            }
            // Debug for f64 prints the shortest representation that
            // round-trips, so the card, temperature and fin count are
            // captured exactly.
            ElementKind::Fet { d, g, s, dev } => {
                let _ = write!(key, "F{d},{g},{s},{dev:?};");
            }
        }
    }
    key
}

pub(crate) fn dc_memo_get(key: &str) -> Option<Vec<f64>> {
    let hit = DC_MEMO.with(|m| m.borrow().get(key).cloned());
    if hit.is_some() {
        bump_stats(|s| s.dc_memo_hits += 1);
    }
    hit
}

pub(crate) fn dc_memo_put(key: String, x: Vec<f64>) {
    bump_stats(|s| s.dc_memo_stores += 1);
    DC_MEMO.with(|m| {
        m.borrow_mut().insert(key, x);
    });
}

// ----------------------------------------------------------------------
// Structural pattern
// ----------------------------------------------------------------------

/// Row-major bitset matrix: one bit per potential structural non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitPattern {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BitPattern {
    pub(crate) fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            n,
            words,
            bits: vec![0; n * words],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize) {
        self.bits[r * self.words + (c >> 6)] |= 1u64 << (c & 63);
    }

    #[inline]
    pub(crate) fn get(&self, r: usize, c: usize) -> bool {
        self.bits[r * self.words + (c >> 6)] & (1u64 << (c & 63)) != 0
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for w in 0..self.words {
            self.bits.swap(a * self.words + w, b * self.words + w);
        }
    }

    /// `row[dst] |= row[src] & {columns > k}` — the fill-in step.
    fn or_row_above(&mut self, dst: usize, src: usize, k: usize) {
        let first = (k + 1) >> 6;
        for w in first..self.words {
            let mut m = self.bits[src * self.words + w];
            if w == first {
                let lo = (k + 1) & 63;
                m &= u64::MAX << lo;
            }
            self.bits[dst * self.words + w] |= m;
        }
    }
}

/// The stamp pattern `dc::assemble` touches for `ckt`: a superset of the
/// numeric non-zeros (stamped positions whose values cancel or are zero are
/// still structural, which is always safe — structural skipping is only
/// applied to positions assembly *never* writes).
pub(crate) fn stamp_pattern(ckt: &Circuit, with_caps: bool) -> BitPattern {
    let nn = ckt.node_count() - 1;
    let n = ckt.unknowns();
    let mut p = BitPattern::new(n);
    // gmin shunts on every node diagonal.
    for i in 0..nn {
        p.set(i, i);
    }
    let two_terminal = |a: NodeId, b: NodeId, p: &mut BitPattern| {
        if a != GROUND {
            p.set(a - 1, a - 1);
        }
        if b != GROUND {
            p.set(b - 1, b - 1);
        }
        if a != GROUND && b != GROUND {
            p.set(a - 1, b - 1);
            p.set(b - 1, a - 1);
        }
    };
    for el in ckt.elements() {
        match &el.kind {
            ElementKind::Resistor { a, b, .. } => two_terminal(*a, *b, &mut p),
            ElementKind::Capacitor { a, b, .. } => {
                if with_caps {
                    two_terminal(*a, *b, &mut p);
                }
            }
            ElementKind::VSource {
                pos, neg, branch, ..
            } => {
                let row = nn + branch;
                if *pos != GROUND {
                    p.set(*pos - 1, row);
                    p.set(row, *pos - 1);
                }
                if *neg != GROUND {
                    p.set(*neg - 1, row);
                    p.set(row, *neg - 1);
                }
            }
            ElementKind::Fet { d, g, s, .. } => {
                // VCCS stamp: rows d/s, controlling columns g/s.
                for (node, _) in [(*d, 1.0), (*s, -1.0)] {
                    if node == GROUND {
                        continue;
                    }
                    if *g != GROUND {
                        p.set(node - 1, *g - 1);
                    }
                    if *s != GROUND {
                        p.set(node - 1, *s - 1);
                    }
                }
                // Output conductance between drain and source.
                two_terminal(*d, *s, &mut p);
            }
        }
    }
    p
}

// ----------------------------------------------------------------------
// Bit-exact structural LU with symbolic reuse
// ----------------------------------------------------------------------

enum FastOutcome {
    Done,
    Drift,
    Singular(usize),
}

/// Structural LU mirror of [`Matrix::lu_factor`].
///
/// Holds the circuit's stamp pattern, the pivot sequence recorded by the
/// last full (dense) factorization, and the per-step structural work lists
/// derived from both. `factor` verifies the recorded pivots against the
/// current values and re-bootstraps on drift, so its output is always
/// bit-identical to what the dense kernel would have produced.
pub(crate) struct SparseLu {
    n: usize,
    base: BitPattern,
    pivots: Vec<u32>,
    ready: bool,
    /// Rows `r > k` structural in column `k` *before* the step-`k` swap
    /// (the dense pivot-search candidates), ascending.
    scan: Vec<Vec<u32>>,
    /// Rows `r > k` structural in column `k` *after* the swap (the rows the
    /// dense kernel actually updates), ascending.
    elim: Vec<Vec<u32>>,
    /// Columns `c > k` structural in pivot row `k` after the swap,
    /// including fill-in, ascending.
    urow: Vec<Vec<u32>>,
    /// Final factored structure per row: strict lower columns (L) and
    /// strict upper columns (U), ascending — drives the structural solve.
    lrow: Vec<Vec<u32>>,
    urow_solve: Vec<Vec<u32>>,
    perm: Vec<usize>,
    /// Whether the most recent `factor` went through the dense bootstrap
    /// (in which case the solve also takes the dense path once, consuming
    /// the `±0.0` stores dense factorization leaves in skipped L slots).
    last_bootstrap: bool,
    /// Scratch for solves.
    scratch: Vec<f64>,
}

impl SparseLu {
    pub(crate) fn for_circuit(ckt: &Circuit, with_caps: bool) -> Self {
        Self::from_pattern(stamp_pattern(ckt, with_caps))
    }

    pub(crate) fn from_pattern(base: BitPattern) -> Self {
        let n = base.n;
        Self {
            n,
            base,
            pivots: Vec::new(),
            ready: false,
            scan: Vec::new(),
            elim: Vec::new(),
            urow: Vec::new(),
            lrow: Vec::new(),
            urow_solve: Vec::new(),
            perm: (0..n).collect(),
            last_bootstrap: false,
            scratch: Vec::new(),
        }
    }

    /// Factor `mat` in place, bit-identically to [`Matrix::lu_factor`].
    ///
    /// `saved` is caller-provided scratch for the pristine matrix (restored
    /// on pivot drift before the dense bootstrap re-runs).
    pub(crate) fn factor(&mut self, mat: &mut Matrix, saved: &mut Matrix) -> Result<()> {
        if self.ready {
            saved.copy_from(mat);
            match self.try_fast(mat) {
                FastOutcome::Done => {
                    bump_stats(|s| s.lu_fast += 1);
                    self.last_bootstrap = false;
                    return Ok(());
                }
                FastOutcome::Singular(column) => {
                    return Err(SpiceError::SingularMatrix { column, node: None });
                }
                FastOutcome::Drift => mat.copy_from(saved),
            }
        }
        self.bootstrap(mat)
    }

    /// Solve using the most recent factorization (matches
    /// [`Matrix::lu_solve`] output bitwise).
    pub(crate) fn solve(&mut self, mat: &Matrix, b: &mut [f64]) {
        if self.last_bootstrap {
            let mut scratch = std::mem::take(&mut self.scratch);
            mat.lu_solve_with(&self.perm, b, &mut scratch);
            self.scratch = scratch;
            return;
        }
        let n = self.n;
        self.scratch.clear();
        self.scratch.extend(self.perm.iter().map(|&p| b[p]));
        let x = &mut self.scratch;
        let data = mat.data();
        // Forward substitution (unit lower diagonal), structural columns
        // in the same ascending order the dense loop visits them.
        for r in 1..n {
            let row = &data[r * n..(r + 1) * n];
            let mut acc = x[r];
            for &c in &self.lrow[r] {
                acc -= row[c as usize] * x[c as usize];
            }
            x[r] = acc;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let row = &data[r * n..(r + 1) * n];
            let mut acc = x[r];
            for &c in &self.urow_solve[r] {
                acc -= row[c as usize] * x[c as usize];
            }
            x[r] = acc / row[r];
        }
        b.copy_from_slice(x);
    }

    /// One structural refactorization under the recorded pivot sequence.
    fn try_fast(&mut self, mat: &mut Matrix) -> FastOutcome {
        let n = self.n;
        for k in 0..n {
            // Replay the dense pivot search over the structural candidates.
            // Structurally-zero candidates hold exactly +0.0 and cannot win
            // the strict comparison, so the argmax (first-max-wins) and the
            // singularity classification match the dense scan.
            let mut p = k;
            let mut max = mat.get(k, k).abs();
            for &r in &self.scan[k] {
                let v = mat.get(r as usize, k).abs();
                if v > max {
                    max = v;
                    p = r as usize;
                }
            }
            if max < 1e-300 {
                return FastOutcome::Singular(k);
            }
            if p != self.pivots[k] as usize {
                return FastOutcome::Drift;
            }
            mat.swap_rows(k, p);
            let pivot = mat.get(k, k);
            let data = mat.data_mut();
            let (krow, tail) = data.split_at_mut((k + 1) * n);
            let krow = &krow[k * n..];
            for &r in &self.elim[k] {
                let r = r as usize;
                let row = &mut tail[(r - k - 1) * n..(r - k) * n];
                let factor = row[k] / pivot;
                row[k] = factor;
                if factor != 0.0 {
                    for &c in &self.urow[k] {
                        let c = c as usize;
                        row[c] -= factor * krow[c];
                    }
                }
            }
        }
        FastOutcome::Done
    }

    /// Full dense factorization with pivot recording, then symbolic
    /// re-analysis under the new sequence.
    fn bootstrap(&mut self, mat: &mut Matrix) -> Result<()> {
        bump_stats(|s| s.lu_bootstrap += 1);
        self.pivots = mat
            .lu_factor_recording()
            .inspect_err(|_| {
                // A failed bootstrap leaves no valid symbolic state.
                self.ready = false;
            })?
            .iter()
            .map(|&p| p as u32)
            .collect();
        self.analyze();
        self.ready = true;
        self.last_bootstrap = true;
        Ok(())
    }

    /// Symbolic elimination of the stamp pattern under the recorded pivot
    /// sequence: computes candidate scans, update lists, fill-in, and the
    /// final L/U structure.
    fn analyze(&mut self) {
        let n = self.n;
        let mut b = self.base.clone();
        self.scan = vec![Vec::new(); n];
        self.elim = vec![Vec::new(); n];
        self.urow = vec![Vec::new(); n];
        self.perm = (0..n).collect();
        for k in 0..n {
            for r in (k + 1)..n {
                if b.get(r, k) {
                    self.scan[k].push(r as u32);
                }
            }
            let p = self.pivots[k] as usize;
            if p != k {
                b.swap_rows(k, p);
                self.perm.swap(k, p);
            }
            for r in (k + 1)..n {
                if b.get(r, k) {
                    self.elim[k].push(r as u32);
                }
            }
            for c in (k + 1)..n {
                if b.get(k, c) {
                    self.urow[k].push(c as u32);
                }
            }
            for i in 0..self.elim[k].len() {
                let r = self.elim[k][i] as usize;
                b.or_row_above(r, k, k);
            }
        }
        self.lrow = vec![Vec::new(); n];
        self.urow_solve = vec![Vec::new(); n];
        for r in 0..n {
            for c in 0..r {
                if b.get(r, c) {
                    self.lrow[r].push(c as u32);
                }
            }
            for c in (r + 1)..n {
                if b.get(r, c) {
                    self.urow_solve[r].push(c as u32);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Per-thread solve workspace
// ----------------------------------------------------------------------

/// Reusable buffers for Newton solves: the MNA matrix, its pristine copy
/// (for pivot-drift recovery), the right-hand side, and the flat SoA
/// buffers for batched FET evaluation.
#[derive(Default)]
pub(crate) struct Workspace {
    pub mat: Matrix,
    pub saved: Matrix,
    pub rhs: Vec<f64>,
    pub fet_vgs: Vec<f64>,
    pub fet_vds: Vec<f64>,
    pub fet_ids: Vec<f64>,
    pub fet_gm: Vec<f64>,
    pub fet_gds: Vec<f64>,
}

impl Workspace {
    fn prepare(&mut self, n: usize) {
        if self.mat.dim() != n {
            self.mat = Matrix::zeros(n);
            self.saved = Matrix::zeros(n);
        }
        self.rhs.resize(n, 0.0);
    }
}

thread_local! {
    static WORKSPACES: RefCell<Vec<Workspace>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a pooled workspace sized for `n` unknowns. Nested
/// acquisitions (a DC solve inside a transient) draw distinct workspaces.
pub(crate) fn with_ws<R>(n: usize, f: impl FnOnce(&mut Workspace) -> R) -> R {
    let mut ws = WORKSPACES
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    ws.prepare(n);
    let out = f(&mut ws);
    WORKSPACES.with(|p| p.borrow_mut().push(ws));
    out
}

// ----------------------------------------------------------------------
// General compressed-storage engine (differential-test surface)
// ----------------------------------------------------------------------

/// Compressed sparse row matrix with a fill-reducing solve.
///
/// This is the general-purpose face of the sparse kernel: CSR storage, a
/// greedy minimum-degree column preorder on the symmetrized pattern, and a
/// left-looking LU with row partial pivoting. Reordering changes the
/// summation order, so results agree with the dense kernel to rounding
/// (the differential proptests assert 1e-12 relative), *not* bitwise —
/// which is why the characterization path uses [`SparseLu`] instead. The
/// proptests in `crates/spice/tests/kernel_equivalence.rs` exercise both.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from triplets; duplicate positions accumulate.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn from_triplets(n: usize, entries: &[(usize, usize, f64)]) -> Self {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in entries {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            rows[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *vals.last_mut().expect("entry exists") += v;
                } else {
                    cols.push(c as u32);
                    vals.push(v);
                    last = Some(c);
                }
            }
            row_ptr.push(cols.len());
        }
        Self {
            n,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Build from a dense matrix, keeping exact non-zeros.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let n = m.dim();
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = m.get(r, c);
                if v != 0.0 {
                    entries.push((r, c, v));
                }
            }
        }
        Self::from_triplets(n, &entries)
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zero count.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x` (for residual checks in tests).
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong length.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for r in 0..self.n {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[i] * x[self.cols[i] as usize];
            }
            y[r] = acc;
        }
        y
    }

    /// Greedy minimum-degree ordering on the symmetrized pattern.
    fn min_degree_order(&self) -> Vec<usize> {
        let n = self.n;
        let words = n.div_ceil(64);
        // Adjacency bitsets of A + Aᵀ (including self).
        let mut adj = vec![0u64; n * words];
        for r in 0..n {
            adj[r * words + (r >> 6)] |= 1 << (r & 63);
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.cols[i] as usize;
                adj[r * words + (c >> 6)] |= 1 << (c & 63);
                adj[c * words + (r >> 6)] |= 1 << (r & 63);
            }
        }
        let mut alive = vec![true; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            // Lowest degree, ties to the lowest index, for determinism.
            let mut best = usize::MAX;
            let mut best_deg = usize::MAX;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                let deg: u32 = adj[v * words..(v + 1) * words]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum();
                if (deg as usize) < best_deg {
                    best_deg = deg as usize;
                    best = v;
                }
            }
            order.push(best);
            alive[best] = false;
            // Eliminate: neighbors of `best` become a clique.
            let vrow: Vec<u64> = adj[best * words..(best + 1) * words].to_vec();
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                if vrow[u >> 6] & (1 << (u & 63)) != 0 {
                    for w in 0..words {
                        adj[u * words + w] |= vrow[w];
                    }
                    adj[u * words + (best >> 6)] &= !(1 << (best & 63));
                }
            }
        }
        order
    }

    /// Solve `A·x = b` via min-degree-ordered left-looking LU with row
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] (naming the original column) when a
    /// pivot column has no entry above the dense kernel's `1e-300` floor.
    ///
    /// # Panics
    ///
    /// Panics when `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let order = self.min_degree_order();
        // Column-oriented access to A.
        let mut col_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for r in 0..n {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                col_entries[self.cols[i] as usize].push((r, self.vals[i]));
            }
        }
        // L columns as (original_row, value); U columns as (step, value).
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut udiag = Vec::with_capacity(n);
        let mut pivrow = Vec::with_capacity(n);
        let mut row_step = vec![usize::MAX; n];
        let mut x = vec![0.0; n];
        let mut touched = Vec::with_capacity(n);
        for (k, &j) in order.iter().enumerate() {
            // Scatter A(:, j).
            for &(r, v) in &col_entries[j] {
                if x[r] == 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // Apply previous pivot columns in elimination order.
            let mut ucol = Vec::new();
            for t in 0..k {
                let u = x[pivrow[t]];
                if u != 0.0 {
                    ucol.push((t, u));
                    for &(r, lv) in &lcols[t] {
                        if x[r] == 0.0 {
                            touched.push(r);
                        }
                        x[r] -= lv * u;
                    }
                }
            }
            // Row pivot: largest magnitude among rows not yet eliminated.
            let mut prow = usize::MAX;
            let mut max = 0.0f64;
            for &r in &touched {
                if row_step[r] == usize::MAX {
                    let v = x[r].abs();
                    if v > max || (prow == usize::MAX && v >= max) {
                        max = v;
                        prow = r;
                    }
                }
            }
            if prow == usize::MAX || max < 1e-300 {
                for &r in &touched {
                    x[r] = 0.0;
                }
                return Err(SpiceError::SingularMatrix {
                    column: j,
                    node: None,
                });
            }
            let piv = x[prow];
            let mut lcol = Vec::new();
            for &r in &touched {
                if row_step[r] == usize::MAX && r != prow && x[r] != 0.0 {
                    lcol.push((r, x[r] / piv));
                }
            }
            lcol.sort_unstable_by_key(|&(r, _)| r);
            for &r in &touched {
                x[r] = 0.0;
            }
            touched.clear();
            row_step[prow] = k;
            pivrow.push(prow);
            udiag.push(piv);
            lcols.push(lcol);
            ucols.push(ucol);
        }
        // Forward: z = L⁻¹ P b, in step space.
        let mut z: Vec<f64> = pivrow.iter().map(|&r| b[r]).collect();
        // L columns store original rows; translate through row_step.
        for t in 0..n {
            let zt = z[t];
            if zt != 0.0 {
                for &(r, lv) in &lcols[t] {
                    z[row_step[r]] -= lv * zt;
                }
            }
        }
        // Backward: U x' = z (column-oriented), then undo the column order.
        let mut xs = vec![0.0; n];
        for k in (0..n).rev() {
            let xk = z[k] / udiag[k];
            xs[k] = xk;
            if xk != 0.0 {
                for &(t, u) in &ucols[k] {
                    z[t] -= u * xk;
                }
            }
        }
        let mut out = vec![0.0; n];
        for (k, &j) in order.iter().enumerate() {
            out[j] = xs[k];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / f64::from(1u32 << 31)) - 1.0
    }

    /// Random banded system: sparse factor+solve must equal dense bitwise.
    #[test]
    fn structural_lu_matches_dense_bitwise() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let mut seed = 0xD00D ^ n as u64;
            let mut pat = BitPattern::new(n);
            let mut proto = Matrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    if r == c {
                        pat.set(r, c);
                        proto.set(r, c, 3.0 + lcg(&mut seed).abs());
                    } else if (r as i64 - c as i64).abs() <= 2 && lcg(&mut seed) > 0.2 {
                        pat.set(r, c);
                        proto.set(r, c, lcg(&mut seed));
                    }
                }
            }
            let mut lu = SparseLu::from_pattern(pat);
            let mut saved = Matrix::zeros(n);
            // Multiple refactorizations: first bootstraps, later ones take
            // the fast path; perturb values without changing pivot winners.
            for round in 0..4 {
                let mut dense = proto.clone();
                for r in 0..n {
                    let d = dense.get(r, r);
                    dense.set(r, r, d + round as f64 * 1e-3);
                }
                let mut sparse = dense.clone();
                let perm = dense.lu_factor().unwrap();
                let mut bd: Vec<f64> = (0..n).map(|i| 0.25 * i as f64 - 1.0).collect();
                let mut bs = bd.clone();
                dense.lu_solve(&perm, &mut bd);
                lu.factor(&mut sparse, &mut saved).unwrap();
                lu.solve(&sparse, &mut bs);
                for r in 0..n {
                    for c in 0..n {
                        assert_eq!(
                            dense.get(r, c).to_bits(),
                            sparse.get(r, c).to_bits(),
                            "factor mismatch n={n} round={round} at ({r},{c})"
                        );
                    }
                }
                for i in 0..n {
                    assert_eq!(
                        bd[i].to_bits(),
                        bs[i].to_bits(),
                        "solve mismatch n={n} round={round} at {i}"
                    );
                }
            }
        }
    }

    /// Values that force different pivot winners between refactorizations
    /// must still produce dense-identical results (via drift + bootstrap).
    #[test]
    fn pivot_drift_recovers_bitwise() {
        let n = 4;
        let mut pat = BitPattern::new(n);
        for r in 0..n {
            for c in 0..n {
                pat.set(r, c);
            }
        }
        let mut lu = SparseLu::from_pattern(pat);
        let mut saved = Matrix::zeros(n);
        let mut seed = 77u64;
        for round in 0..6 {
            let mut dense = Matrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    // Swing the dominant column entry around so the pivot
                    // row changes between rounds.
                    let v = lcg(&mut seed) + if (r + round) % n == c { 5.0 } else { 0.0 };
                    dense.set(r, c, v);
                }
            }
            let mut sparse = dense.clone();
            let perm = dense.lu_factor().unwrap();
            let mut bd = vec![1.0, -2.0, 0.5, 3.0];
            let mut bs = bd.clone();
            dense.lu_solve(&perm, &mut bd);
            lu.factor(&mut sparse, &mut saved).unwrap();
            lu.solve(&sparse, &mut bs);
            for i in 0..n * n {
                assert_eq!(
                    dense.data()[i].to_bits(),
                    sparse.data()[i].to_bits(),
                    "round {round} flat index {i}"
                );
            }
            assert_eq!(bd, bs, "round {round}");
        }
    }

    #[test]
    fn singular_classification_matches_dense() {
        // Column 1 is a duplicate of column 0 -> singular at column 1.
        let n = 3;
        let mut pat = BitPattern::new(n);
        let mut m = Matrix::zeros(n);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 2.0),
            (1, 1, 2.0),
            (2, 2, 1.0),
            (0, 2, 0.5),
        ] {
            pat.set(r, c);
            m.set(r, c, v);
        }
        let mut dense = m.clone();
        let dense_err = dense.lu_factor().unwrap_err();
        let mut lu = SparseLu::from_pattern(pat);
        let mut saved = Matrix::zeros(n);
        let mut sparse = m.clone();
        // Bootstrap sees the singularity.
        let err = lu.factor(&mut sparse, &mut saved).unwrap_err();
        assert_eq!(err, dense_err);
        // A later fast-path attempt (after a successful factor) must also
        // classify identically: make it factorable, then singular again.
        let mut ok = m.clone();
        ok.set(1, 1, 7.0);
        let mut lu2 = SparseLu::from_pattern(stamp_like(&ok));
        lu2.factor(&mut ok.clone(), &mut saved).unwrap();
        let mut sing = m.clone();
        let err2 = lu2.factor(&mut sing, &mut saved).unwrap_err();
        assert_eq!(err2, dense_err);
        fn stamp_like(m: &Matrix) -> BitPattern {
            let n = m.dim();
            let mut p = BitPattern::new(n);
            for r in 0..n {
                for c in 0..n {
                    // The pattern is positional, not value-based: include
                    // every stamped slot of the 3x3 example.
                    if m.get(r, c) != 0.0 || (r, c) == (1, 1) {
                        p.set(r, c);
                    }
                }
            }
            p
        }
    }

    #[test]
    fn csr_solver_matches_dense_to_rounding() {
        let mut seed = 0xBEEF;
        for n in [2usize, 5, 12, 28] {
            let mut dense = Matrix::zeros(n);
            let mut trips = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    if r == c || ((r as i64 - c as i64).abs() <= 3 && lcg(&mut seed) > 0.4) {
                        let v = if r == c {
                            4.0 + lcg(&mut seed).abs()
                        } else {
                            lcg(&mut seed)
                        };
                        dense.set(r, c, v);
                        trips.push((r, c, v));
                    }
                }
            }
            let csr = CsrMatrix::from_triplets(n, &trips);
            let b: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let x = csr.solve(&b).unwrap();
            let mut xd = b.clone();
            crate::solver::solve_in_place(&mut dense.clone(), &mut xd).unwrap();
            for i in 0..n {
                let scale = xd[i].abs().max(1.0);
                assert!(
                    (x[i] - xd[i]).abs() <= 1e-12 * scale,
                    "n={n} i={i}: {} vs {}",
                    x[i],
                    xd[i]
                );
            }
        }
    }

    #[test]
    fn csr_singular_reports_column() {
        let csr = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        let err = csr.solve(&[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SpiceError::SingularMatrix { .. }));
    }

    #[test]
    fn kernel_spec_parsing() {
        assert_eq!(parse_kernel_spec("dense").unwrap(), KernelKind::Dense);
        assert_eq!(parse_kernel_spec(" sparse ").unwrap(), KernelKind::Sparse);
        assert!(parse_kernel_spec("fast").is_err());
        assert!(parse_warmstart_spec("on").unwrap());
        assert!(!parse_warmstart_spec("off").unwrap());
        assert!(parse_warmstart_spec("1").is_err());
    }

    #[test]
    fn override_guards_nest_and_restore() {
        let outer = kernel_override_guard(KernelKind::Dense);
        assert_eq!(current_kernel(), KernelKind::Dense);
        {
            let _inner = kernel_override_guard(KernelKind::Sparse);
            assert_eq!(current_kernel(), KernelKind::Sparse);
        }
        assert_eq!(current_kernel(), KernelKind::Dense);
        drop(outer);
        let _w = warmstart_override_guard(false);
        assert!(!warmstart_enabled());
    }

    #[test]
    fn dc_memo_key_separates_dc_relevant_changes() {
        let build = |r: f64, cap: f64, v0: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.vsource("V1", a, GROUND, Source::ramp(v0, 1.0, 20e-12, 10e-12));
            c.resistor("R1", a, b, r);
            c.capacitor("C1", b, GROUND, cap);
            c
        };
        let base = dc_memo_key(&build(1e3, 1e-15, 0.5), 1e-12);
        // Capacitance is DC-irrelevant: same key.
        assert_eq!(base, dc_memo_key(&build(1e3, 9e-15, 0.5), 1e-12));
        // Resistance, t=0 source value and gmin are DC-relevant.
        assert_ne!(base, dc_memo_key(&build(2e3, 1e-15, 0.5), 1e-12));
        assert_ne!(base, dc_memo_key(&build(1e3, 1e-15, 0.25), 1e-12));
        assert_ne!(base, dc_memo_key(&build(1e3, 1e-15, 0.5), 1e-9));
    }

    #[test]
    fn stats_take_and_add_round_trip() {
        reset_kernel_stats();
        bump_stats(|s| {
            s.newton_iters += 3;
            s.lu_fast += 2;
        });
        let taken = take_kernel_stats();
        assert_eq!(taken.newton_iters, 3);
        assert_eq!(kernel_stats(), KernelStats::ZERO);
        add_kernel_stats(taken);
        assert_eq!(kernel_stats().lu_fast, 2);
        reset_kernel_stats();
    }
}
