//! Property-based pins on the surrogate's two load-bearing guarantees:
//! the feature normalizer is an exact affine round-trip (inference applies
//! the same map training saw), and predicted delay tables are monotone in
//! load *whatever* the model weights say — the audit firewall's
//! `delay_monotone_load` invariant holds by construction, not by luck.

use proptest::prelude::*;

use cryo_device::CornerScalars;
use cryo_liberty::{ArcKind, Cell, LogicFunction, Lut2, Pin, TimingArc, TimingSense};
use cryo_surrogate::features::N_FEATURES;
use cryo_surrogate::{Mlp, Normalizer, Rng, Surrogate};

fn corner(vdd: f64, temp: f64, vth_shift: f64) -> CornerScalars {
    CornerScalars {
        vdd,
        temp,
        vth_n: 0.25 + vth_shift,
        vth_p: -0.25 - vth_shift,
        nfactor_n: 1.2,
        nfactor_p: 1.25,
        ion_n: 1.1e-4,
        ion_p: 8.2e-5,
        ioff_n: 3e-9,
        ioff_p: 5e-9,
    }
}

fn surrogate_from_seed(seed: u64, hidden: usize, vth_shift: f64) -> Surrogate {
    let mut rng = Rng::new(seed);
    Surrogate {
        model: Mlp::init(&[N_FEATURES, hidden, 1], &mut rng),
        norm: Normalizer {
            lo: vec![-2.0; N_FEATURES],
            hi: vec![2.0; N_FEATURES],
        },
        warm_sc: corner(0.70, 300.0, 0.0),
        cold_sc: corner(0.60, 10.0, vth_shift),
    }
}

fn cell_with_delays(n1: usize, n2: usize, base: f64, jitter: &[f64]) -> Cell {
    let index1: Vec<f64> = (0..n1).map(|i| 1e-12 * (i + 1) as f64).collect();
    let index2: Vec<f64> = (0..n2).map(|i| 1e-15 * (i + 1) as f64).collect();
    let mut values = Vec::with_capacity(n1 * n2);
    for r in 0..n1 {
        for c in 0..n2 {
            // Monotone warm table with bounded per-entry jitter on top.
            values.push(base * (1.0 + 0.3 * r as f64 + 0.5 * c as f64) + jitter[r * n2 + c]);
        }
    }
    let t = Lut2::new(index1, index2, values).unwrap();
    let f = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
    Cell {
        name: "INVx1".into(),
        area: 0.05,
        pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
        arcs: vec![TimingArc {
            related_pin: "A".into(),
            pin: "Y".into(),
            kind: ArcKind::Combinational,
            sense: TimingSense::NegativeUnate,
            cell_rise: t.clone(),
            cell_fall: t.clone(),
            rise_transition: t.clone(),
            fall_transition: t,
        }],
        power_arcs: vec![],
        leakage_states: vec![(0, 1e-9)],
        ff: None,
        drive: 1,
    }
}

proptest! {
    /// Normalize/denormalize is an exact round-trip on the fitted range,
    /// for arbitrary (finite, spread-out) feature columns.
    #[test]
    fn normalizer_round_trips(
        lo_seed in -1e3f64..1e3,
        span in 1e-6f64..1e6,
        frac in proptest::collection::vec(0.0f64..1.0, N_FEATURES),
    ) {
        let lo = vec![lo_seed; N_FEATURES];
        let hi = vec![lo_seed + span; N_FEATURES];
        let row: Vec<f64> = frac.iter().map(|f| lo_seed + f * span).collect();
        let n = Normalizer { lo, hi };
        let z = n.normalize(&row);
        for &v in &z {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "normalized out of range: {v}");
        }
        let back = n.denormalize(&z);
        for (a, b) in back.iter().zip(&row) {
            prop_assert!((a - b).abs() <= 1e-9 * span.max(1.0), "round trip drifted: {a} vs {b}");
        }
    }

    /// Whatever the (random, untrained) weights and whatever bounded jitter
    /// the warm table carries, every predicted delay table is monotone
    /// non-decreasing along the load axis.
    #[test]
    fn predicted_delay_tables_stay_load_monotone(
        seed in 0u64..1_000,
        hidden in 2usize..12,
        n1 in 2usize..5,
        n2 in 2usize..5,
        base in 1e-13f64..1e-11,
        vth_shift in 0.0f64..0.3,
        jitter_frac in proptest::collection::vec(-0.4f64..0.4, 16),
    ) {
        let jitter: Vec<f64> = jitter_frac.iter().map(|j| j * base).collect();
        let cell = cell_with_delays(n1, n2, base, &jitter);
        let sur = surrogate_from_seed(seed, hidden, vth_shift);
        let pred = sur.predict_cell(&cell);
        for arc in &pred.arcs {
            for (tag, t) in [("cell_rise", &arc.cell_rise), ("cell_fall", &arc.cell_fall)] {
                for (r, row) in t.values().chunks(t.index2().len()).enumerate() {
                    for w in row.windows(2) {
                        prop_assert!(
                            w[1] >= w[0],
                            "{tag} row {r} not monotone under seed {seed}: {row:?}"
                        );
                    }
                }
                for &v in t.values() {
                    prop_assert!(v.is_finite() && v > 0.0, "{tag} must stay positive finite");
                }
            }
        }
    }
}
