//! The supervised end-to-end pipeline: checkpoint/resume at every stage
//! boundary with zero repeated work, deadline budgets as structured
//! timeouts, degraded-mode signoff that is byte-identical across job
//! counts, and terminal (non-retried) failure classification.

use std::path::PathBuf;
use std::time::Duration;

use cryo_soc::core::supervise::{Stage, Supervisor, SupervisorConfig};
use cryo_soc::core::{CoreError, CryoFlow, FlowConfig};
use cryo_soc::spice::{fault, FaultPlan};
use cryo_soc::sta::counters;

/// A unique scratch cache directory, wiped before use.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryo_supflow_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn flow_at(dir: &PathBuf, plan: Option<FaultPlan>, jobs: usize) -> CryoFlow {
    let mut cfg = FlowConfig::fast(dir);
    cfg.fault_plan = plan;
    cfg.jobs = jobs;
    CryoFlow::new(cfg)
}

fn drain_counters() {
    let _ = fault::take_sim_counts();
    let _ = counters::take_eval_count();
}

#[test]
fn killed_at_every_stage_boundary_resumes_with_zero_repeated_work() {
    let dir = scratch("resume");
    let flow = flow_at(&dir, None, 1);

    // Simulate a kill at each stage boundary in turn: every run halts one
    // stage later than the last, over the same checkpoint store. Each
    // stage must execute exactly once across the whole ladder, and the
    // simulator/arc counters must attribute work only to the fresh stage.
    for (i, stage) in Stage::ALL.iter().enumerate() {
        let sup = Supervisor::new(
            flow.clone(),
            SupervisorConfig {
                halt_after: Some(*stage),
                ..SupervisorConfig::default()
            },
        );
        drain_counters();
        let rep = sup.run().expect("supervised run");
        let sims = fault::take_sim_counts();
        let evals = counters::take_eval_count();

        assert_eq!(rep.stages.len(), i + 1, "halted after {}", stage.name());
        assert!(!rep.completed);
        for done in &rep.stages[..i] {
            assert!(
                done.from_checkpoint,
                "{} must resume from its checkpoint when halting after {}",
                done.stage.name(),
                stage.name()
            );
            assert_eq!(done.attempts, 0);
            assert_eq!(done.dc_solves + done.tran_solves + done.arc_evals, 0);
        }
        let fresh = &rep.stages[i];
        assert!(!fresh.from_checkpoint, "{} ran fresh", stage.name());
        assert_eq!(fresh.attempts, 1);

        match stage {
            Stage::Charlib300 | Stage::Charlib10 => {
                assert!(sims.tran > 0, "{} simulates", stage.name());
                assert_eq!(evals, 0);
            }
            Stage::Sta300 | Stage::Sta10 => {
                assert_eq!((sims.dc, sims.tran), (0, 0), "STA must not SPICE");
                assert!(evals > 0, "{} evaluates arcs", stage.name());
            }
            _ => {
                assert_eq!((sims.dc, sims.tran), (0, 0), "{}", stage.name());
                assert_eq!(evals, 0, "{}", stage.name());
            }
        }
    }

    // A final unhalted run resumes everything: no stage recomputes, no
    // SPICE solve or arc evaluation anywhere, and the verdict is present.
    let sup = Supervisor::new(flow, SupervisorConfig::default());
    drain_counters();
    let rep = sup.run().expect("fully resumed run");
    let sims = fault::take_sim_counts();
    let evals = counters::take_eval_count();
    assert!(rep.completed);
    assert_eq!(rep.stages.len(), Stage::ALL.len());
    assert!(rep.stages.iter().all(|r| r.from_checkpoint));
    assert_eq!((sims.dc, sims.tran, evals), (0, 0, 0), "zero repeated work");
    let verdict = rep.verdict.expect("classify verdict");
    // Table 1: the cryogenic Vth shift slows the critical path ~4.6 %.
    assert!(
        verdict.fmax_10_hz < verdict.fmax_300_hz,
        "10 K critical path is longer"
    );
    assert!(verdict.cryo_fmax_ratio > 0.8 && verdict.cryo_fmax_ratio < 1.0);
    assert!(verdict.within_decoherence);
}

#[test]
fn degraded_signoff_is_byte_identical_across_job_counts() {
    // Arm STA arc-lookup faults (scoped to the STA stages) so signoff runs
    // in degraded mode, then prove the whole artifact chain — timing
    // reports, power, verdict — is byte-identical between the serial and
    // parallel characterization paths, cold caches both.
    let plan = FaultPlan {
        sta_lookup: 0.03,
        scope: Some("sta:".into()),
        ..FaultPlan::new(5)
    };
    let mut blobs = Vec::new();
    for jobs in [1usize, 8] {
        let dir = scratch(&format!("jobs{jobs}"));
        let sup = Supervisor::new(
            flow_at(&dir, Some(plan.clone()), jobs),
            SupervisorConfig::default(),
        );
        let rep = sup.run().expect("degraded supervised run");
        assert!(rep.completed);
        let verdict = rep.verdict.as_ref().expect("verdict");
        assert!(
            verdict.degraded_arcs_300 > 0 && verdict.degraded_arcs_10 > 0,
            "fault plan must actually degrade signoff (got {}/{})",
            verdict.degraded_arcs_300,
            verdict.degraded_arcs_10
        );
        // Collect the raw checkpoint payloads — byte identity, not just
        // value identity.
        let key = sup.pipeline_key().unwrap();
        let store = cryo_soc::cells::CheckpointStore::open(&dir, "pipeline", &key).unwrap();
        let chain: Vec<String> = ["sta300", "sta10", "activity", "power", "classify"]
            .iter()
            .map(|s| store.load_blob(s).unwrap_or_else(|| panic!("{s} blob")))
            .collect();
        blobs.push(chain);
    }
    assert_eq!(blobs[0], blobs[1], "jobs=1 vs jobs=8 signoff diverged");
    // Provenance is part of the artifact: the checkpointed timing report
    // names the injected arcs.
    assert!(blobs[0][0].contains("InjectedFault"));
}

#[test]
fn stage_overrun_is_a_structured_timeout_and_leaves_no_checkpoint() {
    // A 200 ms budget: the calibrate stage (microseconds of hashing) fits,
    // cold characterization (seconds of SPICE) cannot.
    let dir = scratch("timeout");
    let flow = flow_at(&dir, None, 1);
    let sup = Supervisor::new(
        flow,
        SupervisorConfig {
            stage_budget: Duration::from_millis(200),
            ..SupervisorConfig::default()
        },
    );
    match sup.run() {
        Err(CoreError::StageTimeout { stage, budget_s }) => {
            assert_eq!(stage, "charlib300");
            assert!(budget_s <= 0.2 + f64::EPSILON);
        }
        other => panic!("expected StageTimeout, got {other:?}"),
    }
    // Completed stages checkpointed; the timed-out stage left nothing
    // behind, so it reruns fresh next time.
    let key = sup.pipeline_key().unwrap();
    let store = cryo_soc::cells::CheckpointStore::open(&dir, "pipeline", &key).unwrap();
    assert!(store.load_blob("calibrate").is_some());
    assert!(store.load_blob("charlib300").is_none());
}

#[test]
fn coverage_collapse_is_terminal_and_not_retried() {
    // Kill every solve: characterization degrades all the way to zero
    // coverage, which must surface as the structured Coverage error after
    // exactly one attempt (retrying a deterministic shortfall burns
    // budget for nothing).
    let dir = scratch("coverage");
    let plan = FaultPlan {
        dc_no_convergence: 1.0,
        tran_no_convergence: 1.0,
        ..FaultPlan::new(9)
    };
    let started = std::time::Instant::now();
    let sup = Supervisor::new(flow_at(&dir, Some(plan), 1), SupervisorConfig::default());
    match sup.run() {
        Err(CoreError::Coverage {
            corner, coverage, ..
        }) => {
            assert!(corner.contains("300"), "300 K corner fails first");
            assert!(coverage < 0.95);
        }
        other => panic!("expected Coverage, got {other:?}"),
    }
    // One attempt, no backoff sleeps: nowhere near the retry ladder's
    // worst case. (Generous bound — the point is "no retries", not speed.)
    assert!(started.elapsed() < Duration::from_secs(120));
}
