//! Transient analysis with trapezoidal integration.
//!
//! Each time step builds capacitor companion models (`geq = 2C/Δt` plus a
//! history current) and runs the same damped Newton iteration as the DC
//! solver. The step size is fixed and chosen by the caller — standard-cell
//! characterization knows its stimulus window, so adaptive stepping would
//! buy nothing but nondeterminism.

use crate::circuit::{Circuit, ElementKind, NodeId, GROUND};
use crate::dc::{dc_operating_point_with, newton, CapCompanion};
use crate::fault::{self, FaultSite, SolveFault};
use crate::sparse::{self, KernelKind, SparseLu};
use crate::wave::Waveform;
use crate::{Result, SpiceError};

/// Transient analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranConfig {
    /// Stop time, seconds.
    pub tstop: f64,
    /// Fixed step size, seconds.
    pub dt: f64,
    /// Shunt conductance from every node to ground during Newton solves.
    /// The default `1e-12` S is invisible in the results; the
    /// characterization retry ladder relaxes it to widen the convergence
    /// basin on pathological arcs.
    pub gmin: f64,
}

impl TranConfig {
    /// A window of `tstop` seconds resolved into `steps` equal steps.
    ///
    /// # Panics
    ///
    /// Panics unless `tstop > 0` and `steps >= 2`.
    #[must_use]
    pub fn with_steps(tstop: f64, steps: usize) -> Self {
        assert!(tstop > 0.0 && steps >= 2, "degenerate transient window");
        Self {
            tstop,
            dt: tstop / steps as f64,
            gmin: 1e-12,
        }
    }

    /// Same window with a relaxed (or tightened) Newton gmin.
    #[must_use]
    pub fn with_gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }
}

/// Result of a transient run: every unknown at every time point.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Flat row-major storage: unknown `u` at step `k` lives at
    /// `k * n_unknowns + u` (one allocation instead of one per step).
    solution: Vec<f64>,
    n_unknowns: usize,
    n_nodes: usize,
}

impl TranResult {
    /// The simulated time points, seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of a node.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Waveform {
        let v = self
            .solution
            .chunks_exact(self.n_unknowns)
            .map(|x| if node == GROUND { 0.0 } else { x[node - 1] })
            .collect();
        Waveform::new(self.times.clone(), v)
    }

    /// Current waveform through a voltage source's branch (amperes, into the
    /// positive terminal — negative while the source delivers power).
    #[must_use]
    pub fn source_current(&self, branch: usize) -> Waveform {
        let i = self
            .solution
            .chunks_exact(self.n_unknowns)
            .map(|x| x[self.n_nodes - 1 + branch])
            .collect();
        Waveform::new(self.times.clone(), i)
    }

    /// Final solution vector (for chaining analyses).
    #[must_use]
    pub fn final_state(&self) -> &[f64] {
        &self.solution[self.solution.len() - self.n_unknowns..]
    }
}

/// Run a transient analysis.
///
/// The initial condition is the DC operating point at the sources' `t = 0`
/// values.
///
/// # Errors
///
/// Propagates DC-solve errors for the initial point and
/// [`SpiceError::NoConvergence`] if any time step fails.
pub fn transient(ckt: &Circuit, cfg: &TranConfig) -> Result<TranResult> {
    if ckt.elements().is_empty() {
        return Err(SpiceError::EmptyCircuit);
    }
    assert!(
        cfg.dt > 0.0 && cfg.tstop > 0.0,
        "degenerate transient window"
    );
    fault::count_tran_solve();
    let _poison = match fault::begin_solve(FaultSite::TranSolve) {
        Some(SolveFault::NanDevice) => Some(fault::NanPoisonGuard::armed()),
        Some(f) => return Err(fault::injected_error(f, "tran")),
        None => None,
    };
    let op = dc_operating_point_with(ckt, cfg.gmin)?;
    let mut x = op.raw().to_vec();

    // Collect capacitor bookkeeping in element order.
    let caps_meta: Vec<(NodeId, NodeId, f64)> = ckt
        .elements()
        .iter()
        .filter_map(|e| match e.kind {
            ElementKind::Capacitor { a, b, farads } => Some((a, b, farads)),
            _ => None,
        })
        .collect();
    // Trapezoidal history: start from DC (capacitor currents are zero).
    let mut i_prev: Vec<f64> = vec![0.0; caps_meta.len()];

    // One symbolic analysis (capacitor stamps included) serves every Newton
    // iteration of every timestep of this run.
    let mut slu = match sparse::current_kernel() {
        KernelKind::Sparse => Some(SparseLu::for_circuit(ckt, true)),
        KernelKind::Dense => None,
    };

    let n_unknowns = ckt.unknowns();
    let steps = (cfg.tstop / cfg.dt).round() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut solution = Vec::with_capacity((steps + 1) * n_unknowns);
    times.push(0.0);
    solution.extend_from_slice(&x);

    // One trapezoidal step from `t_prev` to `t`; on Newton failure the
    // step is split into shrinking substeps (sharp regenerative edges in
    // latch circuits occasionally defeat the full-step solve).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        ckt: &Circuit,
        caps_meta: &[(NodeId, NodeId, f64)],
        x: &mut Vec<f64>,
        i_prev: &mut [f64],
        t_prev: f64,
        t: f64,
        gmin: f64,
        depth: usize,
        slu: &mut Option<SparseLu>,
    ) -> Result<()> {
        let v_of = |node: NodeId, x: &[f64]| -> f64 {
            if node == GROUND {
                0.0
            } else {
                x[node - 1]
            }
        };
        let dt = t - t_prev;
        let geq: Vec<f64> = caps_meta.iter().map(|&(_, _, c)| 2.0 * c / dt).collect();
        let hist: Vec<f64> = caps_meta
            .iter()
            .enumerate()
            .map(|(i, &(a, b, _))| geq[i] * (v_of(a, x) - v_of(b, x)) + i_prev[i])
            .collect();
        let companion = CapCompanion { geq, hist };
        match newton(ckt, x, t, gmin, 1.0, Some(&companion), "tran", slu.as_mut()) {
            Ok(next) => {
                for (i, &(a, b, _)) in caps_meta.iter().enumerate() {
                    let v_new = v_of(a, &next) - v_of(b, &next);
                    i_prev[i] = companion.geq[i] * v_new - companion.hist[i];
                }
                *x = next;
                Ok(())
            }
            Err(e) => {
                if depth >= 4 {
                    return Err(e);
                }
                let mid = 0.5 * (t_prev + t);
                advance(ckt, caps_meta, x, i_prev, t_prev, mid, gmin, depth + 1, slu)?;
                advance(ckt, caps_meta, x, i_prev, mid, t, gmin, depth + 1, slu)
            }
        }
    }

    for k in 1..=steps {
        let t = k as f64 * cfg.dt;
        let t_prev = (k - 1) as f64 * cfg.dt;
        advance(
            ckt, &caps_meta, &mut x, &mut i_prev, t_prev, t, cfg.gmin, 0, &mut slu,
        )?;
        times.push(t);
        solution.extend_from_slice(&x);
    }

    Ok(TranResult {
        times,
        solution,
        n_unknowns,
        n_nodes: ckt.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use cryo_device::{FinFet, ModelCard, Polarity};

    #[test]
    fn rc_step_response_matches_analytic() {
        // R = 1 kΩ, C = 1 pF, tau = 1 ns; step at t = 0+.
        let mut c = Circuit::new();
        let inn = c.node("in");
        let out = c.node("out");
        c.vsource(
            "V1",
            inn,
            GROUND,
            Source::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        );
        c.resistor("R1", inn, out, 1e3);
        c.capacitor("C1", out, GROUND, 1e-12);
        let res = transient(&c, &TranConfig::with_steps(5e-9, 2000)).unwrap();
        let w = res.voltage(out);
        for &t in &[0.5e-9, 1e-9, 2e-9, 4e-9] {
            let analytic = 1.0 - (-(t - 1e-12) / 1e-9_f64).exp();
            let sim = w.value_at(t);
            assert!(
                (sim - analytic).abs() < 0.01,
                "t = {t:.2e}: sim {sim:.4} vs analytic {analytic:.4}"
            );
        }
    }

    #[test]
    fn capacitor_conserves_charge_through_supply() {
        // Charging a 1 pF cap to 1 V must pull 1 pC through the source.
        let mut c = Circuit::new();
        let inn = c.node("in");
        let out = c.node("out");
        c.vsource("V1", inn, GROUND, Source::ramp(0.0, 1.0, 1e-10, 1e-9));
        c.resistor("R1", inn, out, 500.0);
        c.capacitor("C1", out, GROUND, 1e-12);
        let res = transient(&c, &TranConfig::with_steps(8e-9, 3000)).unwrap();
        let i = res.source_current(0);
        let charge = -i.integral(); // delivered charge
        assert!(
            (charge - 1e-12).abs() < 2e-14,
            "delivered charge = {charge:.3e} C"
        );
    }

    #[test]
    fn inverter_switches_and_measures_delay() {
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inn = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
        c.vsource("VIN", inn, GROUND, Source::ramp(0.0, vdd, 20e-12, 10e-12));
        c.finfet("MN", out, inn, GROUND, FinFet::new(&nc, 300.0, 2));
        c.finfet("MP", out, inn, vdd_n, FinFet::new(&pc, 300.0, 3));
        c.capacitor("CL", out, GROUND, 2e-15);
        let res = transient(&c, &TranConfig::with_steps(300e-12, 1200)).unwrap();
        let vin = res.voltage(inn);
        let vout = res.voltage(out);
        assert!(vout.value_at(0.0) > 0.9 * vdd, "output starts high");
        assert!(vout.value_at(290e-12) < 0.1 * vdd, "output ends low");
        let t_in = vin.cross(vdd / 2.0, true, 0.0).unwrap();
        let t_out = vout.cross(vdd / 2.0, false, 0.0).unwrap();
        let delay = t_out - t_in;
        assert!(
            delay > 0.2e-12 && delay < 60e-12,
            "inverter delay = {delay:.3e} s"
        );
    }

    #[test]
    fn cryo_inverter_is_slightly_slower() {
        // The paper's Table 1: ~4.6 % critical-path slowdown at 10 K.
        let vdd = 0.7;
        let nc = ModelCard::nominal(Polarity::N);
        let pc = ModelCard::nominal(Polarity::P);
        let delay_at = |temp: f64| -> f64 {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let inn = c.node("in");
            let out = c.node("out");
            c.vsource("VDD", vdd_n, GROUND, Source::dc(vdd));
            c.vsource("VIN", inn, GROUND, Source::ramp(0.0, vdd, 20e-12, 10e-12));
            c.finfet("MN", out, inn, GROUND, FinFet::new(&nc, temp, 2));
            c.finfet("MP", out, inn, vdd_n, FinFet::new(&pc, temp, 3));
            c.capacitor("CL", out, GROUND, 2e-15);
            let res = transient(&c, &TranConfig::with_steps(300e-12, 1200)).unwrap();
            let t_in = res.voltage(inn).cross(vdd / 2.0, true, 0.0).unwrap();
            let t_out = res.voltage(out).cross(vdd / 2.0, false, 0.0).unwrap();
            t_out - t_in
        };
        let d300 = delay_at(300.0);
        let d10 = delay_at(10.0);
        let ratio = d10 / d300;
        assert!(
            (0.95..1.35).contains(&ratio),
            "10 K / 300 K fall delay ratio = {ratio:.3} ({d300:.3e} -> {d10:.3e})"
        );
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(
            transient(&c, &TranConfig::with_steps(1e-9, 10)),
            Err(SpiceError::EmptyCircuit)
        ));
    }
}
