//! Extension study: the full temperature trajectory between the paper's two
//! corners. Characterizes a representative cell subset at intermediate
//! cryogenic temperatures (the regime of the paper's refs. [18]–[23]:
//! 77 K / 40 K studies) and reports how delay and leakage evolve.
use cryo_cells::{topology, CharConfig, Characterizer};
use cryo_device::{FinFet, IvCurve, ModelCard, Polarity};

fn main() {
    let nfet = ModelCard::nominal(Polarity::N);
    let pfet = ModelCard::nominal(Polarity::P);
    let cells = vec![
        topology::inverter(1),
        topology::inverter(4),
        topology::nand(2, 2),
        topology::nor(2, 2),
        topology::xor2(2),
        topology::full_adder(1),
    ];
    println!("=== Temperature trajectory: 300 K -> 10 K ===");
    println!(
        "{:>7} {:>12} {:>12} {:>16} {:>12} {:>12}",
        "T (K)", "mean delay", "vs 300 K", "cell leakage", "Vth (n)", "SS (n)"
    );
    let mut base = None;
    for temp in [300.0, 200.0, 150.0, 100.0, 77.0, 40.0, 10.0] {
        let engine = Characterizer::new(&nfet, &pfet, CharConfig::fast(temp));
        let lib = engine
            .characterize_library(&format!("sweep_{temp}"), &cells)
            .expect("characterization");
        let stats = lib.stats();
        let b = *base.get_or_insert(stats.mean_delay);
        let dev = FinFet::new(&nfet, temp, 1);
        let curve = IvCurve::sweep(&dev, 0.05, 0.75, 200);
        let vth = curve.vgs_at_current(1e-6).unwrap_or(f64::NAN);
        let ss = curve
            .subthreshold_swing(5e-11, 2e-7)
            .unwrap_or(f64::NAN);
        println!(
            "{temp:>7.0} {:>9.2} ps {:>11.3}x {:>13.3e} W {:>9.3} V {:>7.1} mV/dec",
            stats.mean_delay * 1e12,
            stats.mean_delay / b,
            stats.total_avg_leakage,
            vth,
            ss
        );
    }
    println!("\n(Leakage falls monotonically and collapses below ~100 K. Delay follows a");
    println!(" bathtub: the Vth rise dominates first — worst near 150 K — before the");
    println!(" mobility gain claws most of it back by 10 K, consistent with the 77 K /");
    println!(" 40 K literature the paper cites.)");
}
