//! The gate-level design container.

use std::collections::HashMap;

use cryo_liberty::Library;

use crate::sram::SramMacro;
use crate::{NetlistError, Result};

/// Identifier of a net within a [`Design`].
pub type NetId = usize;

/// A standard-cell instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (hierarchical path, flattened).
    pub name: String,
    /// Library cell name, e.g. `NAND2x2`.
    pub cell: String,
    /// Input pin connections `(pin, net)`, in the cell's function bit order.
    pub inputs: Vec<(String, NetId)>,
    /// Output pin connections `(pin, net)`.
    pub outputs: Vec<(String, NetId)>,
    /// Clock connection for sequential cells.
    pub clock: Option<NetId>,
    /// Functional-block tag used by activity-based power analysis.
    pub region: String,
}

/// An SRAM macro instance (cache array, register file).
#[derive(Debug, Clone)]
pub struct MacroInstance {
    /// Instance name.
    pub name: String,
    /// The macro's electrical model.
    pub spec: SramMacro,
    /// Clock net.
    pub clock: NetId,
    /// Address/data/control input nets (timing endpoints).
    pub inputs: Vec<NetId>,
    /// Data output nets (timing startpoints).
    pub outputs: Vec<NetId>,
    /// Functional-block tag.
    pub region: String,
}

/// A flat gate-level design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Design name.
    pub name: String,
    net_names: Vec<String>,
    instances: Vec<Instance>,
    macros: Vec<MacroInstance>,
    /// Primary inputs.
    pub primary_inputs: Vec<NetId>,
    /// Primary outputs.
    pub primary_outputs: Vec<NetId>,
    /// The clock net, if the design is sequential.
    pub clock: Option<NetId>,
}

impl Design {
    /// Create an empty design.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Register a new net and return its id.
    pub fn add_net(&mut self, name: &str) -> NetId {
        self.net_names.push(name.to_string());
        self.net_names.len() - 1
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id]
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Add a cell instance.
    pub fn add_instance(&mut self, inst: Instance) {
        self.instances.push(inst);
    }

    /// Add a macro instance.
    pub fn add_macro(&mut self, m: MacroInstance) {
        self.macros.push(m);
    }

    /// Cell instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Macro instances.
    #[must_use]
    pub fn macros(&self) -> &[MacroInstance] {
        &self.macros
    }

    /// Total standard-cell instance count.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.instances.len()
    }


    /// Rewire one input pin of an instance onto a different net (used by
    /// netlist optimization passes).
    ///
    /// # Panics
    ///
    /// Panics if the instance index or pin name is unknown.
    pub fn rewire_input(&mut self, instance: usize, pin: &str, new_net: NetId) {
        let inst = &mut self.instances[instance];
        let slot = inst
            .inputs
            .iter_mut()
            .find(|(p, _)| p == pin)
            .unwrap_or_else(|| panic!("{} has no input pin {pin}", inst.name));
        slot.1 = new_net;
    }

    /// Estimated wire capacitance of a net from its fanout (placement
    /// parasitic model: base routing plus per-sink stubs), farads.
    #[must_use]
    pub fn wire_cap(&self, fanout: usize) -> f64 {
        0.06e-15 + 0.11e-15 * fanout as f64
    }

    /// Build the net → (driver instance, loads) connectivity index.
    ///
    /// Index entries: `drivers[net]` = instance indices driving the net
    /// (macro outputs are encoded as `usize::MAX - macro_index`), and
    /// `loads[net]` = instance indices loading it.
    #[must_use]
    pub fn connectivity(&self) -> Connectivity {
        let mut drivers: Vec<Vec<DriverRef>> = vec![Vec::new(); self.net_count()];
        let mut loads: Vec<Vec<LoadRef>> = vec![Vec::new(); self.net_count()];
        for (i, inst) in self.instances.iter().enumerate() {
            for (pin, net) in &inst.outputs {
                drivers[*net].push(DriverRef::Cell {
                    instance: i,
                    pin: pin.clone(),
                });
            }
            for (pin, net) in &inst.inputs {
                loads[*net].push(LoadRef::Cell {
                    instance: i,
                    pin: pin.clone(),
                });
            }
            if let Some(clk) = inst.clock {
                loads[clk].push(LoadRef::Cell {
                    instance: i,
                    pin: "CLK".to_string(),
                });
            }
        }
        for (m, mac) in self.macros.iter().enumerate() {
            for net in &mac.outputs {
                drivers[*net].push(DriverRef::Macro { index: m });
            }
            for net in &mac.inputs {
                loads[*net].push(LoadRef::Macro { index: m });
            }
            loads[mac.clock].push(LoadRef::Macro { index: m });
        }
        Connectivity { drivers, loads }
    }

    /// Check every instance maps to a library cell, every internal net has
    /// exactly one driver, and inputs drive nothing twice.
    ///
    /// # Errors
    ///
    /// The first violated rule as a [`NetlistError`].
    pub fn check(&self, lib: &Library) -> Result<()> {
        for inst in &self.instances {
            if lib.cell(&inst.cell).is_err() {
                return Err(NetlistError::UnmappedCell {
                    instance: inst.name.clone(),
                    cell: inst.cell.clone(),
                });
            }
        }
        let conn = self.connectivity();
        for net in 0..self.net_count() {
            let n_drivers = conn.drivers[net].len()
                + usize::from(self.primary_inputs.contains(&net))
                + usize::from(self.clock == Some(net));
            if n_drivers != 1 && !(n_drivers == 0 && conn.loads[net].is_empty()) {
                return Err(NetlistError::DriverConflict {
                    net: self.net_name(net).to_string(),
                    drivers: n_drivers,
                });
            }
        }
        Ok(())
    }

    /// Per-region instance counts (reporting).
    #[must_use]
    pub fn region_histogram(&self) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for inst in &self.instances {
            *h.entry(inst.region.clone()).or_insert(0) += 1;
        }
        h
    }

    /// Total cell area by summing library cell areas, square micrometres.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnmappedCell`] for instances missing in `lib`.
    pub fn total_area(&self, lib: &Library) -> Result<f64> {
        let mut area = 0.0;
        for inst in &self.instances {
            let cell = lib
                .cell(&inst.cell)
                .map_err(|_| NetlistError::UnmappedCell {
                    instance: inst.name.clone(),
                    cell: inst.cell.clone(),
                })?;
            area += cell.area;
        }
        Ok(area)
    }
}

/// A driver of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverRef {
    /// Driven by a cell instance output pin.
    Cell {
        /// Index into [`Design::instances`].
        instance: usize,
        /// Output pin name.
        pin: String,
    },
    /// Driven by a macro data output.
    Macro {
        /// Index into [`Design::macros`].
        index: usize,
    },
}

/// A load on a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadRef {
    /// Loads a cell instance input pin.
    Cell {
        /// Index into [`Design::instances`].
        instance: usize,
        /// Input pin name.
        pin: String,
    },
    /// Loads a macro input.
    Macro {
        /// Index into [`Design::macros`].
        index: usize,
    },
}

/// Net connectivity index.
#[derive(Debug, Clone)]
pub struct Connectivity {
    /// Per-net driver list.
    pub drivers: Vec<Vec<DriverRef>>,
    /// Per-net load list.
    pub loads: Vec<Vec<LoadRef>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_design() -> Design {
        let mut d = Design::new("tiny");
        let a = d.add_net("a");
        let b = d.add_net("b");
        let y = d.add_net("y");
        d.primary_inputs = vec![a, b];
        d.primary_outputs = vec![y];
        d.add_instance(Instance {
            name: "u1".into(),
            cell: "NAND2x1".into(),
            inputs: vec![("A".into(), a), ("B".into(), b)],
            outputs: vec![("Y".into(), y)],
            clock: None,
            region: "core".into(),
        });
        d
    }

    #[test]
    fn connectivity_index() {
        let d = tiny_design();
        let c = d.connectivity();
        assert_eq!(c.drivers[2].len(), 1);
        assert_eq!(c.loads[0].len(), 1);
        assert_eq!(c.loads[2].len(), 0);
    }

    #[test]
    fn wire_cap_grows_with_fanout() {
        let d = tiny_design();
        assert!(d.wire_cap(4) > d.wire_cap(1));
        assert!(d.wire_cap(0) > 0.0);
    }

    #[test]
    fn region_histogram_counts() {
        let d = tiny_design();
        let h = d.region_histogram();
        assert_eq!(h["core"], 1);
    }
}
