//! SPICE kernel microbench: the dense LU baseline against the structural
//! sparse kernel on the analyses characterization actually runs.
//!
//! Three comparisons, each `dense` vs `sparse`:
//!
//! - `dc_chain`: Newton DC operating point of a 6-stage FinFET chain (the
//!   gmin ladder plus polish — symbolic analysis amortizes across rungs).
//! - `tran_chain`: 120-step transient of the same chain (the symbolic
//!   analysis amortizes across every timestep and Newton iteration).
//! - `lu_band`: raw factor+solve of a banded MNA-shaped system via the
//!   fill-reducing `CsrMatrix` engine against the dense in-place solver
//!   (the only comparison here that is 1e-12, not bitwise).
//!
//! Warm starts are forced off so the numbers isolate the kernel itself;
//! the memo's effect shows up in the `charlib` bench. Measured results are
//! recorded in `BENCH_charlib.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};

use cryo_device::{FinFet, ModelCard, Polarity};
use cryo_spice::solver::{solve_in_place, Matrix};
use cryo_spice::{
    dc_operating_point, kernel_override_guard, transient, warmstart_override_guard, Circuit,
    CsrMatrix, KernelKind, Source, TranConfig, GROUND,
};

/// CI smoke mode (`cargo bench -p cryo-bench -- --test`).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// A 6-stage inverter chain at 300 K: 14 unknowns, the matrix shape the
/// characterization grid solves thousands of times.
fn chain() -> Circuit {
    let nc = ModelCard::nominal(Polarity::N);
    let pc = ModelCard::nominal(Polarity::P);
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let inn = c.node("in");
    c.vsource("VDD", vdd, GROUND, Source::dc(0.7));
    c.vsource("VIN", inn, GROUND, Source::ramp(0.0, 0.7, 20e-12, 10e-12));
    let mut prev = inn;
    for i in 0..6 {
        let out = c.node(&format!("s{i}"));
        c.finfet(&format!("MN{i}"), out, prev, GROUND, FinFet::new(&nc, 300.0, 2));
        c.finfet(&format!("MP{i}"), out, prev, vdd, FinFet::new(&pc, 300.0, 3));
        prev = out;
    }
    c.capacitor("CL", prev, GROUND, 2e-15);
    c
}

/// Banded MNA-shaped system: strong diagonal, two sub/super-diagonals with
/// holes — the sparsity class the structural kernel targets.
fn band_system(n: usize) -> (Matrix, Vec<(usize, usize, f64)>, Vec<f64>) {
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, i, 4.0 + (i % 7) as f64 * 0.25));
        for d in 1..=2usize {
            if i + d < n && (i + d) % 3 != 0 {
                entries.push((i, i + d, -0.5 - (d as f64) * 0.1));
                entries.push((i + d, i, -0.4));
            }
        }
    }
    let mut m = Matrix::zeros(n);
    for &(r, c, v) in &entries {
        m.set(r, c, m.get(r, c) + v);
    }
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    (m, entries, rhs)
}

fn bench_kernel(c: &mut Criterion) {
    let smoke = smoke_mode();
    let mut g = c.benchmark_group("kernel");
    g.sample_size(if smoke { 2 } else { 50 });
    let ckt = chain();
    let steps = if smoke { 20 } else { 120 };
    for kernel in [KernelKind::Dense, KernelKind::Sparse] {
        let _k = kernel_override_guard(kernel);
        let _w = warmstart_override_guard(false);
        g.bench_function(&format!("dc_chain_{}", kernel.as_str()), |b| {
            b.iter(|| dc_operating_point(&ckt).expect("chain solves"))
        });
        g.bench_function(&format!("tran_chain_{}", kernel.as_str()), |b| {
            b.iter(|| transient(&ckt, &TranConfig::with_steps(200e-12, steps)).expect("tran runs"))
        });
    }
    let n = if smoke { 24 } else { 96 };
    let (dense, entries, rhs) = band_system(n);
    g.bench_function(&format!("lu_band{n}_dense"), |b| {
        b.iter(|| {
            let mut m = dense.clone();
            let mut x = rhs.clone();
            solve_in_place(&mut m, &mut x).expect("well-conditioned");
            x
        })
    });
    g.bench_function(&format!("lu_band{n}_sparse"), |b| {
        b.iter(|| {
            let csr = CsrMatrix::from_triplets(n, &entries);
            csr.solve(&rhs).expect("well-conditioned")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
