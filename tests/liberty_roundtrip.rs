//! Characterized libraries survive the Liberty text format and the JSON
//! cache losslessly enough for signoff: every timing/power lookup agrees.

use cryo_soc::cells::{cache, topology, CharConfig, Characterizer};
use cryo_soc::device::{ModelCard, Polarity};
use cryo_soc::liberty::format::{parse_library, write_library};

fn mini_library() -> cryo_soc::liberty::Library {
    let engine = Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        CharConfig::fast(300.0),
    );
    let cells = vec![
        topology::inverter(1),
        topology::nand(2, 2),
        topology::xor2(1),
        topology::dff(1),
    ];
    engine.characterize_library("rt300", &cells).unwrap()
}

#[test]
fn liberty_text_round_trip_preserves_signoff_lookups() {
    let lib = mini_library();
    let text = write_library(&lib);
    let back = parse_library(&text).expect("parses");
    assert_eq!(back.len(), lib.len());
    for cell in lib.cells() {
        let rt = back.cell(&cell.name).expect("cell survives");
        assert_eq!(rt.arcs.len(), cell.arcs.len(), "{}", cell.name);
        assert_eq!(rt.pins.len(), cell.pins.len());
        assert_eq!(rt.is_sequential(), cell.is_sequential());
        for a in &cell.arcs {
            // The writer groups arcs under pins, so order may differ; match
            // by (related_pin, pin, kind).
            let b = rt
                .arcs
                .iter()
                .find(|b| b.related_pin == a.related_pin && b.pin == a.pin && b.kind == a.kind)
                .unwrap_or_else(|| panic!("{}: arc {}->{} lost", cell.name, a.related_pin, a.pin));
            for (slew, load) in [(5e-12, 1e-15), (20e-12, 5e-15), (80e-12, 12e-15)] {
                let da = a.worst_delay(slew, load);
                let db = b.worst_delay(slew, load);
                assert!(
                    (da - db).abs() < 1e-6 * da.abs().max(1e-15),
                    "{} {}->{}: {da:e} vs {db:e}",
                    cell.name,
                    a.related_pin,
                    a.pin
                );
            }
        }
        // Leakage and pin caps survive within text precision.
        assert!(
            (rt.average_leakage() - cell.average_leakage()).abs()
                < 1e-3 * cell.average_leakage().abs() + 1e-15
        );
        for pin in cell.input_pins() {
            let rp = rt.pin(&pin.name).unwrap();
            assert!((rp.capacitance - pin.capacitance).abs() < 1e-18);
        }
    }
}

#[test]
fn json_cache_round_trip_is_lossless() {
    let lib = mini_library();
    let dir = std::env::temp_dir().join("cryo_soc_cache_it");
    let _ = std::fs::remove_dir_all(&dir);
    cache::store(&dir, &lib.name, "itkey", &lib).unwrap();
    let back = cache::load(&dir, &lib.name, "itkey").expect("cache hit");
    assert_eq!(back.len(), lib.len());
    for cell in lib.cells() {
        let rt = back.cell(&cell.name).unwrap();
        assert_eq!(rt.name, cell.name);
        assert_eq!(rt.arcs.len(), cell.arcs.len());
        for ((sa, wa), (sb, wb)) in cell.leakage_states.iter().zip(&rt.leakage_states) {
            assert_eq!(sa, sb);
            assert!((wa - wb).abs() <= 1e-14 * wa.abs().max(1e-30));
        }
        // Table values survive to within a JSON float round trip (last ulp).
        for (a, b) in cell.arcs.iter().zip(&rt.arcs) {
            for (va, vb) in a.cell_rise.values().iter().zip(b.cell_rise.values()) {
                assert!(
                    (va - vb).abs() <= 1e-15 * va.abs().max(1e-30),
                    "{va:e} vs {vb:e}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn functions_survive_and_still_evaluate() {
    let lib = mini_library();
    let back = parse_library(&write_library(&lib)).unwrap();
    let xor = back.cell("XOR2x1").unwrap();
    let f = xor.pin("Y").unwrap().function.clone().expect("function");
    assert!(!f.eval(0b00));
    assert!(f.eval(0b01));
    assert!(f.eval(0b10));
    assert!(!f.eval(0b11));
}

// ----------------------------------------------------------------------
// Degraded libraries: missing cells and missing arcs must survive the
// text format and still reach a complete, provenance-flagged STA report.
// ----------------------------------------------------------------------

mod degraded {
    use cryo_soc::cells::{topology, CharConfig, Characterizer};
    use cryo_soc::device::{ModelCard, Polarity};
    use cryo_soc::liberty::format::{parse_library, write_library};
    use cryo_soc::liberty::{ArcKind, Library};
    use cryo_soc::netlist::{Design, DesignBuilder};
    use cryo_soc::sta::{analyze, DegradeCause, MissingArcPolicy, StaConfig, StaError};

    /// INVx1/INVx2/NAND2x2/DFFx1, then degrade: drop INVx2 entirely
    /// (failed cell) and strip NAND2x2's propagation arcs (timing tables
    /// lost; the cell body, pins, and power data survive).
    fn degraded_library() -> Library {
        let engine = Characterizer::new(
            &ModelCard::nominal(Polarity::N),
            &ModelCard::nominal(Polarity::P),
            CharConfig::fast(300.0),
        );
        let cells = vec![
            topology::inverter(1),
            topology::inverter(2),
            topology::nand(2, 2),
            topology::dff(1),
        ];
        let full = engine.characterize_library("deg300", &cells).unwrap();
        let mut lib = Library::new(&full.name, full.temperature, full.vdd);
        for cell in full.cells() {
            if cell.name == "INVx2" {
                continue; // the failed cell
            }
            let mut c = cell.clone();
            if c.name == "NAND2x2" {
                let before = c.arcs.len();
                c.arcs.retain(|a| a.kind != ArcKind::Combinational);
                assert!(c.arcs.len() < before, "NAND2x2 had propagation arcs");
            }
            lib.add_cell(c);
        }
        lib
    }

    fn design() -> Design {
        let mut b = DesignBuilder::new("deg_dut");
        let clk = b.clock_input("clk");
        let a = b.input("a");
        let q0 = b.dff(a, clk, 1);
        let n1 = b.inv(q0, 2); // INVx2: missing cell
        let n2 = b.inv(n1, 1);
        let n3 = b.nand2(n2, q0, 2); // NAND2x2: input A lost its arc
        let q1 = b.dff(n3, clk, 1);
        b.mark_output(q1);
        b.finish()
    }

    #[test]
    fn degraded_library_survives_text_round_trip_into_sta() {
        let lib = degraded_library();
        let d = design();
        let cfg = StaConfig {
            missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.25 },
            ..StaConfig::default()
        };

        let direct = analyze(&d, &lib, &cfg).expect("degraded STA completes");
        assert!(direct.is_degraded());
        let causes: Vec<DegradeCause> = direct.degraded_arcs.iter().map(|a| a.cause).collect();
        assert!(causes.contains(&DegradeCause::MissingCell), "{causes:?}");
        assert!(causes.contains(&DegradeCause::MissingArc), "{causes:?}");

        // Write → parse → STA: the same missing cell and missing arc, the
        // same stand-in provenance, and signoff numbers within the text
        // format's quantization error.
        let back = parse_library(&write_library(&lib)).expect("degraded lib parses");
        assert!(back.cell("INVx2").is_err(), "missingness survives");
        let rt = analyze(&d, &back, &cfg).expect("round-tripped STA completes");
        assert_eq!(rt.degraded_arcs.len(), direct.degraded_arcs.len());
        for (a, b) in direct.degraded_arcs.iter().zip(&rt.degraded_arcs) {
            assert_eq!((&a.instance, &a.pin, &a.cause), (&b.instance, &b.pin, &b.cause));
            assert_eq!(a.resolution, b.resolution, "{}: provenance drifted", a.instance);
            assert!(
                (a.assumed_delay - b.assumed_delay).abs() < 1e-6 * a.assumed_delay.abs(),
                "{}: {} vs {}",
                a.instance,
                a.assumed_delay,
                b.assumed_delay
            );
        }
        let rel = (rt.critical_path_delay - direct.critical_path_delay).abs()
            / direct.critical_path_delay;
        assert!(rel < 1e-6, "critical path drifted {rel:e} across the format");

        // Fail policy still refuses the same library.
        let strict = StaConfig::default();
        assert!(matches!(
            analyze(&d, &back, &strict),
            Err(StaError::UnmappedCell { .. })
        ));
    }
}
