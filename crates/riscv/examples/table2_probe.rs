//! Scratch: steady-state cycles per classification for kNN and HDC.
use cryo_riscv::asm::assemble;
use cryo_riscv::kernels::{hdc_source_rounds, knn_source_rounds, HDC_LEVELS};
use cryo_riscv::pipeline::{PipelineConfig, PipelineModel};

fn cycles_of(src: &str, cpop: bool) -> u64 {
    let p = assemble(src).unwrap();
    let mut m = PipelineModel::new(PipelineConfig {
        enable_cpop: cpop,
        ..PipelineConfig::default()
    });
    m.cpu.load_program(&p);
    m.run(200_000_000).unwrap().cycles
}

fn main() {
    for &n in &[20usize, 400, 1200] {
        let centers: Vec<[f64; 4]> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.37;
                [t.sin(), t.cos(), t.sin() + 1.0, t.cos() + 1.0]
            })
            .collect();
        let meas: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64 * 0.11).sin(), 0.4)).collect();
        let c1 = cycles_of(&knn_source_rounds(&centers, &meas, 1), false);
        let c5 = cycles_of(&knn_source_rounds(&centers, &meas, 5), false);
        println!(
            "kNN n={n:4}: {:6.1} cycles/classification (steady)",
            (c5 - c1) as f64 / (4 * n) as f64
        );

        let mut seed = 99u64;
        let mut rnd = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let items: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
        let items_y: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
        let centers_h: Vec<[u64; 4]> = (0..n).map(|_| [rnd(), rnd(), rnd(), rnd()]).collect();
        for cpop in [false, true] {
            let h1 = cycles_of(
                &hdc_source_rounds(&items, &items_y, &centers_h, &meas, -1.0, 8.0, cpop, 1),
                cpop,
            );
            let h5 = cycles_of(
                &hdc_source_rounds(&items, &items_y, &centers_h, &meas, -1.0, 8.0, cpop, 5),
                cpop,
            );
            println!(
                "HDC n={n:4} cpop={cpop:5}: {:6.1} cycles/classification (steady)",
                (h5 - h1) as f64 / (4 * n) as f64
            );
        }
    }
}
