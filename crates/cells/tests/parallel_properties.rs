//! Property: the worker count is invisible in characterization results.
//!
//! For arbitrary cell subsets and any `jobs` in `1..=8`, a parallel run
//! must report the same coverage and the same derated/failed cell-name
//! sets as the serial run — including under an active fault plan that
//! forces one cell through the derating path.

use std::collections::BTreeSet;

use cryo_cells::{topology, CellNetlist, CellStatus, CharConfig, Characterizer};
use cryo_device::{ModelCard, Polarity};
use cryo_spice::{fault, FaultPlan};
use proptest::prelude::*;

/// The candidate pool. `NAND2x1` is the fault victim: it has a drive
/// sibling (`NAND2x2`) to derate from when both are drawn, and degrades to
/// `Failed` when drawn alone — so subsets exercise both outcomes.
fn pool() -> Vec<CellNetlist> {
    vec![
        topology::inverter(1),
        topology::inverter(2),
        topology::inverter(4),
        topology::nand(2, 1),
        topology::nand(2, 2),
        topology::nor(2, 1),
    ]
}

fn engine(jobs: usize) -> Characterizer {
    let mut cfg = CharConfig::fast(300.0);
    cfg.jobs = jobs;
    Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        cfg,
    )
}

/// (coverage, derated names, failed names) of a robust run at `jobs`.
fn outcome_sets(
    cells: &[CellNetlist],
    jobs: usize,
) -> (f64, BTreeSet<String>, BTreeSet<String>) {
    let _g = fault::install_guard(FaultPlan {
        dc_no_convergence: 1.0,
        tran_no_convergence: 1.0,
        scope: Some("NAND2x1".into()),
        ..FaultPlan::new(42)
    });
    let (_, report) = engine(jobs).characterize_library_robust("prop", cells, None);
    let names = |status: CellStatus| {
        report
            .with_status(status)
            .iter()
            .map(|o| o.name.clone())
            .collect::<BTreeSet<_>>()
    };
    (
        report.coverage(),
        names(CellStatus::Derated),
        names(CellStatus::Failed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn job_count_never_changes_coverage_or_degradation_decisions(
        mask in 1u32..63,
        jobs in 2usize..9,
    ) {
        let cells: Vec<CellNetlist> = pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let (cov1, derated1, failed1) = outcome_sets(&cells, 1);
        let (covn, deratedn, failedn) = outcome_sets(&cells, jobs);
        prop_assert_eq!(cov1, covn, "coverage diverged at jobs={}", jobs);
        prop_assert_eq!(derated1, deratedn);
        prop_assert_eq!(failed1, failedn);
    }
}
