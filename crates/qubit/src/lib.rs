#![warn(missing_docs)]
//! Superconducting-qubit readout substrate: I/Q measurement model,
//! calibration, golden classifiers, and decoherence budgets.
//!
//! This crate substitutes for the paper's IBM Falcon measurement data
//! (Sec. II, Fig. 2): dispersive readout of transmon qubits produces one
//! complex number per shot in the I/Q plane, clustered around a
//! per-qubit center for each basis state, blurred by amplifier noise, with
//! a relaxation tail (|1⟩ decaying mid-readout toward the |0⟩ blob).
//!
//! - [`device::QuantumDevice`] — per-qubit readout parameters and seeded
//!   shot generation (calibration and measurement campaigns).
//! - [`calibration::Calibration`] — the paper's calibration step: mean I/Q
//!   centers per qubit per state, plus assignment-fidelity estimation.
//! - [`classify`] — golden kNN and HDC classifiers, bit-compatible with
//!   the RISC-V kernels in `cryo-riscv`.
//! - [`decoherence`] — `exp(-t/T2)` state-fidelity decay (Fig. 2b) and the
//!   classification time budget analysis behind Fig. 7.

pub mod calibration;
pub mod classify;
pub mod decoherence;
pub mod device;
pub mod qec;

pub use calibration::Calibration;
pub use classify::{HdcClassifier, KnnClassifier};
pub use decoherence::{classification_time, max_qubits_within_budget, state_fidelity};
pub use device::{IqPoint, QuantumDevice, Shot};
pub use qec::RepetitionCode;

use std::error::Error;
use std::fmt;

/// Errors from readout modelling and classification.
#[derive(Debug, Clone, PartialEq)]
pub enum QubitError {
    /// A per-qubit operation referenced a qubit outside the device.
    QubitOutOfRange {
        /// Requested qubit.
        qubit: usize,
        /// Device size.
        count: usize,
    },
    /// Calibration was attempted with no shots.
    EmptyCalibration,
    /// A readout integration window must be positive.
    InvalidWindow {
        /// The rejected window (relative to nominal).
        window: f64,
    },
}

impl fmt::Display for QubitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QubitError::QubitOutOfRange { qubit, count } => {
                write!(f, "qubit {qubit} out of range (device has {count})")
            }
            QubitError::EmptyCalibration => write!(f, "calibration needs at least one shot"),
            QubitError::InvalidWindow { window } => {
                write!(f, "readout window must be positive, got {window}")
            }
        }
    }
}

impl Error for QubitError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QubitError>;
