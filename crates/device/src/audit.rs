//! Cryogenic-physics audits on calibrated model cards.
//!
//! The device layer of the signoff firewall: a calibrated card must
//! reproduce the cryogenic signatures the whole paper rests on — the
//! threshold voltage *increases* and the subthreshold swing *tightens*
//! from 300 K to 10 K — and its mobility/velocity-saturation parameters
//! must sit inside the calibrated range. A card that violates these
//! produces libraries that look plausible and are silently wrong, which
//! is exactly what the audit exists to catch before characterization
//! spends hours on it.
//!
//! This crate sits below `cryo-liberty`, so findings use a local mirror
//! type; `cryo-core` converts them into the stack-wide audit report.

use serde::{Deserialize, Serialize};

use crate::metrics::{DeviceMetrics, IvCurve};
use crate::model::FinFet;
use crate::params::ModelCard;

/// One device-invariant violation (stage attribution happens in core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFinding {
    /// Offending entity: `nfet`, `pfet`, or `<flavour>/<param>`.
    pub entity: String,
    /// Invariant that failed.
    pub invariant: String,
    /// Observed value, rendered as text so NaN/∞ survive JSON.
    pub observed: String,
    /// The bound the observation violated.
    pub bound: String,
}

impl DeviceFinding {
    fn new(entity: String, invariant: &str, observed: f64, bound: String) -> Self {
        Self {
            entity,
            invariant: invariant.to_string(),
            observed: format!("{observed:e}"),
            bound,
        }
    }
}

/// Constant-current criterion used for the audit's Vth extraction,
/// amperes per device (the same criterion the Fig. 3 reproduction uses).
const ICRIT: f64 = 300e-9;

/// One audited parameter: name, accessor, and its calibrated `[lo, hi]`.
type ParamBound = (&'static str, fn(&ModelCard) -> f64, f64, f64);

/// Calibrated ranges for the parameters corruption plausibly perturbs.
/// Wide enough for any honest calibration outcome, tight enough that a
/// sign flip or decade-scale poison lands outside.
const PARAM_BOUNDS: &[ParamBound] = &[
    ("u0", |c: &ModelCard| c.u0, 1e-3, 5e-2),
    ("vsat", |c: &ModelCard| c.vsat, 2e4, 3e5),
    ("ute", |c: &ModelCard| c.ute, -3.0, 0.0),
    ("tvth", |c: &ModelCard| c.tvth, 0.0, 0.4),
];

/// Audit one card: parameter bounds plus the 300 K → 10 K figure-of-merit
/// shifts. `flavour` labels the entity (`nfet`/`pfet`). Pure model
/// evaluation — no circuit simulation, so the audit costs microseconds.
#[must_use]
pub fn audit_card(flavour: &str, card: &ModelCard) -> Vec<DeviceFinding> {
    let mut out = Vec::new();
    for (name, get, lo, hi) in PARAM_BOUNDS {
        let v = get(card);
        if !v.is_finite() || v < *lo || v > *hi {
            out.push(DeviceFinding::new(
                format!("{flavour}/{name}"),
                "param_in_calibrated_bounds",
                v,
                format!("[{lo:e}, {hi:e}]"),
            ));
        }
    }

    let sweep = |temp: f64| {
        let dev = FinFet::new(card, temp, 1);
        IvCurve::sweep(&dev, 0.75, 0.75, 150)
    };
    let (c300, c10) = (sweep(300.0), sweep(10.0));
    let m300 = DeviceMetrics::extract(&c300, ICRIT);
    let m10 = DeviceMetrics::extract(&c10, ICRIT);
    let (Ok(m300), Ok(m10)) = (m300, m10) else {
        out.push(DeviceFinding::new(
            flavour.to_string(),
            "metrics_extractable",
            f64::NAN,
            "Vth/SS extractable at both corners".to_string(),
        ));
        return out;
    };
    // `partial_cmp` keeps NaN metrics on the flagged side.
    if m10.vth.partial_cmp(&m300.vth) != Some(std::cmp::Ordering::Greater) {
        out.push(DeviceFinding::new(
            flavour.to_string(),
            "vth_increases_cold",
            m10.vth,
            format!("> {:e} (300 K Vth)", m300.vth),
        ));
    }
    if m10.ss_mv_dec.partial_cmp(&m300.ss_mv_dec) != Some(std::cmp::Ordering::Less) {
        out.push(DeviceFinding::new(
            flavour.to_string(),
            "ss_decreases_cold",
            m10.ss_mv_dec,
            format!("< {:e} mV/dec (300 K SS)", m300.ss_mv_dec),
        ));
    }
    out
}

/// Audit the n/p card pair a characterization run is about to consume.
#[must_use]
pub fn audit_cards(nfet: &ModelCard, pfet: &ModelCard) -> Vec<DeviceFinding> {
    let mut out = audit_card("nfet", nfet);
    out.extend(audit_card("pfet", pfet));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;

    #[test]
    fn nominal_cards_are_clean() {
        let findings = audit_cards(
            &ModelCard::nominal(Polarity::N),
            &ModelCard::nominal(Polarity::P),
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn poisoned_tvth_fails_both_the_bound_and_the_cold_shift() {
        let mut card = ModelCard::nominal(Polarity::N);
        card.tvth = -card.tvth; // plausible magnitude, wrong physics
        let findings = audit_card("nfet", &card);
        assert!(findings
            .iter()
            .any(|f| f.invariant == "param_in_calibrated_bounds" && f.entity == "nfet/tvth"));
        assert!(findings.iter().any(|f| f.invariant == "vth_increases_cold"));
    }

    #[test]
    fn decade_scale_mobility_poison_is_out_of_bounds() {
        let mut card = ModelCard::nominal(Polarity::P);
        card.u0 *= 100.0;
        let findings = audit_card("pfet", &card);
        assert!(findings
            .iter()
            .any(|f| f.invariant == "param_in_calibrated_bounds" && f.entity == "pfet/u0"));
    }
}
