//! Extension study (paper Sec. I-C / VII: "complex quantum error correction
//! protocols have to be executed"): the SoC classifies every physical qubit
//! AND majority-decodes a distance-d repetition code — how much of the
//! decoherence budget does the extra decode step consume?
use cryo_qubit::qec::{decoder_source, RepetitionCode};
use cryo_riscv::asm::assemble;
use cryo_riscv::{PipelineConfig, PipelineModel};

fn steady_cycles(src1: &str, src4: &str, items: usize) -> f64 {
    let run = |src: &str| -> u64 {
        let p = assemble(src).unwrap();
        let mut m = PipelineModel::new(PipelineConfig::default());
        m.cpu.load_program(&p);
        m.run(500_000_000).unwrap().cycles
    };
    (run(src4) - run(src1)) as f64 / (3.0 * items as f64)
}

fn main() {
    println!("=== Sec. VII extension: repetition-code decode on top of classification ===");
    println!("(kNN classification cycles from Table 2; decode adds the QEC step)\n");
    let budget_us = 110.0;
    let clock_ghz = 1.0;
    let knn_cycles = 60.0; // saturated kNN cycles/classification (Table 2 regime)
    println!(
        "{:>4} {:>9} {:>14} {:>16} {:>18}",
        "d", "logical", "decode cyc/lq", "classify+decode", "budget left"
    );
    for d in [3usize, 5, 7] {
        let code = RepetitionCode::new(d);
        for logical in [100usize, 400] {
            let physical = logical * d;
            // Deterministic pseudo-random labels.
            let labels: Vec<u8> = (0..physical)
                .map(|i| ((i * 2654435761) >> 7) as u8 & 1)
                .collect();
            let src1 = decoder_source(code, &labels, 1);
            let src4 = decoder_source(code, &labels, 4);
            let decode_cyc = steady_cycles(&src1, &src4, logical);
            let total_us =
                (physical as f64 * knn_cycles + logical as f64 * decode_cyc) / (clock_ghz * 1e3);
            println!(
                "{d:>4} {logical:>9} {decode_cyc:>14.1} {total_us:>13.2} us {:>15.2} us",
                budget_us - total_us
            );
        }
    }
    // Logical error suppression for context.
    println!("\nlogical error rate at p_phys = 2 %:");
    for d in [3usize, 5, 7] {
        let e = RepetitionCode::new(d).logical_error_rate(0.02, 200_000, 7);
        println!("  d = {d}: {e:.5}");
    }
    println!("\n(The flexible SoC runs the decoder in software — the paper's argument");
    println!(" for a general-purpose processor inside the cryostat.)");
}
