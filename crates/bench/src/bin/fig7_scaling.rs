//! Regenerates Fig. 7: classification time vs. qubit count against the
//! decoherence budget.
use cryo_core::experiments::fig7_scaling;

fn main() {
    let flow = cryo_bench::flow_from_args();
    let r = fig7_scaling(&flow).expect("fig7");
    cryo_bench::maybe_write_json("fig7", &r);
    println!(
        "=== Fig. 7: time to classify all qubits (clock {:.0} MHz) ===",
        r.frequency / 1e6
    );
    println!("decoherence budget: {:.0} us (IBM Falcon)", r.budget * 1e6);
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>10}",
        "qubits", "kNN (us)", "HDC (us)", "kNN cyc", "HDC cyc"
    );
    for p in &r.points {
        let marker = if p.knn_time > r.budget {
            " <-- kNN over budget"
        } else if p.hdc_time > r.budget {
            " <-- HDC over budget"
        } else {
            ""
        };
        println!(
            "{:>7} {:>12.2} {:>12.2} {:>10.1} {:>10.1}{marker}",
            p.qubits,
            p.knn_time * 1e6,
            p.hdc_time * 1e6,
            p.knn_cycles,
            p.hdc_cycles
        );
    }
    println!(
        "{}",
        cryo_bench::compare(
            "kNN crossover (qubits)",
            1500.0,
            r.knn_crossover as f64,
            "qb"
        )
    );
    println!(
        "HDC crossover: {} qubits (paper: 'not competitive')",
        r.hdc_crossover
    );
}
