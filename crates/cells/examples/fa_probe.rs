//! Scratch: FA carry-arc delay vs drive at representative loads.
use cryo_cells::{topology, CharConfig, Characterizer};
use cryo_device::{ModelCard, Polarity};

fn main() {
    let engine = Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        CharConfig::fast(300.0),
    );
    for d in [1u32, 2, 4] {
        let c = engine.characterize_cell(&topology::full_adder(d)).unwrap();
        let ci_cap = c.pin("CI").unwrap().capacitance;
        let arc = c
            .arcs
            .iter()
            .find(|a| a.related_pin == "CI" && a.pin == "CO")
            .unwrap();
        for load in [1e-15, 2e-15, 4e-15] {
            println!(
                "FAx{d}: CI cap {:.2} fF, CI->CO delay @{:.0}fF slew20ps: rise {:.1} / fall {:.1} ps",
                ci_cap * 1e15, load * 1e15,
                arc.cell_rise.lookup(20e-12, load) * 1e12,
                arc.cell_fall.lookup(20e-12, load) * 1e12
            );
        }
    }
    // Also INV FO4 ratio across corners.
    for temp in [300.0, 10.0] {
        let e = Characterizer::new(
            &ModelCard::nominal(Polarity::N),
            &ModelCard::nominal(Polarity::P),
            CharConfig::fast(temp),
        );
        let c = e.characterize_cell(&topology::inverter(2)).unwrap();
        let arc = &c.arcs[0];
        println!(
            "INVx2 @{temp}K: delay @20ps/2.8fF rise {:.2} fall {:.2} ps",
            arc.cell_rise.lookup(20e-12, 2.8e-15) * 1e12,
            arc.cell_fall.lookup(20e-12, 2.8e-15) * 1e12
        );
    }
}
