//! The learned library surrogate, end to end: byte-deterministic training
//! across worker counts (with a golden model hash), kill/resume
//! mid-training with zero repeated epochs, audit-gated per-cell SPICE
//! fallback counter-proven to never re-simulate a trusted cell, and a
//! fully predicted cold corner passing supervised signoff — while every
//! SPICE artifact stays byte-identical to a surrogate-off run.

use std::path::PathBuf;

use cryo_soc::cells::{cache, topology, CellStatus, CharConfig, Characterizer, CheckpointStore};
use cryo_soc::core::supervise::{Supervisor, SupervisorConfig};
use cryo_soc::core::{CryoFlow, FlowConfig, SurrogatePolicy};
use cryo_soc::device::{CornerScalars, ModelCard, Polarity};
use cryo_soc::liberty::Provenance;
use cryo_soc::spice::{fault, FaultPlan};
use cryo_soc::surrogate::{fit, TrainConfig};

/// Residual bound used across the suite: comfortably above the clean
/// model's worst per-cell residual, far below a sign-flip's ~2.0
/// signature.
const BOUND: f64 = 0.75;

/// A unique scratch cache directory, wiped before use.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryo_surrogate_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn flow_at(dir: &PathBuf, jobs: usize) -> CryoFlow {
    let mut cfg = FlowConfig::fast(dir);
    cfg.fault_plan = None;
    cfg.audit_policy = cryo_soc::core::AuditPolicy::Warn;
    cfg.surrogate_policy = SurrogatePolicy::Off;
    cfg.jobs = jobs;
    CryoFlow::new(cfg)
}

#[test]
fn predicted_corner_is_byte_deterministic_across_job_counts_and_matches_golden() {
    // One warm anchor, two surrogate runs at jobs = 1 and jobs = 8: the
    // probe characterization is byte-deterministic across worker counts
    // (the PR-2 contract) and training is single-threaded by design, so
    // the model hash and every predicted table must match bit for bit.
    let warm_dir = scratch("warm_det");
    let (warm, _) = flow_at(&warm_dir, 1)
        .library_with_report(300.0)
        .expect("warm corner");
    let mut outs = Vec::new();
    for jobs in [1usize, 8] {
        let dir = scratch(&format!("det_j{jobs}"));
        let flow = flow_at(&dir, jobs);
        let (lib, rep) = flow
            .surrogate_library_with_report(10.0, &warm, BOUND)
            .expect("predicted corner");
        let sum = rep.surrogate.clone().expect("surrogate summary");
        assert!(
            sum.fallbacks.is_empty(),
            "clean inputs must predict every cell (fallbacks {:?}, residual {:?})",
            sum.fallbacks,
            sum.residual
        );
        assert_eq!(sum.predicted, lib.cells().len());
        assert!(
            matches!(lib.provenance, Provenance::Predicted { .. }),
            "predicted library must carry prediction provenance"
        );
        assert!(
            rep.outcomes
                .iter()
                .all(|o| o.status == CellStatus::Predicted && o.attempts == 0),
            "every cell must be model-predicted with zero SPICE attempts"
        );
        outs.push((sum.model_hash.clone(), serde_json::to_string(&lib).unwrap()));
    }
    assert_eq!(
        outs[0], outs[1],
        "jobs=1 vs jobs=8 must produce bit-identical model and library"
    );

    // Golden model hash: training is deterministic end to end (seeded
    // shuffles, hand-rolled exp/ln/tanh), so the hash is a platform-
    // independent constant. `CRYO_BLESS=1` regenerates.
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/surrogate_model_hash.txt");
    let hash = &outs[0].0;
    if std::env::var("CRYO_BLESS").is_ok() {
        std::fs::write(&golden, format!("{hash}\n")).expect("bless golden model hash");
    }
    let want = std::fs::read_to_string(&golden)
        .expect("tests/golden/surrogate_model_hash.txt (CRYO_BLESS=1 regenerates)");
    assert_eq!(
        want.trim(),
        hash,
        "trained model hash drifted from golden (CRYO_BLESS=1 regenerates)"
    );
}

#[test]
fn interrupted_training_resumes_with_zero_repeated_epochs() {
    // Real probe data (a 12-cell prefix at both corners), killed after 11
    // of 60 epochs: the resumed run executes exactly the remaining 49 and
    // lands on the bit-identical model an uninterrupted run produces.
    let cells: Vec<_> = topology::standard_cell_set().into_iter().take(12).collect();
    let nc = ModelCard::nominal(Polarity::N);
    let pc = ModelCard::nominal(Polarity::P);
    let c300 = CharConfig::fast(300.0);
    let c10 = CharConfig::fast(10.0);
    let (warm, _) =
        Characterizer::new(&nc, &pc, c300.clone()).characterize_library_robust("w", &cells, None);
    let (cold, _) =
        Characterizer::new(&nc, &pc, c10.clone()).characterize_library_robust("c", &cells, None);
    let warm_sc = CornerScalars::at(&nc, &pc, c300.vdd, 300.0);
    let cold_sc = CornerScalars::at(&nc, &pc, c10.vdd, 10.0);

    let full_cfg = TrainConfig::default();
    let (reference, ref_out, _) = fit(&warm, &cold, warm_sc, cold_sc, &full_cfg, None);
    assert_eq!(ref_out.epochs_run, full_cfg.epochs);
    assert_eq!(ref_out.resumed_from, 0);

    let dir = scratch("resume");
    let store = CheckpointStore::open(&dir, "train", "k").expect("store");
    let interrupted_cfg = TrainConfig {
        epochs: 11,
        ..TrainConfig::default()
    };
    let (_, out1, _) = fit(&warm, &cold, warm_sc, cold_sc, &interrupted_cfg, Some(&store));
    assert_eq!(out1.epochs_run, 11, "the interrupted leg runs 11 epochs");

    let (resumed, out2, _) = fit(&warm, &cold, warm_sc, cold_sc, &full_cfg, Some(&store));
    assert_eq!(out2.resumed_from, 11, "resume must pick up at the kill point");
    assert_eq!(
        out2.epochs_run,
        full_cfg.epochs - 11,
        "resume must execute exactly the remaining epochs — zero repeats"
    );
    assert_eq!(
        resumed.model_hash(),
        reference.model_hash(),
        "interrupted + resumed training must be bit-identical to uninterrupted"
    );

    // A third invocation finds a fully trained checkpoint: zero epochs.
    let (_, out3, _) = fit(&warm, &cold, warm_sc, cold_sc, &full_cfg, Some(&store));
    assert_eq!(out3.epochs_run, 0, "nothing left to train");
    assert_eq!(out3.resumed_from, full_cfg.epochs);
}

#[test]
fn poisoned_probe_falls_back_to_spice_for_exactly_the_distrusted_cell() {
    // Clean leg: the SPICE cost of an all-trusted prediction.
    let dir_clean = scratch("fb_clean");
    let flow_clean = flow_at(&dir_clean, 1);
    let (warm_clean, _) = flow_clean.library_with_report(300.0).expect("warm");
    let _ = fault::take_sim_counts();
    let (_, rep_clean) = flow_clean
        .surrogate_library_with_report(10.0, &warm_clean, BOUND)
        .expect("clean predicted corner");
    let clean_sims = fault::take_sim_counts();
    assert!(rep_clean.surrogate.unwrap().fallbacks.is_empty());

    // Poisoned leg: the warm corner is primed fault-free into the cache
    // first, so the scoped `corrupt=table` can only strike the cold probe
    // characterization — corrupting XOR2x1's ground truth, not its
    // prediction.
    let dir = scratch("fb_poison");
    let (warm, _) = flow_at(&dir, 1).library_with_report(300.0).expect("warm primed");
    let mut cfg = FlowConfig::fast(&dir);
    cfg.audit_policy = cryo_soc::core::AuditPolicy::Warn;
    cfg.surrogate_policy = SurrogatePolicy::Off;
    cfg.jobs = 1;
    cfg.fault_plan = Some(FaultPlan {
        corrupt_table: 1.0,
        scope: Some("XOR2x1".into()),
        ..FaultPlan::new(11)
    });
    let flow_poison = CryoFlow::new(cfg);
    let _ = fault::take_sim_counts();
    let (lib, rep) = flow_poison
        .surrogate_library_with_report(10.0, &warm, BOUND)
        .expect("poisoned probe must repair via fallback, not fail");
    let poison_sims = fault::take_sim_counts();
    let sum = rep.surrogate.clone().expect("summary");
    assert_eq!(
        sum.fallbacks,
        vec!["XOR2x1".to_string()],
        "exactly the poisoned probe cell is distrusted"
    );
    for o in &rep.outcomes {
        if o.name == "XOR2x1" {
            assert_ne!(o.status, CellStatus::Predicted, "the fallback cell is SPICE");
        } else {
            assert!(
                o.status == CellStatus::Predicted && o.attempts == 0,
                "{} must stay predicted with zero attempts",
                o.name
            );
        }
    }
    assert!(matches!(lib.provenance, Provenance::Predicted { .. }));

    // Counter-proof: the poisoned run costs exactly (clean surrogate run)
    // + (SPICE characterization of the one distrusted cell). Zero
    // re-simulation of any trusted cell.
    let nc = ModelCard::nominal(Polarity::N);
    let pc = ModelCard::nominal(Polarity::P);
    let one = vec![topology::by_name("XOR2x1").expect("XOR2x1 exists")];
    let _ = fault::take_sim_counts();
    let _ = Characterizer::new(&nc, &pc, CharConfig::fast(10.0))
        .characterize_library_robust("one", &one, None);
    let one_sims = fault::take_sim_counts();
    assert_eq!(
        poison_sims.tran,
        clean_sims.tran + one_sims.tran,
        "fallback must cost exactly one cell's SPICE on top of the clean run"
    );
}

#[test]
fn supervised_pipeline_signs_off_a_predicted_corner_and_resumes_it() {
    let dir = scratch("signoff");
    let mut cfg = FlowConfig::fast(&dir);
    cfg.fault_plan = None;
    cfg.audit_policy = cryo_soc::core::AuditPolicy::Warn;
    cfg.surrogate_policy = SurrogatePolicy::PredictWithFallback { max_rel_err: BOUND };
    cfg.jobs = 1;
    let sup = Supervisor::new(CryoFlow::new(cfg.clone()), SupervisorConfig::default());
    let rep = sup.run().expect("predicted-corner signoff");
    assert!(rep.completed);
    assert!(
        rep.audit.is_clean(),
        "predicted corner must pass the audit firewall: {:?}",
        rep.audit
    );
    let sum = rep.surrogate.clone().expect("pipeline report lifts the surrogate summary");
    assert!(sum.predicted > 0 && sum.fallbacks.is_empty());
    let json = serde_json::to_string(&rep).expect("report serializes");
    assert!(
        json.contains("\"surrogate\"") && json.contains(&sum.model_hash),
        "serialized pipeline report must carry the surrogate summary"
    );
    let v = rep.verdict.expect("verdict");
    assert!(
        v.cryo_fmax_ratio > 0.5 && v.cryo_fmax_ratio < 1.1,
        "predicted cold corner must yield a physical fmax ratio (got {})",
        v.cryo_fmax_ratio
    );

    // Namespace isolation: the predicted artifact lives under its own
    // blob; the SPICE cold-corner artifact is never written.
    let key = sup.pipeline_key().expect("key");
    let store = CheckpointStore::open(&dir, "pipeline", &key).expect("store");
    assert!(store.load_blob("charlib10_sur").is_some());
    assert!(
        store.load_blob("charlib10").is_none(),
        "a surrogate run must not write SPICE cold-corner artifacts"
    );

    // The surrogate policy shifts neither the pipeline key nor the warm
    // SPICE cache: the 300 K library this run wrote is exactly the file a
    // surrogate-off run reads.
    let mut off_cfg = FlowConfig::fast(&dir);
    off_cfg.fault_plan = None;
    off_cfg.surrogate_policy = SurrogatePolicy::Off;
    off_cfg.jobs = 1;
    let off_flow = CryoFlow::new(off_cfg.clone());
    let sup_off = Supervisor::new(off_flow.clone(), SupervisorConfig::default());
    assert_eq!(
        key,
        sup_off.pipeline_key().expect("key"),
        "surrogate policy must be excluded from the pipeline key"
    );
    let (nfet, pfet) = off_flow.effective_cards();
    let tag = cache::cell_set_tag(&topology::standard_cell_set());
    let k300 = cache::cache_key(&nfet, &pfet, &off_cfg.char_300k, &tag).expect("key");
    assert!(
        cache::load(&dir, "cryo5_tt_0p70v_300k", &k300).is_some(),
        "warm SPICE cache must be byte-addressable by a surrogate-off run"
    );

    // Resume: every stage (including the predicted corner) replays from
    // its checkpoint with zero SPICE.
    let sup2 = Supervisor::new(CryoFlow::new(cfg), SupervisorConfig::default());
    let rep2 = sup2.run().expect("resumed run");
    assert!(
        rep2.stages
            .iter()
            .all(|r| r.from_checkpoint && r.dc_solves + r.tran_solves == 0),
        "resume must replay every stage from checkpoints: {:?}",
        rep2.stages
    );
    assert_eq!(
        serde_json::to_string(&rep.surrogate).unwrap(),
        serde_json::to_string(&rep2.surrogate).unwrap(),
        "the resumed surrogate summary must round-trip bit-identically"
    );
}
