//! Liberty-flavoured text writer and parser.
//!
//! The on-disk dialect follows Liberty conventions closely enough to be
//! read by eye next to a real `.lib` file: `library`/`cell`/`pin`/`timing`
//! groups, `index_1`/`index_2`/`values` tables, `ff` groups for sequential
//! cells, and per-state `leakage_power` groups. Units in the file are
//! engineering-friendly (ps, fF, fJ, nW); the in-memory model stays SI.
//!
//! The parser round-trips everything the writer emits (property-tested in
//! the crate's test suite); it is not a general Liberty reader.

use crate::cell::{ArcKind, Cell, FfSpec, Pin, PinDirection, PowerArc, TimingArc, TimingSense};
use crate::function::LogicFunction;
use crate::library::Library;
use crate::table::Lut2;
use crate::{LibertyError, Result};
use cryo_spice::fault;

const TIME_SCALE: f64 = 1e12; // seconds -> ps
const CAP_SCALE: f64 = 1e15; // farads -> fF
const ENERGY_SCALE: f64 = 1e15; // joules -> fJ
const POWER_SCALE: f64 = 1e9; // watts -> nW

/// Serialize a library to the Liberty-style text format.
#[must_use]
pub fn write_library(lib: &Library) -> String {
    let mut out = String::new();
    let w = &mut out;
    push(w, 0, &format!("library ({}) {{", lib.name));
    push(w, 1, "delay_model : table_lookup;");
    push(w, 1, &format!("nom_temperature : {};", lib.temperature));
    push(w, 1, &format!("nom_voltage : {};", lib.vdd));
    push(w, 1, "time_unit : \"1ps\";");
    push(w, 1, "capacitive_load_unit (1, ff);");
    push(w, 1, "leakage_power_unit : \"1nW\";");
    for cell in lib.cells() {
        write_cell(w, cell);
    }
    push(w, 0, "}");
    out
}

fn push(out: &mut String, indent: usize, line: &str) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(line);
    out.push('\n');
}

fn fmt_axis(values: &[f64], scale: f64) -> String {
    values
        .iter()
        .map(|v| format!("{:.6}", v * scale))
        .collect::<Vec<_>>()
        .join(", ")
}

fn write_table(out: &mut String, indent: usize, name: &str, lut: &Lut2, value_scale: f64) {
    push(out, indent, &format!("{name} () {{"));
    push(
        out,
        indent + 1,
        &format!("index_1 (\"{}\");", fmt_axis(lut.index1(), TIME_SCALE)),
    );
    push(
        out,
        indent + 1,
        &format!("index_2 (\"{}\");", fmt_axis(lut.index2(), CAP_SCALE)),
    );
    let n2 = lut.index2().len();
    let rows: Vec<String> = lut
        .values()
        .chunks(n2)
        .map(|row| format!("\"{}\"", fmt_axis(row, value_scale)))
        .collect();
    push(
        out,
        indent + 1,
        &format!("values ({});", rows.join(", \\\n        ")),
    );
    push(out, indent, "}");
}

fn sense_str(sense: TimingSense) -> &'static str {
    match sense {
        TimingSense::PositiveUnate => "positive_unate",
        TimingSense::NegativeUnate => "negative_unate",
        TimingSense::NonUnate => "non_unate",
    }
}

fn timing_type_str(kind: ArcKind) -> Option<&'static str> {
    match kind {
        ArcKind::Combinational => None,
        ArcKind::ClockToQ => Some("rising_edge"),
        ArcKind::Setup => Some("setup_rising"),
        ArcKind::Hold => Some("hold_rising"),
    }
}

fn write_cell(out: &mut String, cell: &Cell) {
    push(out, 1, &format!("cell ({}) {{", cell.name));
    push(out, 2, &format!("area : {:.4};", cell.area));
    push(
        out,
        2,
        &format!(
            "cell_leakage_power : {:.6};",
            cell.average_leakage() * POWER_SCALE
        ),
    );
    for (state, watts) in &cell.leakage_states {
        push(out, 2, "leakage_power () {");
        push(out, 3, &format!("when : \"{state}\";"));
        push(out, 3, &format!("value : {:.6};", watts * POWER_SCALE));
        push(out, 2, "}");
    }
    if let Some(ff) = &cell.ff {
        push(out, 2, "ff (IQ, IQN) {");
        push(out, 3, &format!("clocked_on : \"{}\";", ff.clocked_on));
        push(out, 3, &format!("next_state : \"{}\";", ff.next_state));
        if let Some(clear) = &ff.clear {
            push(out, 3, &format!("clear : \"!{clear}\";"));
        }
        push(out, 2, "}");
    }
    for pin in &cell.pins {
        push(out, 2, &format!("pin ({}) {{", pin.name));
        let dir = match pin.direction {
            PinDirection::Input => "input",
            PinDirection::Output => "output",
        };
        push(out, 3, &format!("direction : {dir};"));
        if pin.is_clock {
            push(out, 3, "clock : true;");
        }
        if pin.direction == PinDirection::Input {
            push(
                out,
                3,
                &format!("capacitance : {:.6};", pin.capacitance * CAP_SCALE),
            );
        }
        if let Some(f) = &pin.function {
            push(out, 3, &format!("function : \"{}\";", f.to_expression()));
        }
        for arc in cell.arcs.iter().filter(|a| a.pin == pin.name) {
            push(out, 3, "timing () {");
            push(out, 4, &format!("related_pin : \"{}\";", arc.related_pin));
            if let Some(tt) = timing_type_str(arc.kind) {
                push(out, 4, &format!("timing_type : {tt};"));
            }
            push(out, 4, &format!("timing_sense : {};", sense_str(arc.sense)));
            write_table(out, 4, "cell_rise", &arc.cell_rise, TIME_SCALE);
            write_table(out, 4, "rise_transition", &arc.rise_transition, TIME_SCALE);
            write_table(out, 4, "cell_fall", &arc.cell_fall, TIME_SCALE);
            write_table(out, 4, "fall_transition", &arc.fall_transition, TIME_SCALE);
            push(out, 3, "}");
        }
        for pa in cell.power_arcs.iter().filter(|p| p.pin == pin.name) {
            push(out, 3, "internal_power () {");
            push(out, 4, &format!("related_pin : \"{}\";", pa.related_pin));
            write_table(out, 4, "rise_power", &pa.rise_energy, ENERGY_SCALE);
            write_table(out, 4, "fall_power", &pa.fall_energy, ENERGY_SCALE);
            push(out, 3, "}");
        }
        push(out, 2, "}");
    }
    push(out, 1, "}");
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

/// A parsed Liberty group: `name (args) { attributes; subgroups }`.
#[derive(Debug, Clone, Default)]
struct Group {
    name: String,
    args: String,
    attrs: Vec<(String, String)>,
    subs: Vec<Group>,
}

impl Group {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn subs_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> {
        self.subs.iter().filter(move |g| g.name == name)
    }
}

/// Parse Liberty-style text produced by [`write_library`].
///
/// # Errors
///
/// [`LibertyError::Parse`] on structural problems,
/// [`LibertyError::MalformedTable`] if a table has inconsistent axes.
pub fn parse_library(text: &str) -> Result<Library> {
    let root = parse_groups(text)?;
    let lib_group = root
        .subs_named("library")
        .next()
        .ok_or_else(|| LibertyError::Parse {
            line: 1,
            reason: "no library group".to_string(),
        })?;
    let temperature = lib_group
        .attr("nom_temperature")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0);
    let vdd = lib_group
        .attr("nom_voltage")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.7);
    let mut lib = Library::new(&lib_group.args, temperature, vdd);
    for cg in lib_group.subs_named("cell") {
        lib.add_cell(parse_cell(cg)?);
    }
    Ok(lib)
}

/// Tokenize into a nested group tree. The root group collects top-level
/// groups as subgroups.
fn parse_groups(text: &str) -> Result<Group> {
    // Join continued lines (trailing backslash).
    let joined = text.replace("\\\n", " ");
    let mut lines = joined
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("/*") && !l.starts_with("//"));
    let mut root = Group::default();
    let total = joined.lines().count();
    parse_body(&mut lines, &mut root, 0, total)?;
    Ok(root)
}

/// Parse statements into `group` until its closing brace (or EOF at depth 0).
fn parse_body<'a, I>(lines: &mut I, group: &mut Group, depth: usize, total: usize) -> Result<()>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    while let Some((lineno, line)) = lines.next() {
        if line == "}" {
            if depth == 0 {
                return Err(LibertyError::Parse {
                    line: lineno,
                    reason: "unbalanced closing brace".to_string(),
                });
            }
            return Ok(());
        }
        if let Some(head) = line.strip_suffix('{') {
            let head = head.trim();
            let (name, args) = split_head(head).ok_or(LibertyError::Parse {
                line: lineno,
                reason: format!("bad group header: {head}"),
            })?;
            let mut sub = Group {
                name,
                args,
                ..Group::default()
            };
            parse_body(lines, &mut sub, depth + 1, total)?;
            group.subs.push(sub);
            continue;
        }
        if let Some(body) = line.strip_suffix(';') {
            if let Some((key, value)) = body.split_once(':') {
                group.attrs.push((
                    key.trim().to_string(),
                    value.trim().trim_matches('"').to_string(),
                ));
            } else if let Some((name, args)) = split_head(body) {
                // Attribute-with-parens, e.g. `index_1 ("...")`.
                group.attrs.push((name, args));
            } else {
                return Err(LibertyError::Parse {
                    line: lineno,
                    reason: format!("unparsable statement: {body}"),
                });
            }
            continue;
        }
        return Err(LibertyError::Parse {
            line: lineno,
            reason: format!("unexpected line: {line}"),
        });
    }
    if depth != 0 {
        return Err(LibertyError::Parse {
            line: total,
            reason: "unterminated group".to_string(),
        });
    }
    Ok(())
}

fn split_head(head: &str) -> Option<(String, String)> {
    let open = head.find('(')?;
    let close = head.rfind(')')?;
    if close < open {
        return None;
    }
    let name = head[..open].trim().to_string();
    let args = head[open + 1..close].trim().trim_matches('"').to_string();
    Some((name, args))
}

/// Parse one comma-separated numeric axis/values list. Unparsable tokens
/// are a structured [`LibertyError::MalformedTable`] naming the attribute
/// and the offending token — silently dropping them (the old behavior)
/// turns a damaged file into a smaller-but-plausible table and moves the
/// failure downstream to an interpolation that quietly extrapolates.
fn parse_axis(s: &str, scale: f64, what: &str) -> Result<Vec<f64>> {
    s.trim_matches('"')
        .split(',')
        .map(|v| v.trim().trim_matches('"'))
        .filter(|v| !v.is_empty())
        .map(|v| {
            v.parse::<f64>()
                .map(|x| x / scale)
                .map_err(|_| LibertyError::MalformedTable {
                    reason: format!("{what}: unparsable number `{v}`"),
                })
        })
        .collect()
}

fn parse_table(g: &Group, value_scale: f64) -> Result<Lut2> {
    let i1 = parse_axis(g.attr("index_1").unwrap_or("0"), TIME_SCALE, "index_1")?;
    let i2 = parse_axis(g.attr("index_2").unwrap_or("0"), CAP_SCALE, "index_2")?;
    let mut vals = parse_axis(g.attr("values").unwrap_or(""), value_scale, "values")?;
    // Deterministic fault-injection site: a hit simulates a table
    // truncated on disk (crash mid-write, bad sector). The truncated
    // values fail `Lut2::new`'s size check, so the caller sees the same
    // structured `MalformedTable` diagnostic a genuinely damaged file
    // would produce.
    if fault::should_corrupt_liberty_ingest() {
        vals.truncate(vals.len() / 2);
    }
    Lut2::new(i1, i2, vals)
}

fn parse_cell(g: &Group) -> Result<Cell> {
    let name = g.args.clone();
    let area = g.attr("area").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let mut leakage_states = Vec::new();
    for lg in g.subs_named("leakage_power") {
        let state: u16 = lg.attr("when").and_then(|s| s.parse().ok()).unwrap_or(0);
        let value: f64 = lg.attr("value").and_then(|s| s.parse().ok()).unwrap_or(0.0);
        leakage_states.push((state, value / POWER_SCALE));
    }
    let ff = g.subs_named("ff").next().map(|fg| FfSpec {
        clocked_on: fg.attr("clocked_on").unwrap_or("CLK").to_string(),
        next_state: fg.attr("next_state").unwrap_or("D").to_string(),
        clear: fg
            .attr("clear")
            .map(|s| s.trim_start_matches('!').to_string()),
    });

    // First pass: pins and input names (needed to parse output functions).
    let mut pins = Vec::new();
    let mut input_names: Vec<String> = Vec::new();
    for pg in g.subs_named("pin") {
        let dir = match pg.attr("direction") {
            Some("output") => PinDirection::Output,
            _ => PinDirection::Input,
        };
        if dir == PinDirection::Input {
            input_names.push(pg.args.clone());
        }
    }
    let input_refs: Vec<&str> = input_names.iter().map(String::as_str).collect();

    let mut arcs = Vec::new();
    let mut power_arcs = Vec::new();
    for pg in g.subs_named("pin") {
        let pin_name = pg.args.clone();
        let dir = match pg.attr("direction") {
            Some("output") => PinDirection::Output,
            _ => PinDirection::Input,
        };
        let capacitance = pg
            .attr("capacitance")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0)
            / CAP_SCALE;
        let function = pg
            .attr("function")
            .and_then(|expr| LogicFunction::parse(expr, &input_refs));
        let is_clock = pg.attr("clock") == Some("true");
        pins.push(Pin {
            name: pin_name.clone(),
            direction: dir,
            capacitance,
            function,
            is_clock,
        });
        for tg in pg.subs_named("timing") {
            let kind = match tg.attr("timing_type") {
                Some("rising_edge") => ArcKind::ClockToQ,
                Some("setup_rising") => ArcKind::Setup,
                Some("hold_rising") => ArcKind::Hold,
                _ => ArcKind::Combinational,
            };
            let sense = match tg.attr("timing_sense") {
                Some("positive_unate") => TimingSense::PositiveUnate,
                Some("non_unate") => TimingSense::NonUnate,
                _ => TimingSense::NegativeUnate,
            };
            let table_of = |name: &str| -> Result<Lut2> {
                tg.subs_named(name)
                    .next()
                    .map(|g| parse_table(g, TIME_SCALE))
                    .unwrap_or_else(|| Ok(Lut2::constant(0.0)))
            };
            arcs.push(TimingArc {
                related_pin: tg.attr("related_pin").unwrap_or("").to_string(),
                pin: pin_name.clone(),
                kind,
                sense,
                cell_rise: table_of("cell_rise")?,
                cell_fall: table_of("cell_fall")?,
                rise_transition: table_of("rise_transition")?,
                fall_transition: table_of("fall_transition")?,
            });
        }
        for ig in pg.subs_named("internal_power") {
            let table_of = |name: &str| -> Result<Lut2> {
                ig.subs_named(name)
                    .next()
                    .map(|g| parse_table(g, ENERGY_SCALE))
                    .unwrap_or_else(|| Ok(Lut2::constant(0.0)))
            };
            power_arcs.push(PowerArc {
                related_pin: ig.attr("related_pin").unwrap_or("").to_string(),
                pin: pin_name.clone(),
                rise_energy: table_of("rise_power")?,
                fall_energy: table_of("fall_power")?,
            });
        }
    }
    let drive = name
        .rsplit('x')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    Ok(Cell {
        name,
        area,
        pins,
        arcs,
        power_arcs,
        leakage_states,
        ff,
        drive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_library() -> Library {
        let mut lib = Library::new("unit_lib", 10.0, 0.7);
        let inv = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        let grid = Lut2::new(
            vec![1e-12, 4e-12],
            vec![1e-15, 4e-15],
            vec![2e-12, 3e-12, 4e-12, 6e-12],
        )
        .unwrap();
        lib.add_cell(Cell {
            name: "INVx2".to_string(),
            area: 0.054,
            pins: vec![Pin::input("A", 0.35e-15), Pin::output("Y", inv)],
            arcs: vec![TimingArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                kind: ArcKind::Combinational,
                sense: TimingSense::NegativeUnate,
                cell_rise: grid.clone(),
                cell_fall: grid.scaled(0.9),
                rise_transition: grid.scaled(0.5),
                fall_transition: grid.scaled(0.45),
            }],
            power_arcs: vec![PowerArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                rise_energy: Lut2::constant(1.5e-18),
                fall_energy: Lut2::constant(1.2e-18),
            }],
            leakage_states: vec![(0, 0.8e-9), (1, 2.1e-9)],
            ff: None,
            drive: 2,
        });
        let dff_d = LogicFunction::from_eval(&["D"], |b| b & 1 != 0);
        lib.add_cell(Cell {
            name: "DFFx1".to_string(),
            area: 0.21,
            pins: vec![
                {
                    let mut p = Pin::input("CLK", 0.3e-15);
                    p.is_clock = true;
                    p
                },
                Pin::input("D", 0.25e-15),
                Pin::output("Q", dff_d),
            ],
            arcs: vec![
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "Q".into(),
                    kind: ArcKind::ClockToQ,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(8e-12),
                    cell_fall: Lut2::constant(8.5e-12),
                    rise_transition: Lut2::constant(3e-12),
                    fall_transition: Lut2::constant(3e-12),
                },
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "D".into(),
                    kind: ArcKind::Setup,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(5e-12),
                    cell_fall: Lut2::constant(5e-12),
                    rise_transition: Lut2::constant(0.0),
                    fall_transition: Lut2::constant(0.0),
                },
            ],
            power_arcs: vec![],
            leakage_states: vec![(0, 3e-9)],
            ff: Some(FfSpec {
                clocked_on: "CLK".into(),
                next_state: "D".into(),
                clear: None,
            }),
            drive: 1,
        });
        lib
    }

    #[test]
    fn writer_emits_liberty_markers() {
        let text = write_library(&sample_library());
        for marker in [
            "library (unit_lib) {",
            "cell (INVx2) {",
            "pin (Y) {",
            "timing () {",
            "related_pin : \"A\";",
            "index_1 (",
            "ff (IQ, IQN) {",
            "timing_type : setup_rising;",
        ] {
            assert!(text.contains(marker), "missing {marker:?}\n{text}");
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let lib = sample_library();
        let text = write_library(&lib);
        let back = parse_library(&text).expect("parse back");
        assert_eq!(back.name, lib.name);
        assert_eq!(back.temperature, lib.temperature);
        assert_eq!(back.len(), lib.len());
        let inv = back.cell("INVx2").unwrap();
        assert_eq!(inv.arcs.len(), 1);
        assert_eq!(inv.pins.len(), 2);
        assert_eq!(inv.leakage_states.len(), 2);
        let dff = back.cell("DFFx1").unwrap();
        assert!(dff.is_sequential());
        assert_eq!(dff.constraint_arcs().count(), 1);
        assert!(dff.pin("CLK").unwrap().is_clock);
    }

    #[test]
    fn round_trip_preserves_table_values() {
        let lib = sample_library();
        let back = parse_library(&write_library(&lib)).unwrap();
        let orig = &lib.cell("INVx2").unwrap().arcs[0];
        let rt = &back.cell("INVx2").unwrap().arcs[0];
        for (slew, load) in [(1e-12, 1e-15), (2.5e-12, 3e-15), (4e-12, 4e-15)] {
            let a = orig.cell_rise.lookup(slew, load);
            let b = rt.cell_rise.lookup(slew, load);
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1e-15),
                "({slew:e},{load:e}): {a:e} vs {b:e}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_functions() {
        let lib = sample_library();
        let back = parse_library(&write_library(&lib)).unwrap();
        let f = back
            .cell("INVx2")
            .unwrap()
            .pin("Y")
            .unwrap()
            .function
            .clone()
            .expect("function survives");
        assert!(f.eval(0));
        assert!(!f.eval(1));
    }

    #[test]
    fn parser_rejects_unbalanced_braces() {
        let err = parse_library("library (x) {\n  cell (a) {\n").unwrap_err();
        assert!(matches!(err, LibertyError::Parse { .. }));
        let err2 = parse_library("}\n").unwrap_err();
        assert!(matches!(err2, LibertyError::Parse { .. }));
    }

    #[test]
    fn parser_rejects_garbage_line() {
        let err = parse_library("library (x) {\n  what is this\n}\n").unwrap_err();
        assert!(matches!(err, LibertyError::Parse { .. }));
    }

    #[test]
    fn corrupt_table_token_is_a_structured_diagnostic_not_a_silent_drop() {
        let text = write_library(&sample_library());
        // Damage one table value the way a bad sector would: replace a
        // number with junk. The parser must refuse, naming the attribute.
        let damaged = text.replacen("2.000000", "2.0#!000", 1);
        assert_ne!(text, damaged, "damage site must exist");
        let err = parse_library(&damaged).unwrap_err();
        match err {
            LibertyError::MalformedTable { reason } => {
                assert!(reason.contains("unparsable number"), "{reason}");
            }
            other => panic!("expected MalformedTable, got {other:?}"),
        }
    }

    #[test]
    fn injected_ingest_fault_surfaces_as_malformed_table() {
        let text = write_library(&sample_library());
        let plan = fault::FaultPlan {
            liberty_ingest: 1.0,
            max_injections: Some(1),
            ..fault::FaultPlan::new(11)
        };
        let _g = fault::install_guard(plan);
        let err = parse_library(&text).unwrap_err();
        assert!(
            matches!(err, LibertyError::MalformedTable { .. }),
            "truncated ingest must be a structured table error, got {err:?}"
        );
        assert_eq!(fault::injection_count(), 1);
        drop(_g);
        assert!(parse_library(&text).is_ok(), "clean parse once disarmed");
    }
}
