//! The PVT corner farm: fault-isolated multi-corner signoff.
//!
//! The paper's flow characterizes exactly two corners — {300 K, 10 K} at
//! 0.70 V, typical process. Real cryogenic signoff needs a dense PVT grid
//! (the cryo-EDA platform of Tang et al. characterizes the full 4 K–300 K
//! range), and at 20+ corners partial failure is the common case: one sick
//! corner must degrade the verdict, never sink the farm. This module is
//! that layer:
//!
//! - [`CornerSpec`] — a declarative corner set (`T=…;V=…;P=…`), strictly
//!   validated, deduplicated, and canonically ordered, parsed from
//!   `CRYO_CORNERS` / `--corners`.
//! - [`CornerFarm`] — schedules one supervised characterize→audit→STA
//!   pipeline per corner with **per-corner fault isolation**: each corner
//!   gets its own retry/deadline budget on a watchdog-supervised worker, a
//!   checksummed checkpoint blob in the farm's namespace, and terminal
//!   failures are quarantined into a `Failed{cause}` outcome instead of
//!   aborting the run.
//! - **Resumable manifest.** The farm namespace is keyed by
//!   [`CornerFarm::farm_key`]; a run killed mid-farm resumes with zero
//!   re-simulation of completed corners (the per-corner ledger's
//!   simulator counters prove it), and the key is `jobs`-invariant so a
//!   run interrupted at `jobs = 1` resumes under `jobs = 8`.
//! - **Surrogate-anchored prediction.** The warmest corner of each
//!   (process, VDD) group is SPICE ground truth; with
//!   [`SurrogatePolicy::PredictWithFallback`] every other corner in the
//!   group is predicted from that anchor and audit-gated with per-cell
//!   SPICE fallback.
//! - [`FarmReport`] — per-corner provenance (Spice / Predicted / Derated
//!   / Failed) and a signoff verdict gated on a minimum-signed-corner
//!   floor, echoing the characterization coverage floor.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use cryo_cells::{cache, topology, CheckpointStore};
use cryo_liberty::{audit_cross_corner_nearest, audit_library};
use cryo_spice::fault;
use cryo_sta::{counters, MissingArcPolicy};
use cryo_surrogate::fnv64;
use serde::{Deserialize, Serialize};

use crate::audit::{self, AuditPolicy};
use crate::flow::CryoFlow;
use crate::supervise::{retryable, validate_env};
use crate::surrogate::SurrogatePolicy;
use crate::{CoreError, Result};

// ----------------------------------------------------------------------
// Corner specification
// ----------------------------------------------------------------------

/// Process corner, realized by pushing the calibrated model cards to the
/// deterministic extreme of the Monte-Carlo variation model
/// (`cryo_device::corner_die`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Process {
    /// Typical-typical: the calibrated cards, bit for bit.
    Tt,
    /// Slow-slow: +3-sigma threshold/resistance, −3-sigma mobility.
    Ss,
    /// Fast-fast: the mirror image of ss.
    Ff,
}

impl Process {
    /// Every process corner, in canonical (farm) order: the typical
    /// reference first, then the extremes.
    pub const ALL: [Process; 3] = [Process::Tt, Process::Ss, Process::Ff];

    /// Stable lowercase name, as it appears in library names and specs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Process::Tt => "tt",
            Process::Ss => "ss",
            Process::Ff => "ff",
        }
    }

    /// The sigma multiplier handed to `corner_die`: `+1` slow, `0`
    /// typical, `−1` fast.
    #[must_use]
    pub fn sigma_sign(self) -> f64 {
        match self {
            Process::Tt => 0.0,
            Process::Ss => 1.0,
            Process::Ff => -1.0,
        }
    }

    fn order(self) -> usize {
        Process::ALL.iter().position(|p| *p == self).expect("in ALL")
    }

    /// Parse `tt` / `ss` / `ff` (case-insensitive).
    ///
    /// # Errors
    ///
    /// A human-readable reason for anything else.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "tt" => Ok(Process::Tt),
            "ss" => Ok(Process::Ss),
            "ff" => Ok(Process::Ff),
            other => Err(format!("unknown process corner {other:?} (expected tt, ss, or ff)")),
        }
    }
}

/// One PVT corner of the farm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Corner {
    /// Temperature, kelvin.
    pub temp: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Process corner.
    pub process: Process,
}

impl Corner {
    /// Canonical corner name, e.g. `ss_0p65v_4p2k` — the corner's library
    /// name minus the `cryo5_` family prefix. Used as the checkpoint blob
    /// name, the fault-injection scope (`corner:<name>`), and the stage
    /// label in audit findings.
    #[must_use]
    pub fn name(&self) -> String {
        self.lib_name()
            .strip_prefix("cryo5_")
            .expect("corner_lib_name is cryo5_-prefixed")
            .to_string()
    }

    /// The corner's library name (`cache::corner_lib_name`), byte-
    /// compatible with the legacy two-point names for {300 K, 10 K} ×
    /// 0.70 V × tt.
    #[must_use]
    pub fn lib_name(&self) -> String {
        cache::corner_lib_name(self.process.name(), self.vdd, self.temp)
    }
}

/// Calibrated temperature range the farm accepts, kelvin. The device
/// model is anchored on 4 K–300 K measurements; a small margin on both
/// sides keeps interpolation honest while rejecting obvious typos.
pub const TEMP_RANGE_K: (f64, f64) = (2.0, 400.0);
/// Accepted supply range, volts.
pub const VDD_RANGE_V: (f64, f64) = (0.40, 1.00);

/// A declarative corner set: the cross product of a temperature sweep, a
/// VDD list, and a process list. Parsed from `CRYO_CORNERS` / `--corners`
/// as `T=300,77,4.2;V=0.70,0.65;P=tt,ss`; `V` defaults to `0.70` and `P`
/// to `tt` when omitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerSpec {
    /// Temperatures, kelvin.
    pub temps: Vec<f64>,
    /// Supplies, volts.
    pub vdds: Vec<f64>,
    /// Process corners.
    pub procs: Vec<Process>,
}

impl CornerSpec {
    /// Parse and validate a spec string. The result is normalized
    /// (sorted, deduplicated), so equal corner sets parse to equal specs
    /// regardless of axis ordering in the input.
    ///
    /// # Errors
    ///
    /// A human-readable reason: empty spec or axis, unknown axis or
    /// process, malformed numbers, duplicate axes or values, temperatures
    /// outside [`TEMP_RANGE_K`] or off the 0.1 K grid, supplies outside
    /// [`VDD_RANGE_V`] or off the 1 mV grid.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        if s.trim().is_empty() {
            return Err("empty corner spec (expected T=...[;V=...][;P=...])".into());
        }
        let mut temps: Option<Vec<f64>> = None;
        let mut vdds: Option<Vec<f64>> = None;
        let mut procs: Option<Vec<Process>> = None;
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((axis, values)) = clause.split_once('=') else {
                return Err(format!("clause {clause:?} is not AXIS=VALUE,VALUE,..."));
            };
            let axis = axis.trim().to_ascii_uppercase();
            let values: Vec<&str> = values.split(',').map(str::trim).collect();
            if values.iter().any(|v| v.is_empty()) {
                return Err(format!("axis {axis} has an empty value (empty sweep?)"));
            }
            match axis.as_str() {
                "T" => {
                    if temps.is_some() {
                        return Err("duplicate T axis".into());
                    }
                    temps = Some(parse_grid_axis(
                        "temperature",
                        &values,
                        TEMP_RANGE_K,
                        10.0,
                        "K",
                        "0.1 K",
                    )?);
                }
                "V" => {
                    if vdds.is_some() {
                        return Err("duplicate V axis".into());
                    }
                    vdds = Some(parse_grid_axis(
                        "vdd",
                        &values,
                        VDD_RANGE_V,
                        1000.0,
                        "V",
                        "1 mV",
                    )?);
                }
                "P" => {
                    if procs.is_some() {
                        return Err("duplicate P axis".into());
                    }
                    let mut list = Vec::new();
                    for v in &values {
                        let p = Process::parse(v)?;
                        if list.contains(&p) {
                            return Err(format!("duplicate process corner {}", p.name()));
                        }
                        list.push(p);
                    }
                    procs = Some(list);
                }
                other => {
                    return Err(format!("unknown axis {other:?} (expected T, V, or P)"));
                }
            }
        }
        let Some(temps) = temps else {
            return Err("missing T axis (a corner spec needs at least a temperature sweep)".into());
        };
        let mut spec = CornerSpec {
            temps,
            vdds: vdds.unwrap_or_else(|| vec![0.70]),
            procs: procs.unwrap_or_else(|| vec![Process::Tt]),
        };
        spec.normalize();
        Ok(spec)
    }

    /// Strictly parse `CRYO_CORNERS`; unset means `None` (no farm).
    ///
    /// # Errors
    ///
    /// The parse failure reason for a set-but-malformed variable.
    pub fn from_env_checked() -> std::result::Result<Option<Self>, String> {
        match std::env::var("CRYO_CORNERS") {
            Ok(s) => Self::parse(&s).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Sort each axis into canonical order (temperatures warmest-first so
    /// every group leads with its SPICE anchor, supplies ascending,
    /// processes in [`Process::ALL`] order) and drop duplicates.
    /// Idempotent; [`CornerSpec::parse`] already returns normalized specs.
    pub fn normalize(&mut self) {
        self.temps.sort_by(|a, b| b.partial_cmp(a).expect("finite temps"));
        self.temps.dedup_by(|a, b| (*a - *b).abs() < 0.05);
        self.vdds.sort_by(|a, b| a.partial_cmp(b).expect("finite vdds"));
        self.vdds.dedup_by(|a, b| (*a - *b).abs() < 0.5e-3);
        self.procs.sort_by_key(|p| p.order());
        self.procs.dedup();
    }

    /// The corner list: the full cross product in canonical order —
    /// grouped by (process, VDD) with temperatures warmest-first, so each
    /// group is contiguous and leads with its anchor corner.
    #[must_use]
    pub fn corners(&self) -> Vec<Corner> {
        let mut spec = self.clone();
        spec.normalize();
        let mut out = Vec::new();
        for &process in &spec.procs {
            for &vdd in &spec.vdds {
                for &temp in &spec.temps {
                    out.push(Corner { temp, vdd, process });
                }
            }
        }
        out
    }

    /// The canonical spec string: parsing it back yields an equal spec.
    #[must_use]
    pub fn spec_string(&self) -> String {
        let mut spec = self.clone();
        spec.normalize();
        let join = |xs: &[f64]| {
            xs.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "T={};V={};P={}",
            join(&spec.temps),
            join(&spec.vdds),
            spec.procs
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    /// FNV-64 digest of the canonical corner list — invariant under axis
    /// reordering of the input spec.
    #[must_use]
    pub fn canonical_digest(&self) -> String {
        let names: Vec<String> = self.corners().iter().map(Corner::name).collect();
        fnv64(&names.join("|"))
    }
}

/// Parse one numeric axis: finite, inside `range`, and on the grid of
/// `1/grid_scale` units (0.1 K for temperatures, 1 mV for supplies) so
/// corner names are lossless; duplicates rejected.
fn parse_grid_axis(
    what: &str,
    values: &[&str],
    range: (f64, f64),
    grid_scale: f64,
    unit: &str,
    grid_name: &str,
) -> std::result::Result<Vec<f64>, String> {
    let mut out: Vec<f64> = Vec::new();
    for v in values {
        let x: f64 = v
            .parse()
            .map_err(|_| format!("bad {what} {v:?} (expected a number)"))?;
        if !x.is_finite() || x < range.0 || x > range.1 {
            return Err(format!(
                "{what} {v} {unit} outside the calibrated range [{}, {}] {unit}",
                range.0, range.1
            ));
        }
        let scaled = x * grid_scale;
        if (scaled - scaled.round()).abs() > 1e-6 {
            return Err(format!("{what} {v} {unit} is not on the {grid_name} grid"));
        }
        if out.iter().any(|y| (y - x).abs() < 0.5 / grid_scale) {
            return Err(format!("duplicate {what} {v} {unit}"));
        }
        out.push(x);
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Farm configuration + report
// ----------------------------------------------------------------------

/// Knobs for the corner farm.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// The corner set to sign off.
    pub spec: CornerSpec,
    /// Per-corner deadline; an overrunning corner is quarantined as
    /// `Failed`, not retried (its watchdog worker is leaked, exactly like
    /// a supervised stage timeout).
    pub corner_budget: Duration,
    /// Overall wall-clock budget for the whole farm; the effective
    /// per-corner deadline is clamped by what remains of this.
    pub overall_budget: Duration,
    /// Attempts per corner (1 = no retry). Coverage, configuration,
    /// timeout, and post-repair audit errors are never retried.
    pub max_attempts: u32,
    /// Initial retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Missing-arc policy for the per-corner STA.
    pub missing_arc_policy: MissingArcPolicy,
    /// Minimum fraction of corners that must sign for the farm verdict.
    pub min_signed_frac: f64,
    /// When set, each `Failed` corner borrows its nearest signed
    /// same-(process, VDD) neighbor's numbers with this pessimism margin
    /// (`fmax × (1 − m)`, delays `× (1 + m)`) and signs as `Derated`.
    pub derate_margin: Option<f64>,
    /// Stop (successfully, `completed = false`) after this many corners —
    /// the in-process kill point used by the resume tests and CI drill.
    pub halt_after: Option<usize>,
}

impl FarmConfig {
    /// Defaults for `spec`: supervised-pipeline-scale budgets, a 90 %
    /// signed floor, no derating.
    #[must_use]
    pub fn new(spec: CornerSpec) -> Self {
        FarmConfig {
            spec,
            corner_budget: Duration::from_secs(600),
            overall_budget: Duration::from_secs(3600),
            max_attempts: 3,
            backoff: Duration::from_millis(50),
            missing_arc_policy: MissingArcPolicy::BorrowSibling { margin: 0.10 },
            min_signed_frac: 0.9,
            derate_margin: None,
            halt_after: None,
        }
    }
}

/// Where a signed corner's numbers came from — the farm-level analogue of
/// the library's `Provenance`.
#[derive(Debug, Clone, PartialEq)]
pub enum CornerProvenance {
    /// Full SPICE characterization (anchor corners, or every corner with
    /// the surrogate off).
    Spice,
    /// Predicted from the group's anchor by the learned surrogate
    /// (audit-gated, per-cell SPICE fallback).
    Predicted {
        /// FNV-64 digest of the trained model's weights.
        model_hash: String,
    },
    /// Borrowed from a signed neighbor with a pessimism margin after this
    /// corner failed terminally.
    Derated {
        /// The donor corner's name.
        from: String,
        /// The pessimism margin applied.
        margin: f64,
    },
    /// Terminal failure, quarantined: the farm completed without it.
    Failed {
        /// The terminal error, verbatim.
        cause: String,
    },
}

// The vendored serde derive only handles unit-variant enums, so the
// tagged-object encoding is written out (same pattern as `Provenance`).
impl Serialize for CornerProvenance {
    fn to_value(&self) -> serde::Value {
        let kind = |k: &str| ("kind".to_string(), k.to_string().to_value());
        match self {
            CornerProvenance::Spice => serde::Value::Object(vec![kind("spice")]),
            CornerProvenance::Predicted { model_hash } => serde::Value::Object(vec![
                kind("predicted"),
                ("model_hash".to_string(), model_hash.to_value()),
            ]),
            CornerProvenance::Derated { from, margin } => serde::Value::Object(vec![
                kind("derated"),
                ("from".to_string(), from.to_value()),
                ("margin".to_string(), margin.to_value()),
            ]),
            CornerProvenance::Failed { cause } => serde::Value::Object(vec![
                kind("failed"),
                ("cause".to_string(), cause.to_value()),
            ]),
        }
    }
}

impl Deserialize for CornerProvenance {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        fn field<T: Deserialize>(
            v: &serde::Value,
            name: &str,
        ) -> std::result::Result<T, serde::Error> {
            Deserialize::from_value(v.get(name))
                .map_err(|e| serde::Error::custom(format!("CornerProvenance.{name}: {e}")))
        }
        let kind: String = field(v, "kind")?;
        match kind.as_str() {
            "spice" => Ok(CornerProvenance::Spice),
            "predicted" => Ok(CornerProvenance::Predicted {
                model_hash: field(v, "model_hash")?,
            }),
            "derated" => Ok(CornerProvenance::Derated {
                from: field(v, "from")?,
                margin: field(v, "margin")?,
            }),
            "failed" => Ok(CornerProvenance::Failed {
                cause: field(v, "cause")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown CornerProvenance kind {other:?}"
            ))),
        }
    }
}

/// One corner's signoff outcome. Deterministic for a given farm
/// configuration — this is what the checkpoint blob stores, so a resumed
/// farm reproduces its report byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerOutcome {
    /// Canonical corner name.
    pub name: String,
    /// Temperature, kelvin.
    pub temp: f64,
    /// Supply, volts.
    pub vdd: f64,
    /// Process corner.
    pub process: Process,
    /// Where the numbers came from.
    pub provenance: CornerProvenance,
    /// Whether this corner counts toward the signoff floor.
    pub signed: bool,
    /// Maximum clock at this corner, hertz (`None` when failed).
    pub fmax_hz: Option<f64>,
    /// Library mean arc delay, seconds (`None` when failed).
    pub mean_delay: Option<f64>,
    /// Cells in the corner's library.
    pub cells: usize,
    /// Degraded (stand-in) arcs in the corner's timing report.
    pub degraded_arcs: usize,
    /// Cells repaired by targeted re-characterization, in repair order.
    pub repaired: Vec<String>,
    /// Predicted cells that fell back to SPICE, in name order.
    pub fallbacks: Vec<String>,
}

impl CornerOutcome {
    fn failed(corner: Corner, cause: String) -> Self {
        CornerOutcome {
            name: corner.name(),
            temp: corner.temp,
            vdd: corner.vdd,
            process: corner.process,
            provenance: CornerProvenance::Failed { cause },
            signed: false,
            fmax_hz: None,
            mean_delay: None,
            cells: 0,
            degraded_arcs: 0,
            repaired: Vec::new(),
            fallbacks: Vec::new(),
        }
    }
}

/// Per-corner execution record — the farm's ledger entry, kept outside
/// [`FarmReport`] because wall-clock and resume provenance legitimately
/// differ between a cold run and its resume while the report must not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerRecord {
    /// Canonical corner name.
    pub corner: String,
    /// `true` when the outcome was loaded from its checkpoint blob.
    pub from_checkpoint: bool,
    /// Attempts taken (0 when resumed).
    pub attempts: u32,
    /// Wall-clock seconds spent (≈0 when resumed).
    pub wall_s: f64,
    /// DC operating-point solves this corner ran.
    pub dc_solves: u64,
    /// Transient analyses this corner ran.
    pub tran_solves: u64,
    /// STA arc evaluations this corner ran.
    pub arc_evals: u64,
}

/// The farm manifest, stored as the `manifest` blob in the farm's
/// checkpoint namespace: enough to identify what a half-finished farm was
/// building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmManifest {
    /// The farm's checkpoint-namespace key.
    pub farm_key: String,
    /// Canonical spec string.
    pub spec: String,
    /// Canonical corner names, in execution order.
    pub corners: Vec<String>,
}

/// The farm's headline artifact: per-corner provenance plus the signoff
/// verdict. Byte-identical across kill/resume and any `jobs` setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmReport {
    /// Checkpoint-namespace key derived from every run-relevant input.
    pub farm_key: String,
    /// `false` when the run stopped at [`FarmConfig::halt_after`].
    pub completed: bool,
    /// One outcome per corner, in canonical execution order.
    pub corners: Vec<CornerOutcome>,
    /// Signed corner count (Spice + Predicted + Derated).
    pub signed: usize,
    /// Quarantined corner count (still `Failed` after any derating).
    pub failed: usize,
    /// The configured signoff floor.
    pub min_signed_frac: f64,
    /// Whether the farm signs off: completed and
    /// `signed ≥ min_signed_frac × corners`.
    pub signoff: bool,
}

/// A farm run: the deterministic report plus the execution ledger.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FarmRun {
    /// The deterministic signoff report.
    pub report: FarmReport,
    /// Per-corner execution records, in execution order.
    pub ledger: Vec<CornerRecord>,
}

impl FarmRun {
    /// The structured error for a farm that completed below its signoff
    /// floor, or `None` when the farm signed off.
    #[must_use]
    pub fn signoff_error(&self) -> Option<CoreError> {
        if self.report.signoff {
            return None;
        }
        Some(CoreError::FarmCoverage {
            signed: self.report.signed,
            total: self.report.corners.len(),
            floor: self.report.min_signed_frac,
            failed: self
                .report
                .corners
                .iter()
                .filter(|o| !o.signed)
                .map(|o| o.name.clone())
                .collect(),
        })
    }
}

// ----------------------------------------------------------------------
// The farm supervisor
// ----------------------------------------------------------------------

/// The corner-farm supervisor. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct CornerFarm {
    flow: CryoFlow,
    cfg: FarmConfig,
}

impl CornerFarm {
    /// Wrap a flow in a farm.
    #[must_use]
    pub fn new(flow: CryoFlow, cfg: FarmConfig) -> Self {
        CornerFarm { flow, cfg }
    }

    /// The underlying flow.
    #[must_use]
    pub fn flow(&self) -> &CryoFlow {
        &self.flow
    }

    /// The farm configuration.
    #[must_use]
    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    /// The farm's checkpoint-namespace key: an FNV-64 digest over every
    /// corner's cache key (derived from the **pure** process cards, so
    /// fault plans cannot move the namespace), the SoC configuration, the
    /// seed, the coverage floor, and the missing-arc policy. Invariant
    /// under spec reordering (the corner list is canonical) and — like the
    /// pipeline key — deliberately independent of `jobs`, the audit
    /// policy, the surrogate policy, and the signoff floor: none of those
    /// change what a checkpointed corner would have computed.
    ///
    /// # Errors
    ///
    /// Cache-key construction failures.
    pub fn farm_key(&self) -> Result<String> {
        let fcfg = self.flow.config();
        let cells = topology::standard_cell_set();
        let tag = cache::cell_set_tag(&cells);
        let mut parts = Vec::new();
        for corner in self.cfg.spec.corners() {
            let mut char_cfg = self.flow.corner_char_cfg(&corner);
            char_cfg.jobs = 1;
            let (nfet, pfet) = self.flow.process_cards(corner.process);
            let key = cache::cache_key(&nfet, &pfet, &char_cfg, &tag)?;
            parts.push(format!("{}={key}", corner.name()));
        }
        Ok(fnv64(&format!(
            "{}|{:?}|{}|{}|{:?}",
            parts.join("|"),
            fcfg.soc,
            fcfg.seed,
            fcfg.coverage_floor,
            self.cfg.missing_arc_policy
        )))
    }

    /// Drop every farm-level checkpoint (the manifest and all corner
    /// outcomes) for this configuration — the way to retry quarantined
    /// corners after fixing their cause.
    ///
    /// # Errors
    ///
    /// Checkpoint-store I/O failures.
    pub fn clear_checkpoints(&self) -> Result<()> {
        let store = self.open_store()?;
        store.clear();
        Ok(())
    }

    fn open_store(&self) -> Result<CheckpointStore> {
        let key = self.farm_key()?;
        Ok(CheckpointStore::open(
            &self.flow.config().cache_dir,
            "farm",
            &key,
        )?)
    }

    /// Run the farm: one isolated characterize→audit→STA pipeline per
    /// corner, resuming from checkpoints, with terminal failures
    /// quarantined into `Failed` outcomes. Always returns a [`FarmRun`]
    /// when the farm machinery itself is healthy — per-corner errors
    /// degrade the report instead of propagating.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] on malformed environment knobs or an empty
    /// corner set; checkpoint-store I/O failures.
    pub fn run(&self) -> Result<FarmRun> {
        let _env = validate_env()?;
        let fcfg = self.flow.config().clone();
        // Arm the plan on the farm thread; each corner worker re-installs
        // a clone so injection follows the work.
        let _fault_guard = fcfg.fault_plan.clone().map(fault::install_guard);
        let corners = self.cfg.spec.corners();
        if corners.is_empty() {
            return Err(CoreError::Config {
                var: "corners".into(),
                value: self.cfg.spec.spec_string(),
                reason: "corner spec produces no corners".into(),
            });
        }
        let farm_key = self.farm_key()?;
        let store = self.open_store()?;
        if store.load_blob("manifest").is_none() {
            let manifest = FarmManifest {
                farm_key: farm_key.clone(),
                spec: self.cfg.spec.spec_string(),
                corners: corners.iter().map(Corner::name).collect(),
            };
            store.store_blob(
                "manifest",
                &serde_json::to_string(&manifest).expect("manifest serializes"),
            )?;
        }
        // The anchor of each (process, VDD) group is its first — warmest —
        // corner in canonical order.
        let mut anchors: Vec<((Process, i64), Corner)> = Vec::new();
        for c in &corners {
            let g = (c.process, mv(c.vdd));
            if !anchors.iter().any(|(k, _)| *k == g) {
                anchors.push((g, *c));
            }
        }
        let started = Instant::now();
        let mut outcomes: Vec<CornerOutcome> = Vec::new();
        let mut ledger: Vec<CornerRecord> = Vec::new();
        let mut completed = true;
        for (idx, corner) in corners.iter().enumerate() {
            if let Some(halt) = self.cfg.halt_after {
                if idx >= halt {
                    completed = false;
                    break;
                }
            }
            let g = (corner.process, mv(corner.vdd));
            let anchor = anchors
                .iter()
                .find(|(k, _)| *k == g)
                .map(|(_, c)| *c)
                .expect("every corner's group has an anchor");
            let anchor = if anchor == *corner { None } else { Some(anchor) };
            let (outcome, record) = self.run_corner(*corner, anchor, started, &store)?;
            outcomes.push(outcome);
            ledger.push(record);
        }
        if let Some(margin) = self.cfg.derate_margin {
            apply_derate(&mut outcomes, margin);
        }
        let signed = outcomes.iter().filter(|o| o.signed).count();
        let failed = outcomes
            .iter()
            .filter(|o| matches!(o.provenance, CornerProvenance::Failed { .. }))
            .count();
        let signoff =
            completed && (signed as f64) >= self.cfg.min_signed_frac * corners.len() as f64;
        Ok(FarmRun {
            report: FarmReport {
                farm_key,
                completed,
                corners: outcomes,
                signed,
                failed,
                min_signed_frac: self.cfg.min_signed_frac,
                signoff,
            },
            ledger,
        })
    }

    /// Run one corner under the isolation contract: resume from its blob
    /// when present, otherwise execute the corner pipeline on a watchdog-
    /// supervised worker with retry-with-backoff, fold the worker's
    /// simulator/arc counters into the calling thread, and checkpoint the
    /// outcome — including terminal failures, which quarantine as
    /// `Failed{cause}` so resumes are deterministic and the farm never
    /// aborts on a sick corner.
    fn run_corner(
        &self,
        corner: Corner,
        anchor: Option<Corner>,
        started: Instant,
        store: &CheckpointStore,
    ) -> Result<(CornerOutcome, CornerRecord)> {
        let name = corner.name();
        let blob_name = format!("corner_{name}");
        if let Some(blob) = store.load_blob(&blob_name) {
            if let Ok(outcome) = serde_json::from_str::<CornerOutcome>(&blob) {
                return Ok((
                    outcome,
                    CornerRecord {
                        corner: name,
                        from_checkpoint: true,
                        attempts: 0,
                        wall_s: 0.0,
                        dc_solves: 0,
                        tran_solves: 0,
                        arc_evals: 0,
                    },
                ));
            }
            // Blob from an older schema: recompute and overwrite.
        }

        let body: Arc<dyn Fn() -> Result<CornerOutcome> + Send + Sync> = {
            let flow = self.flow.clone();
            let policy = self.cfg.missing_arc_policy;
            Arc::new(move || corner_work(&flow, corner, anchor, policy))
        };
        let corner_start = Instant::now();
        let (mut dc, mut tran, mut evals) = (0u64, 0u64, 0u64);
        let mut attempt = 0u32;
        let quarantine = |outcome: CornerOutcome, attempts: u32, wall_s: f64, c: (u64, u64, u64)| {
            let payload = serde_json::to_string(&outcome).expect("corner outcomes serialize");
            store.store_blob(&blob_name, &payload)?;
            Ok((
                outcome,
                CornerRecord {
                    corner: corner.name(),
                    from_checkpoint: false,
                    attempts,
                    wall_s,
                    dc_solves: c.0,
                    tran_solves: c.1,
                    arc_evals: c.2,
                },
            ))
        };
        loop {
            attempt += 1;
            let remaining = self
                .cfg
                .overall_budget
                .checked_sub(started.elapsed())
                .unwrap_or(Duration::ZERO);
            let wait = self.cfg.corner_budget.min(remaining);

            let (tx, rx) = mpsc::channel();
            let plan = fault::current_plan();
            let work = Arc::clone(&body);
            thread::Builder::new()
                .name(format!("corner-{name}"))
                .spawn(move || {
                    let _guard = plan.map(fault::install_guard);
                    let out = work();
                    let _ = tx.send((out, fault::take_sim_counts(), counters::take_eval_count()));
                })
                .expect("spawn corner worker");

            match rx.recv_timeout(wait) {
                Ok((out, sims, arc_evals)) => {
                    fault::add_sim_counts(sims);
                    counters::add_eval_count(arc_evals);
                    dc += sims.dc;
                    tran += sims.tran;
                    evals += arc_evals;
                    match out {
                        Ok(outcome) => {
                            return quarantine(
                                outcome,
                                attempt,
                                corner_start.elapsed().as_secs_f64(),
                                (dc, tran, evals),
                            );
                        }
                        Err(e) => {
                            if attempt >= self.cfg.max_attempts || !retryable(&e) {
                                eprintln!("warning: corner {name} quarantined: {e}");
                                return quarantine(
                                    CornerOutcome::failed(corner, e.to_string()),
                                    attempt,
                                    corner_start.elapsed().as_secs_f64(),
                                    (dc, tran, evals),
                                );
                            }
                            thread::sleep(self.cfg.backoff * (1u32 << (attempt - 1).min(16)));
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The worker is leaked (it holds no locks); the corner
                    // quarantines as Failed, like any terminal error.
                    let e = CoreError::StageTimeout {
                        stage: format!("corner:{name}"),
                        budget_s: wait.as_secs_f64(),
                    };
                    eprintln!("warning: corner {name} quarantined: {e}");
                    return quarantine(
                        CornerOutcome::failed(corner, e.to_string()),
                        attempt,
                        corner_start.elapsed().as_secs_f64(),
                        (dc, tran, evals),
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("corner {name} worker panicked");
                }
            }
        }
    }
}

/// Millivolt key for (process, VDD) grouping.
fn mv(vdd: f64) -> i64 {
    (vdd * 1000.0).round() as i64
}

/// The per-corner pipeline body, run on the isolated worker thread:
/// card audit → characterize (SPICE, or surrogate-predicted from the
/// group anchor) → cross-corner audit vs. the anchor → STA.
fn corner_work(
    flow: &CryoFlow,
    corner: Corner,
    anchor: Option<Corner>,
    missing_arc_policy: MissingArcPolicy,
) -> Result<CornerOutcome> {
    let policy = flow.config().audit_policy;
    let name = corner.name();

    // Device audit on this corner's effective cards: a poisoned corner
    // fails here, before a single SPICE run is spent on it (mirrors the
    // supervised pipeline's calibrate-stage audit).
    let (nfet, pfet) = flow.corner_cards(&corner);
    if policy.is_on() {
        let findings = audit::audit_model_cards(&name, &nfet, &pfet);
        if !findings.is_clean() {
            for f in &findings.findings {
                eprintln!("warning: audit {name}: {f}");
            }
            if policy == AuditPolicy::Gate {
                return Err(CoreError::AuditFailed {
                    stage: name,
                    report: findings,
                });
            }
        }
    }

    // The group anchor's SPICE library (a cache hit after the anchor
    // corner itself ran — canonical order puts it first). A quarantined
    // anchor (its own cards fail the audit) yields no anchor: siblings
    // fall back to SPICE with no cross-corner band, rather than burning
    // SPICE time characterizing poisoned cards.
    let anchor_lib = anchor.and_then(|a| {
        let (an, ap) = flow.corner_cards(&a);
        if policy.is_on() && !audit::audit_model_cards(&a.name(), &an, &ap).is_clean() {
            None
        } else {
            flow.corner_library_with_report(&a).ok().map(|(lib, _)| lib)
        }
    });

    let surrogate = flow.config().surrogate_policy;
    let (mut lib, report, provenance) = match (anchor_lib.as_ref(), surrogate) {
        (Some(warm), SurrogatePolicy::PredictWithFallback { max_rel_err }) => {
            let (lib, report) = flow.corner_surrogate_library_with_report(&corner, warm, max_rel_err)?;
            let model_hash = report
                .surrogate
                .as_ref()
                .map(|s| s.model_hash.clone())
                .unwrap_or_default();
            (lib, report, CornerProvenance::Predicted { model_hash })
        }
        _ => {
            let (lib, report) = flow.corner_library_with_report(&corner)?;
            (lib, report, CornerProvenance::Spice)
        }
    };

    // Cross-corner band against the nearest anchor, for SPICE corners
    // (the surrogate path already audits against its anchor internally).
    // Under Gate, offenders are quarantined and repaired cell-by-cell;
    // findings that survive repair are terminal.
    let mut repaired = report.audit.repaired.clone();
    if provenance == CornerProvenance::Spice && policy.is_on() {
        if let Some(warm) = anchor_lib.as_ref() {
            let audit_cfg = audit::lib_audit_config(&flow.corner_char_cfg(&corner));
            let cross = audit_cross_corner_nearest(&name, &lib, &[warm], &audit_cfg);
            if !cross.is_clean() {
                for f in &cross.findings {
                    eprintln!("warning: audit {name}: {f}");
                }
                if policy == AuditPolicy::Gate {
                    let offenders = cross.offending_cells();
                    let (lib2, _rep2) = flow.corner_repair_library(&corner, &lib, &offenders)?;
                    let mut recheck = audit_library(&name, &lib2, &audit_cfg);
                    recheck.merge(audit_cross_corner_nearest(&name, &lib2, &[warm], &audit_cfg));
                    if !recheck.is_clean() {
                        return Err(CoreError::AuditFailed {
                            stage: name,
                            report: recheck,
                        });
                    }
                    repaired.extend(offenders);
                    lib = lib2;
                }
            }
        }
    }

    // STA, derated against the anchor's mean delay (the anchor itself
    // scales 1.0 — it is its own reference, like the legacy 300 K corner).
    let design = flow.soc();
    let anchor_mean = anchor_lib
        .as_ref()
        .map_or_else(|| lib.stats().mean_delay, |l| l.stats().mean_delay);
    let timing = flow.timing_with_policy(&design, &lib, anchor_mean, missing_arc_policy)?;

    let fallbacks = report
        .surrogate
        .as_ref()
        .map(|s| s.fallbacks.clone())
        .unwrap_or_default();
    Ok(CornerOutcome {
        name,
        temp: corner.temp,
        vdd: corner.vdd,
        process: corner.process,
        provenance,
        signed: true,
        fmax_hz: Some(timing.fmax()),
        mean_delay: Some(lib.stats().mean_delay),
        cells: lib.cells().len(),
        degraded_arcs: timing.degraded_arcs.len(),
        repaired,
        fallbacks,
    })
}

/// Degrade-don't-abort, part two: give each quarantined corner its
/// nearest signed same-(process, VDD) neighbor's numbers with a pessimism
/// margin. Donors are the signed outcomes of the *pre-derate* report
/// (never another derated corner), nearest by log-temperature distance
/// with ties broken toward the warmer donor; a failed corner with no
/// same-group donor stays `Failed`. Pure and deterministic, so a resumed
/// farm (whose blobs keep the `Failed` outcomes) re-derives the same
/// derated report.
pub fn apply_derate(outcomes: &mut [CornerOutcome], margin: f64) {
    let donors: Vec<CornerOutcome> = outcomes.iter().filter(|o| o.signed).cloned().collect();
    for o in outcomes.iter_mut() {
        if !matches!(o.provenance, CornerProvenance::Failed { .. }) {
            continue;
        }
        let best = donors
            .iter()
            .filter(|d| d.process == o.process && mv(d.vdd) == mv(o.vdd))
            .min_by(|a, b| {
                let da = (a.temp / o.temp).ln().abs();
                let db = (b.temp / o.temp).ln().abs();
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        b.temp
                            .partial_cmp(&a.temp)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            });
        if let Some(d) = best {
            o.provenance = CornerProvenance::Derated {
                from: d.name.clone(),
                margin,
            };
            o.fmax_hz = d.fmax_hz.map(|f| f * (1.0 - margin));
            o.mean_delay = d.mean_delay.map(|m| m * (1.0 + margin));
            o.cells = d.cells;
            o.degraded_arcs = d.degraded_arcs;
            o.signed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_validates_and_orders_canonically() {
        let spec = CornerSpec::parse("T=10,300,77;P=ss,tt;V=0.70").unwrap();
        assert_eq!(spec.temps, vec![300.0, 77.0, 10.0], "warmest first");
        assert_eq!(spec.procs, vec![Process::Tt, Process::Ss], "tt leads");
        let corners = spec.corners();
        assert_eq!(corners.len(), 6);
        assert_eq!(corners[0].name(), "tt_0p70v_300k", "group anchor first");
        assert_eq!(corners[3].name(), "ss_0p70v_300k");
        // Defaults: V=0.70, P=tt.
        let d = CornerSpec::parse("T=300,4.2").unwrap();
        assert_eq!(d.vdds, vec![0.70]);
        assert_eq!(d.procs, vec![Process::Tt]);
        assert_eq!(d.corners()[1].name(), "tt_0p70v_4p2k");
        assert_eq!(d.corners()[1].lib_name(), "cryo5_tt_0p70v_4p2k");
    }

    #[test]
    fn spec_rejects_malformed_input_with_reasons() {
        for (input, needle) in [
            ("", "empty corner spec"),
            ("V=0.7", "missing T axis"),
            ("T=", "empty value"),
            ("T=300;T=77", "duplicate T axis"),
            ("T=300,300", "duplicate temperature"),
            ("T=300;V=0.7,0.7", "duplicate vdd"),
            ("T=300;P=tt,tt", "duplicate process"),
            ("T=1.0", "outside the calibrated range"),
            ("T=500", "outside the calibrated range"),
            ("T=10.05", "not on the 0.1 K grid"),
            ("T=abc", "bad temperature"),
            ("T=300;V=0.7005", "not on the 1 mV grid"),
            ("T=300;V=2.0", "outside the calibrated range"),
            ("T=300;P=sf", "unknown process corner"),
            ("T=300;X=1", "unknown axis"),
            ("T=300;77", "is not AXIS=VALUE"),
        ] {
            let err = CornerSpec::parse(input).unwrap_err();
            assert!(
                err.contains(needle),
                "{input:?}: expected {needle:?} in {err:?}"
            );
        }
    }

    #[test]
    fn spec_round_trips_and_digest_ignores_input_order() {
        let a = CornerSpec::parse("T=300,77,4.2;V=0.65,0.70;P=ff,tt").unwrap();
        let b = CornerSpec::parse("P=tt,ff;V=0.70,0.65;T=4.2,300,77").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_digest(), b.canonical_digest());
        let reparsed = CornerSpec::parse(&a.spec_string()).unwrap();
        assert_eq!(reparsed, a, "spec_string round-trips: {}", a.spec_string());
        assert_eq!(a.corners(), reparsed.corners());
    }

    #[test]
    fn corner_provenance_serde_round_trips() {
        for p in [
            CornerProvenance::Spice,
            CornerProvenance::Predicted {
                model_hash: "deadbeef".into(),
            },
            CornerProvenance::Derated {
                from: "tt_0p70v_300k".into(),
                margin: 0.15,
            },
            CornerProvenance::Failed {
                cause: "audit firewall: stage x has 1 unrepaired finding(s)".into(),
            },
        ] {
            let s = serde_json::to_string(&p).unwrap();
            let back: CornerProvenance = serde_json::from_str(&s).unwrap();
            assert_eq!(back, p, "{s}");
        }
    }

    fn signed_outcome(name: &str, temp: f64, fmax: f64) -> CornerOutcome {
        CornerOutcome {
            name: name.into(),
            temp,
            vdd: 0.70,
            process: Process::Tt,
            provenance: CornerProvenance::Spice,
            signed: true,
            fmax_hz: Some(fmax),
            mean_delay: Some(1.0e-11),
            cells: 40,
            degraded_arcs: 0,
            repaired: Vec::new(),
            fallbacks: Vec::new(),
        }
    }

    #[test]
    fn derate_borrows_nearest_signed_neighbor_with_margin() {
        let mut outcomes = vec![
            signed_outcome("tt_0p70v_300k", 300.0, 2.0e9),
            CornerOutcome::failed(
                Corner {
                    temp: 77.0,
                    vdd: 0.70,
                    process: Process::Tt,
                },
                "poisoned".into(),
            ),
            signed_outcome("tt_0p70v_10k", 10.0, 1.9e9),
        ];
        apply_derate(&mut outcomes, 0.20);
        let d = &outcomes[1];
        assert!(d.signed);
        assert_eq!(
            d.provenance,
            CornerProvenance::Derated {
                // ln(300/77) ≈ 1.36 beats ln(77/10) ≈ 2.04.
                from: "tt_0p70v_300k".into(),
                margin: 0.20,
            }
        );
        assert!((d.fmax_hz.unwrap() - 2.0e9 * 0.8).abs() < 1.0);
        // A failed corner in a group with no signed donor stays failed.
        let mut lonely = vec![CornerOutcome::failed(
            Corner {
                temp: 77.0,
                vdd: 0.65,
                process: Process::Ss,
            },
            "poisoned".into(),
        )];
        apply_derate(&mut lonely, 0.20);
        assert!(!lonely[0].signed);
        assert!(matches!(
            lonely[0].provenance,
            CornerProvenance::Failed { .. }
        ));
    }

    #[test]
    fn farm_key_is_spec_order_invariant_and_fault_independent() {
        let dir = std::env::temp_dir().join("cryo_farm_key_test");
        let mut cfg = crate::FlowConfig::fast(&dir);
        cfg.fault_plan = None;
        let spec_a = CornerSpec::parse("T=300,77;P=tt,ss").unwrap();
        let spec_b = CornerSpec::parse("P=ss,tt;T=77,300").unwrap();
        let farm_a = CornerFarm::new(
            CryoFlow::new(cfg.clone()),
            FarmConfig::new(spec_a.clone()),
        );
        let farm_b = CornerFarm::new(CryoFlow::new(cfg.clone()), FarmConfig::new(spec_b));
        let key = farm_a.farm_key().unwrap();
        assert_eq!(key, farm_b.farm_key().unwrap(), "order-invariant");
        let mut poisoned = cfg.clone();
        poisoned.fault_plan =
            cryo_spice::FaultPlan::parse_spec("seed=9,corrupt=vth:1.0,scope=corner:x").unwrap();
        let farm_p = CornerFarm::new(CryoFlow::new(poisoned), FarmConfig::new(spec_a.clone()));
        assert_eq!(
            key,
            farm_p.farm_key().unwrap(),
            "plans must not move the namespace"
        );
        let mut jobs8 = cfg.clone();
        jobs8.jobs = 8;
        let farm_j = CornerFarm::new(CryoFlow::new(jobs8), FarmConfig::new(spec_a.clone()));
        assert_eq!(key, farm_j.farm_key().unwrap(), "jobs-invariant");
        let other = CornerFarm::new(
            CryoFlow::new(cfg),
            FarmConfig::new(CornerSpec::parse("T=300,77;P=tt,ff").unwrap()),
        );
        assert_ne!(key, other.farm_key().unwrap(), "corner set is in the key");
    }
}
