//! Architectural state and functional execution.

use crate::asm::Program;
use crate::isa::{decode, AluOp, BranchCond, FpCmp, FpOp, Inst, MemWidth};
use crate::{Result, RiscvError};

/// Default memory image size (16 MiB — enough for kernels + data tables).
pub const MEM_SIZE: usize = 16 * 1024 * 1024;

/// Functional RV64IMFD hart with a flat little-endian memory.
pub struct Cpu {
    x: [u64; 32],
    f: [u64; 32],
    pc: u64,
    mem: Vec<u8>,
    /// Retired instruction count.
    pub instret: u64,
    /// Set once `ecall` retires.
    pub halted: bool,
    /// Trace of executed instructions with their pc (filled when enabled).
    trace: Option<Vec<(u64, Inst)>>,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &self.pc)
            .field("instret", &self.instret)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Fresh hart with zeroed state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            x: [0; 32],
            f: [0; 32],
            pc: 0,
            mem: vec![0; MEM_SIZE],
            instret: 0,
            halted: false,
            trace: None,
        }
    }

    /// Enable instruction tracing (used by the pipeline timing model).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the collected trace.
    pub fn take_trace(&mut self) -> Vec<(u64, Inst)> {
        self.trace.take().unwrap_or_default()
    }

    /// Integer register read (x0 reads 0).
    #[must_use]
    pub fn x(&self, r: usize) -> u64 {
        if r == 0 {
            0
        } else {
            self.x[r]
        }
    }

    /// Integer register write (x0 ignored).
    pub fn set_x(&mut self, r: usize, v: u64) {
        if r != 0 {
            self.x[r] = v;
        }
    }

    /// FP register read as raw bits.
    #[must_use]
    pub fn fbits(&self, r: usize) -> u64 {
        self.f[r]
    }

    /// FP register read as f64.
    #[must_use]
    pub fn fd(&self, r: usize) -> f64 {
        f64::from_bits(self.f[r])
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Load a program image and point the PC at its entry.
    pub fn load_program(&mut self, program: &Program) {
        for (i, word) in program.text.iter().enumerate() {
            let addr = program.text_base as usize + 4 * i;
            self.mem[addr..addr + 4].copy_from_slice(&word.to_le_bytes());
        }
        let d = program.data_base as usize;
        self.mem[d..d + program.data.len()].copy_from_slice(&program.data);
        self.pc = program.text_base;
        self.halted = false;
        self.instret = 0;
        // Stack at the top of memory.
        self.x[2] = (MEM_SIZE - 64) as u64;
    }

    /// Raw memory read (for result inspection).
    ///
    /// # Errors
    ///
    /// [`RiscvError::MemoryFault`] when out of range.
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<&[u8]> {
        let a = addr as usize;
        self.mem.get(a..a + len).ok_or(RiscvError::MemoryFault {
            addr,
            what: "oob read",
        })
    }

    /// Raw memory write (for preparing inputs).
    ///
    /// # Errors
    ///
    /// [`RiscvError::MemoryFault`] when out of range.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) -> Result<()> {
        let a = addr as usize;
        let dst = self
            .mem
            .get_mut(a..a + bytes.len())
            .ok_or(RiscvError::MemoryFault {
                addr,
                what: "oob write",
            })?;
        dst.copy_from_slice(bytes);
        Ok(())
    }

    fn load_u(&self, addr: u64, bytes: u64) -> Result<u64> {
        let a = addr as usize;
        let n = bytes as usize;
        let slice = self
            .mem
            .get(a..a + n)
            .ok_or(RiscvError::MemoryFault { addr, what: "load" })?;
        let mut v = 0u64;
        for (i, &b) in slice.iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        Ok(v)
    }

    fn store_u(&mut self, addr: u64, bytes: u64, value: u64) -> Result<()> {
        let a = addr as usize;
        let n = bytes as usize;
        let slice = self.mem.get_mut(a..a + n).ok_or(RiscvError::MemoryFault {
            addr,
            what: "store",
        })?;
        for (i, b) in slice.iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Fetch, decode, and execute one instruction. Returns the decoded
    /// instruction and, for memory operations, the effective address.
    ///
    /// # Errors
    ///
    /// Illegal-instruction and memory faults.
    pub fn step(&mut self) -> Result<(Inst, Option<u64>)> {
        let word = self.load_u(self.pc, 4)? as u32;
        let inst = decode(word).ok_or(RiscvError::IllegalInstruction { pc: self.pc, word })?;
        if let Some(t) = &mut self.trace {
            t.push((self.pc, inst));
        }
        let mut next_pc = self.pc.wrapping_add(4);
        let mut mem_addr = None;
        match inst {
            Inst::Lui { rd, imm } => self.set_x(rd as usize, imm as u64),
            Inst::Auipc { rd, imm } => self.set_x(rd as usize, self.pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, offset } => {
                self.set_x(rd as usize, next_pc);
                next_pc = self.pc.wrapping_add(offset as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.x(rs1 as usize).wrapping_add(offset as u64) & !1;
                self.set_x(rd as usize, next_pc);
                next_pc = target;
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.x(rs1 as usize);
                let b = self.x(rs2 as usize);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i64) < (b as i64),
                    BranchCond::Ge => (a as i64) >= (b as i64),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u64);
                }
            }
            Inst::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.x(rs1 as usize).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let raw = self.load_u(addr, width.bytes())?;
                let v = match width {
                    MemWidth::B => i64::from(raw as u8 as i8) as u64,
                    MemWidth::H => i64::from(raw as u16 as i16) as u64,
                    MemWidth::W => i64::from(raw as u32 as i32) as u64,
                    MemWidth::D | MemWidth::Bu | MemWidth::Hu | MemWidth::Wu => raw,
                };
                self.set_x(rd as usize, v);
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.x(rs1 as usize).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.store_u(addr, width.bytes(), self.x(rs2 as usize))?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let a = self.x(rs1 as usize);
                let v = alu64(op, a, imm as u64);
                self.set_x(rd as usize, v);
            }
            Inst::OpImmW { op, rd, rs1, imm } => {
                let a = self.x(rs1 as usize);
                let v = alu32(op, a, imm as u64);
                self.set_x(rd as usize, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = alu64(op, self.x(rs1 as usize), self.x(rs2 as usize));
                self.set_x(rd as usize, v);
            }
            Inst::OpW { op, rd, rs1, rs2 } => {
                let v = alu32(op, self.x(rs1 as usize), self.x(rs2 as usize));
                self.set_x(rd as usize, v);
            }
            Inst::Cpop { rd, rs1 } => {
                self.set_x(rd as usize, u64::from(self.x(rs1 as usize).count_ones()));
            }
            Inst::Ecall => {
                self.halted = true;
            }
            Inst::Fence => {}
            Inst::FLoad {
                width: _,
                frd,
                rs1,
                offset,
            } => {
                let addr = self.x(rs1 as usize).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.f[frd as usize] = self.load_u(addr, 8)?;
            }
            Inst::FStore {
                width: _,
                frs2,
                rs1,
                offset,
            } => {
                let addr = self.x(rs1 as usize).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.store_u(addr, 8, self.f[frs2 as usize])?;
            }
            Inst::FpArith {
                op,
                width: _,
                frd,
                frs1,
                frs2,
            } => {
                let a = f64::from_bits(self.f[frs1 as usize]);
                let b = f64::from_bits(self.f[frs2 as usize]);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                self.f[frd as usize] = v.to_bits();
            }
            Inst::FpCompare {
                cmp,
                width: _,
                rd,
                frs1,
                frs2,
            } => {
                let a = f64::from_bits(self.f[frs1 as usize]);
                let b = f64::from_bits(self.f[frs2 as usize]);
                let v = match cmp {
                    FpCmp::Eq => a == b,
                    FpCmp::Lt => a < b,
                    FpCmp::Le => a <= b,
                };
                self.set_x(rd as usize, u64::from(v));
            }
            Inst::FSgnj {
                variant,
                width: _,
                frd,
                frs1,
                frs2,
            } => {
                let a = self.f[frs1 as usize];
                let b = self.f[frs2 as usize];
                let sign = 1u64 << 63;
                let v = match variant {
                    0 => (a & !sign) | (b & sign),
                    1 => (a & !sign) | (!b & sign),
                    _ => a ^ (b & sign),
                };
                self.f[frd as usize] = v;
            }
            Inst::FcvtWD { rd, frs1 } => {
                let a = f64::from_bits(self.f[frs1 as usize]);
                self.set_x(rd as usize, i64::from(a as i32) as u64);
            }
            Inst::FcvtLD { rd, frs1 } => {
                let a = f64::from_bits(self.f[frs1 as usize]);
                self.set_x(rd as usize, (a as i64) as u64);
            }
            Inst::FcvtDW { frd, rs1 } => {
                let v = self.x(rs1 as usize) as u32 as i32;
                self.f[frd as usize] = f64::from(v).to_bits();
            }
            Inst::FcvtDL { frd, rs1 } => {
                let v = self.x(rs1 as usize) as i64;
                self.f[frd as usize] = (v as f64).to_bits();
            }
            Inst::FmvXD { rd, frs1 } => self.set_x(rd as usize, self.f[frs1 as usize]),
            Inst::FmvDX { frd, rs1 } => self.f[frd as usize] = self.x(rs1 as usize),
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok((inst, mem_addr))
    }

    /// Run until `ecall` or the instruction budget is exhausted.
    ///
    /// # Errors
    ///
    /// [`RiscvError::Timeout`] plus any execution fault.
    pub fn run(&mut self, max_insts: u64) -> Result<u64> {
        let start = self.instret;
        while !self.halted {
            if self.instret - start >= max_insts {
                return Err(RiscvError::Timeout {
                    executed: self.instret - start,
                });
            }
            self.step()?;
        }
        Ok(self.instret - start)
    }
}

fn alu64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

fn alu32(op: AluOp, a: u64, b: u64) -> u64 {
    let a32 = a as u32;
    let b32 = b as u32;
    let v = match op {
        AluOp::Add => a32.wrapping_add(b32),
        AluOp::Sub => a32.wrapping_sub(b32),
        AluOp::Sll => a32 << (b32 & 31),
        AluOp::Srl => a32 >> (b32 & 31),
        AluOp::Sra => ((a32 as i32) >> (b32 & 31)) as u32,
        AluOp::Mul => a32.wrapping_mul(b32),
        AluOp::Div => {
            if b32 == 0 {
                u32::MAX
            } else {
                ((a32 as i32).wrapping_div(b32 as i32)) as u32
            }
        }
        AluOp::Rem => {
            if b32 == 0 {
                a32
            } else {
                ((a32 as i32).wrapping_rem(b32 as i32)) as u32
            }
        }
        _ => unreachable!("not a W op"),
    };
    i64::from(v as i32) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Cpu {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new();
        cpu.load_program(&p);
        cpu.run(100_000).unwrap();
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run("li a0, 20\nli a1, 22\nadd a2, a0, a1\nsub a3, a0, a1\necall");
        assert_eq!(cpu.x(12), 42);
        assert_eq!(cpu.x(13) as i64, -2);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 = 55.
        let cpu = run("li a0, 0
             li a1, 10
            loop:
             add a0, a0, a1
             addi a1, a1, -1
             bnez a1, loop
             ecall");
        assert_eq!(cpu.x(10), 55);
    }

    #[test]
    fn memory_round_trip() {
        let cpu = run(".text
             la a0, buf
             li a1, 0x1234
             sd a1, 0(a0)
             ld a2, 0(a0)
             lw a3, 0(a0)
             lb a4, 1(a0)
             ecall
             .data
             buf: .zero 16");
        assert_eq!(cpu.x(12), 0x1234);
        assert_eq!(cpu.x(13), 0x1234);
        assert_eq!(cpu.x(14), 0x12);
    }

    #[test]
    fn mul_div_rem() {
        let cpu = run("li a0, 7\nli a1, -3\nmul a2, a0, a1\ndiv a3, a2, a0\nrem a4, a0, a1\necall");
        assert_eq!(cpu.x(12) as i64, -21);
        assert_eq!(cpu.x(13) as i64, -3);
        assert_eq!(cpu.x(14) as i64, 1);
    }

    #[test]
    fn shifts_sign_correctly() {
        let cpu = run("li a0, -16\nsrai a1, a0, 2\nsrli a2, a0, 60\nslli a3, a0, 1\necall");
        assert_eq!(cpu.x(11) as i64, -4);
        assert_eq!(cpu.x(12), 15);
        assert_eq!(cpu.x(13) as i64, -32);
    }

    #[test]
    fn floating_point_distance_kernel() {
        // d = (x1-x2)^2 + (y1-y2)^2 with (3,4) vs (0,0) -> 25.0
        let cpu = run(".text
             la a0, pts
             fld fa0, 0(a0)
             fld fa1, 8(a0)
             fld fa2, 16(a0)
             fld fa3, 24(a0)
             fsub.d fa4, fa0, fa2
             fsub.d fa5, fa1, fa3
             fmul.d fa4, fa4, fa4
             fmul.d fa5, fa5, fa5
             fadd.d fa6, fa4, fa5
             fsd fa6, 32(a0)
             ld a1, 32(a0)
             ecall
             .data
             pts: .dword 0x4008000000000000, 0x4010000000000000, 0, 0, 0");
        assert_eq!(f64::from_bits(cpu.x(11)), 25.0);
    }

    #[test]
    fn fp_compare_sets_flags() {
        let cpu = run(
            ".text
             la a0, vals
             fld fa0, 0(a0)
             fld fa1, 8(a0)
             flt.d t0, fa0, fa1
             flt.d t1, fa1, fa0
             fle.d t2, fa0, fa0
             ecall
             .data
             vals: .dword 0x3ff0000000000000, 0x4000000000000000", // 1.0, 2.0
        );
        assert_eq!(cpu.x(5), 1);
        assert_eq!(cpu.x(6), 0);
        assert_eq!(cpu.x(7), 1);
    }

    #[test]
    fn fcvt_round_trips() {
        let cpu = run("li a0, -37
             fcvt.d.l fa0, a0
             fcvt.l.d a1, fa0
             ecall");
        assert_eq!(cpu.x(11) as i64, -37);
    }

    #[test]
    fn cpop_counts_bits() {
        let cpu = run("li a0, 0xFF\nslli a0, a0, 8\nori a0, a0, 0xF\ncpop a1, a0\necall");
        assert_eq!(cpu.x(11), 12);
    }

    #[test]
    fn x0_is_hardwired() {
        let cpu = run("li t0, 5\nadd zero, t0, t0\nmv a0, zero\necall");
        assert_eq!(cpu.x(10), 0);
    }

    #[test]
    fn timeout_detected() {
        let p = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_program(&p);
        assert!(matches!(cpu.run(100), Err(RiscvError::Timeout { .. })));
    }

    #[test]
    fn w_ops_sign_extend_results() {
        let cpu = run("li a0, 0x7fffffff
             addiw a1, a0, 1      # overflows 32-bit -> negative
             li a2, 1
             slliw a3, a2, 31     # 1 << 31 -> i32 min, sign-extended
             srliw a4, a3, 31     # logical shift back -> 1
             ecall");
        assert_eq!(cpu.x(11) as i64, -2147483648);
        assert_eq!(cpu.x(13) as i64, -2147483648);
        assert_eq!(cpu.x(14), 1);
    }

    #[test]
    fn unsigned_loads_zero_extend() {
        let cpu = run(".text
             la a0, buf
             lbu a1, 0(a0)
             lhu a2, 0(a0)
             lwu a3, 0(a0)
             lb a4, 0(a0)
             ecall
             .data
             buf: .dword 0xfffffffffffffffe");
        assert_eq!(cpu.x(11), 0xfe);
        assert_eq!(cpu.x(12), 0xfffe);
        assert_eq!(cpu.x(13), 0xffff_fffe);
        assert_eq!(cpu.x(14) as i64, -2);
    }

    #[test]
    fn division_by_zero_follows_riscv_semantics() {
        // RISC-V: div by zero returns all-ones (quotient) and the dividend
        // (remainder); no trap.
        let cpu = run("li a0, 42
             li a1, 0
             div a2, a0, a1
             divu a3, a0, a1
             rem a4, a0, a1
             remu a5, a0, a1
             ecall");
        assert_eq!(cpu.x(12), u64::MAX);
        assert_eq!(cpu.x(13), u64::MAX);
        assert_eq!(cpu.x(14), 42);
        assert_eq!(cpu.x(15), 42);
    }

    #[test]
    fn mulh_variants() {
        let cpu = run("li a0, -1
             li a1, 2
             mulh a2, a0, a1      # (-1 * 2) >> 64 = -1
             mulhu a3, a0, a1     # (2^64-1)*2 >> 64 = 1
             ecall");
        assert_eq!(cpu.x(12), u64::MAX);
        assert_eq!(cpu.x(13), 1);
    }

    #[test]
    fn slt_and_sltu_disagree_on_negative() {
        let cpu = run("li a0, -1
             li a1, 1
             slt a2, a0, a1
             sltu a3, a0, a1
             ecall");
        assert_eq!(cpu.x(12), 1, "-1 < 1 signed");
        assert_eq!(cpu.x(13), 0, "u64::MAX > 1 unsigned");
    }

    #[test]
    fn auipc_is_pc_relative() {
        let cpu = run("auipc a0, 1
ecall"); // pc 0x1000 + 0x1000
        assert_eq!(cpu.x(10), 0x2000);
    }

    #[test]
    fn jal_and_ret() {
        let cpu = run("main:
                li a0, 1
                call fn1
                addi a0, a0, 100
                ecall
             fn1:
                addi a0, a0, 10
                ret");
        assert_eq!(cpu.x(10), 111);
    }
}
