//! Extension study: microarchitecture what-ifs on the classification
//! kernels — branch prediction (BTB) and hardware popcount (Zbb `cpop`),
//! the "dedicated hardware support" direction the paper's Sec. VII points
//! at without giving up the general-purpose core.
use cryo_riscv::asm::assemble;
use cryo_riscv::kernels::{hdc_source_rounds, knn_source_rounds, HDC_LEVELS};
use cryo_riscv::{PipelineConfig, PipelineModel};

fn steady(src1: &str, src4: &str, items: usize, cfg: &PipelineConfig) -> f64 {
    let run = |src: &str| -> u64 {
        let p = assemble(src).unwrap();
        let mut m = PipelineModel::new(cfg.clone());
        m.cpu.load_program(&p);
        m.run(500_000_000).unwrap().cycles
    };
    (run(src4) - run(src1)) as f64 / (3.0 * items as f64)
}

fn main() {
    let n = 100usize;
    let centers: Vec<[f64; 4]> = (0..n)
        .map(|i| {
            let t = i as f64 * 0.41;
            [t.sin(), t.cos(), t.sin() + 1.0, t.cos() - 1.0]
        })
        .collect();
    let meas: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64 * 0.13).sin(), 0.2)).collect();
    let mut seed = 5u64;
    let mut rnd = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let items: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
    let items_y: Vec<[u64; 2]> = (0..HDC_LEVELS).map(|_| [rnd(), rnd()]).collect();
    let centers_h: Vec<[u64; 4]> = (0..n).map(|_| [rnd(), rnd(), rnd(), rnd()]).collect();

    println!("=== Microarchitecture ablation: cycles/classification at {n} qubits ===\n");
    println!("{:<34} {:>10} {:>10}", "configuration", "kNN", "HDC");
    let configs: Vec<(&str, PipelineConfig)> = vec![
        ("baseline (static NT, no cpop)", PipelineConfig::default()),
        (
            "+ 64-entry BTB",
            PipelineConfig {
                btb_entries: 64,
                ..PipelineConfig::default()
            },
        ),
        (
            "+ Zbb cpop",
            PipelineConfig {
                enable_cpop: true,
                ..PipelineConfig::default()
            },
        ),
        (
            "+ BTB + cpop",
            PipelineConfig {
                btb_entries: 64,
                enable_cpop: true,
                ..PipelineConfig::default()
            },
        ),
    ];
    for (name, cfg) in &configs {
        let knn = steady(
            &knn_source_rounds(&centers, &meas, 1),
            &knn_source_rounds(&centers, &meas, 4),
            n,
            cfg,
        );
        let hdc = steady(
            &hdc_source_rounds(&items, &items_y, &centers_h, &meas, -1.0, 8.0, cfg.enable_cpop, 1),
            &hdc_source_rounds(&items, &items_y, &centers_h, &meas, -1.0, 8.0, cfg.enable_cpop, 4),
            n,
            cfg,
        );
        println!("{name:<34} {knn:>10.1} {hdc:>10.1}");
    }
    println!("\n(A BTB shaves the loop-branch penalty from both kernels; cpop removes");
    println!(" the popcount libcall that dominates HDC — together they more than halve");
    println!(" the HDC cost while leaving the ISA general-purpose.)");
}
