//! Evaluable boolean functions for cell outputs.
//!
//! Liberty stores functions as expression strings; the signoff engines here
//! additionally need to *evaluate* them (power analysis simulates the gate
//! network). [`LogicFunction`] therefore stores both: the input ordering and
//! a dense truth table, plus a tiny expression parser for round-tripping the
//! Liberty `function` attribute.

use serde::{Deserialize, Serialize};

/// A boolean function of up to 16 inputs, stored as a truth table.
///
/// Bit `i` of an input assignment corresponds to `inputs()[i]`; table entry
/// `k` holds the output for the assignment whose bits spell `k`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicFunction {
    inputs: Vec<String>,
    table: Vec<bool>,
}

impl LogicFunction {
    /// Build from an input list and a closure evaluated on every input
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if more than 16 inputs are supplied.
    #[must_use]
    pub fn from_eval<F>(inputs: &[&str], f: F) -> Self
    where
        F: Fn(u16) -> bool,
    {
        assert!(inputs.len() <= 16, "at most 16 inputs supported");
        let n = inputs.len();
        let table = (0..(1u32 << n)).map(|k| f(k as u16)).collect();
        Self {
            inputs: inputs.iter().map(|s| (*s).to_string()).collect(),
            table,
        }
    }

    /// Input names in bit order.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Number of inputs.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// Evaluate on the assignment `bits` (bit `i` = input `i`).
    #[must_use]
    pub fn eval(&self, bits: u16) -> bool {
        self.table[(bits as usize) & ((1 << self.inputs.len()) - 1)]
    }

    /// Evaluate with named inputs; missing names read as `false`.
    #[must_use]
    pub fn eval_named(&self, values: &[(&str, bool)]) -> bool {
        let mut bits = 0u16;
        for (i, name) in self.inputs.iter().enumerate() {
            if values.iter().any(|(n, v)| n == name && *v) {
                bits |= 1 << i;
            }
        }
        self.eval(bits)
    }

    /// Whether toggling `input` can ever change the output (support test).
    #[must_use]
    pub fn depends_on(&self, input: usize) -> bool {
        let n = self.inputs.len();
        if input >= n {
            return false;
        }
        (0..(1u16 << n))
            .any(|k| (k & (1 << input)) == 0 && self.eval(k) != self.eval(k | (1 << input)))
    }

    /// Unateness of the output in `input`: `Some(true)` = positive unate,
    /// `Some(false)` = negative unate, `None` = binate (non-unate).
    #[must_use]
    pub fn unateness(&self, input: usize) -> Option<bool> {
        let n = self.inputs.len();
        let mut saw_pos = false;
        let mut saw_neg = false;
        for k in 0..(1u16 << n) {
            if k & (1 << input) != 0 {
                continue;
            }
            let lo = self.eval(k);
            let hi = self.eval(k | (1 << input));
            if !lo && hi {
                saw_pos = true;
            }
            if lo && !hi {
                saw_neg = true;
            }
        }
        match (saw_pos, saw_neg) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Render as a sum-of-products Liberty expression string
    /// (`"(A * !B) + (C)"` style); constant functions render as `"0"`/`"1"`.
    #[must_use]
    pub fn to_expression(&self) -> String {
        let n = self.inputs.len();
        let minterms: Vec<u16> = (0..(1u16 << n)).filter(|&k| self.eval(k)).collect();
        if minterms.is_empty() {
            return "0".to_string();
        }
        if minterms.len() == (1usize << n) {
            return "1".to_string();
        }
        let terms: Vec<String> = minterms
            .iter()
            .map(|&k| {
                let lits: Vec<String> = (0..n)
                    .map(|i| {
                        if k & (1 << i) != 0 {
                            self.inputs[i].clone()
                        } else {
                            format!("!{}", self.inputs[i])
                        }
                    })
                    .collect();
                format!("({})", lits.join(" * "))
            })
            .collect();
        terms.join(" + ")
    }

    /// Parse a Liberty-style expression over the given inputs.
    ///
    /// Supports `!`, `*` (and implicit AND via juxtaposition is **not**
    /// supported), `+`, `^`, parentheses, and the constants `0`/`1`.
    ///
    /// Returns `None` on syntax errors or unknown identifiers.
    #[must_use]
    pub fn parse(expr: &str, inputs: &[&str]) -> Option<Self> {
        let tokens = tokenize(expr)?;
        let mut pos = 0usize;
        let names: Vec<String> = inputs.iter().map(|s| (*s).to_string()).collect();
        let ast = parse_or(&tokens, &mut pos, &names)?;
        if pos != tokens.len() {
            return None;
        }
        let f = LogicFunction::from_eval(inputs, |bits| ast.eval(bits));
        Some(f)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
    Const(bool),
}

fn tokenize(s: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '!' => {
                chars.next();
                out.push(Tok::Not);
            }
            '*' | '&' => {
                chars.next();
                out.push(Tok::And);
            }
            '+' | '|' => {
                chars.next();
                out.push(Tok::Or);
            }
            '^' => {
                chars.next();
                out.push(Tok::Xor);
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '0' => {
                chars.next();
                out.push(Tok::Const(false));
            }
            '1' => {
                chars.next();
                out.push(Tok::Const(true));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(ident));
            }
            _ => return None,
        }
    }
    Some(out)
}

enum Ast {
    Input(usize),
    Const(bool),
    Not(Box<Ast>),
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    Xor(Box<Ast>, Box<Ast>),
}

impl Ast {
    fn eval(&self, bits: u16) -> bool {
        match self {
            Ast::Input(i) => bits & (1 << i) != 0,
            Ast::Const(b) => *b,
            Ast::Not(a) => !a.eval(bits),
            Ast::And(a, b) => a.eval(bits) && b.eval(bits),
            Ast::Or(a, b) => a.eval(bits) || b.eval(bits),
            Ast::Xor(a, b) => a.eval(bits) ^ b.eval(bits),
        }
    }
}

fn parse_or(t: &[Tok], pos: &mut usize, names: &[String]) -> Option<Ast> {
    let mut lhs = parse_xor(t, pos, names)?;
    while *pos < t.len() && t[*pos] == Tok::Or {
        *pos += 1;
        let rhs = parse_xor(t, pos, names)?;
        lhs = Ast::Or(Box::new(lhs), Box::new(rhs));
    }
    Some(lhs)
}

fn parse_xor(t: &[Tok], pos: &mut usize, names: &[String]) -> Option<Ast> {
    let mut lhs = parse_and(t, pos, names)?;
    while *pos < t.len() && t[*pos] == Tok::Xor {
        *pos += 1;
        let rhs = parse_and(t, pos, names)?;
        lhs = Ast::Xor(Box::new(lhs), Box::new(rhs));
    }
    Some(lhs)
}

fn parse_and(t: &[Tok], pos: &mut usize, names: &[String]) -> Option<Ast> {
    let mut lhs = parse_unary(t, pos, names)?;
    while *pos < t.len() && t[*pos] == Tok::And {
        *pos += 1;
        let rhs = parse_unary(t, pos, names)?;
        lhs = Ast::And(Box::new(lhs), Box::new(rhs));
    }
    Some(lhs)
}

fn parse_unary(t: &[Tok], pos: &mut usize, names: &[String]) -> Option<Ast> {
    match t.get(*pos)? {
        Tok::Not => {
            *pos += 1;
            Some(Ast::Not(Box::new(parse_unary(t, pos, names)?)))
        }
        Tok::LParen => {
            *pos += 1;
            let inner = parse_or(t, pos, names)?;
            if t.get(*pos)? != &Tok::RParen {
                return None;
            }
            *pos += 1;
            Some(inner)
        }
        Tok::Const(b) => {
            let b = *b;
            *pos += 1;
            Some(Ast::Const(b))
        }
        Tok::Ident(name) => {
            let idx = names.iter().position(|n| n == name)?;
            *pos += 1;
            Some(Ast::Input(idx))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2() -> LogicFunction {
        LogicFunction::from_eval(&["A", "B"], |b| !(b & 1 != 0 && b & 2 != 0))
    }

    #[test]
    fn truth_table_eval() {
        let f = nand2();
        assert!(f.eval(0b00));
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn named_eval() {
        let f = nand2();
        assert!(!f.eval_named(&[("A", true), ("B", true)]));
        assert!(f.eval_named(&[("A", true)]));
    }

    #[test]
    fn dependence_and_unateness() {
        let f = nand2();
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(!f.depends_on(5));
        assert_eq!(f.unateness(0), Some(false), "NAND is negative unate");
        let xor = LogicFunction::from_eval(&["A", "B"], |b| (b.count_ones() % 2) == 1);
        assert_eq!(xor.unateness(0), None, "XOR is binate");
        let buf = LogicFunction::from_eval(&["A"], |b| b & 1 != 0);
        assert_eq!(buf.unateness(0), Some(true));
    }

    #[test]
    fn expression_round_trip() {
        for f in [
            nand2(),
            LogicFunction::from_eval(&["A", "B", "C"], |b| {
                ((b & 1 != 0) && (b & 2 != 0)) || (b & 4 != 0)
            }),
            LogicFunction::from_eval(&["A"], |b| b & 1 == 0),
        ] {
            let expr = f.to_expression();
            let inputs: Vec<&str> = f.inputs().iter().map(String::as_str).collect();
            let back = LogicFunction::parse(&expr, &inputs).expect("round trip parses");
            assert_eq!(f, back, "expr = {expr}");
        }
    }

    #[test]
    fn parses_operators() {
        let f = LogicFunction::parse("!(A * B) ^ C", &["A", "B", "C"]).unwrap();
        assert!(f.eval(0b000)); // !(0)^0 = 1
        assert!(f.eval(0b111)); // !(1*1) ^ 1 = 0 ^ 1 = 1
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(LogicFunction::parse("A +", &["A"]).is_none());
        assert!(LogicFunction::parse("Q", &["A"]).is_none());
        assert!(LogicFunction::parse("(A", &["A"]).is_none());
        assert!(LogicFunction::parse("A @ B", &["A", "B"]).is_none());
    }

    #[test]
    fn constants() {
        let zero = LogicFunction::from_eval(&["A"], |_| false);
        assert_eq!(zero.to_expression(), "0");
        let one = LogicFunction::from_eval(&["A"], |_| true);
        assert_eq!(one.to_expression(), "1");
    }
}
