//! The virtual quantum device: per-qubit dispersive-readout model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{QubitError, Result};

/// A point in the readout I/Q plane (arbitrary units, as in Fig. 2a).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IqPoint {
    /// In-phase component.
    pub i: f64,
    /// Quadrature component.
    pub q: f64,
}

impl IqPoint {
    /// Construct a point.
    #[must_use]
    pub fn new(i: f64, q: f64) -> Self {
        Self { i, q }
    }

    /// Squared Euclidean distance (the paper's radicand — the square root
    /// is never taken).
    #[must_use]
    pub fn dist2(self, other: Self) -> f64 {
        let di = self.i - other.i;
        let dq = self.q - other.q;
        di * di + dq * dq
    }
}

/// One readout shot: the measured I/Q value and the state that was
/// prepared (ground truth for accuracy studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shot {
    /// Qubit index.
    pub qubit: usize,
    /// Prepared basis state (0 or 1).
    pub prepared: u8,
    /// Measured I/Q point.
    pub point: IqPoint,
}

/// Per-qubit readout parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QubitReadout {
    c0: IqPoint,
    c1: IqPoint,
    /// Gaussian blob sigma.
    sigma: f64,
    /// Probability that a prepared |1⟩ relaxes mid-readout (appears along
    /// the c1→c0 chord).
    relax: f64,
}

/// An `n`-qubit readout model with seeded shot generation.
#[derive(Debug, Clone)]
pub struct QuantumDevice {
    qubits: Vec<QubitReadout>,
    seed: u64,
    /// State decoherence time constant, seconds (Fig. 2b; ≈110 µs on the
    /// paper's IBM Falcon).
    pub t2: f64,
}

impl QuantumDevice {
    /// The paper's 27-qubit IBM-Falcon-class device.
    #[must_use]
    pub fn falcon27(seed: u64) -> Self {
        Self::new(27, seed)
    }

    /// Build an `n`-qubit device; readout geometry varies per qubit as on
    /// real hardware (Fig. 2a shows 27 distinct center pairs).
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA1C_0027);
        let qubits = (0..n)
            .map(|_| {
                // Centers scattered over roughly [-1.5, 1.5]² with a
                // separation comfortably above the blob sigma.
                let c0 = IqPoint::new(rng.gen_range(-1.4..1.4), rng.gen_range(-1.4..1.4));
                let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let sep: f64 = rng.gen_range(0.8..1.5);
                let c1 = IqPoint::new(c0.i + sep * angle.cos(), c0.q + sep * angle.sin());
                QubitReadout {
                    c0,
                    c1,
                    sigma: rng.gen_range(0.10..0.18),
                    relax: rng.gen_range(0.01..0.04),
                }
            })
            .collect();
        Self {
            qubits,
            seed,
            t2: 110e-6,
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// Whether the device has no qubits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// True (noise-free) center of a qubit's state blob.
    ///
    /// # Errors
    ///
    /// [`QubitError::QubitOutOfRange`].
    pub fn true_center(&self, qubit: usize, state: u8) -> Result<IqPoint> {
        let q = self.qubits.get(qubit).ok_or(QubitError::QubitOutOfRange {
            qubit,
            count: self.qubits.len(),
        })?;
        Ok(if state == 0 { q.c0 } else { q.c1 })
    }

    /// Generate `shots` readout shots of `qubit` prepared in `state`.
    ///
    /// # Errors
    ///
    /// [`QubitError::QubitOutOfRange`].
    pub fn readout(&self, qubit: usize, state: u8, shots: usize) -> Result<Vec<Shot>> {
        let q = *self.qubits.get(qubit).ok_or(QubitError::QubitOutOfRange {
            qubit,
            count: self.qubits.len(),
        })?;
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (qubit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(state) << 60)
                ^ (shots as u64).rotate_left(17),
        );
        let mut out = Vec::with_capacity(shots);
        for _ in 0..shots {
            let center = if state == 0 { q.c0 } else { q.c1 };
            // Box-Muller Gaussian noise.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let r = (-2.0 * u1.ln()).sqrt() * q.sigma;
            let theta = std::f64::consts::TAU * u2;
            let mut point = IqPoint::new(center.i + r * theta.cos(), center.q + r * theta.sin());
            // Relaxation during readout drags some |1⟩ shots toward c0.
            if state == 1 && rng.gen::<f64>() < q.relax {
                let f: f64 = rng.gen();
                point = IqPoint::new(
                    q.c0.i + f * (q.c1.i - q.c0.i),
                    q.c0.q + f * (q.c1.q - q.c0.q),
                );
            }
            out.push(Shot {
                qubit,
                prepared: state,
                point,
            });
        }
        Ok(out)
    }

    /// Readout with an explicit integration window (the paper's boxcar
    /// integrator, Sec. II): longer integration averages down the amplifier
    /// noise (`sigma ∝ 1/sqrt(t)`) but exposes the qubit to more relaxation
    /// (`p_relax ∝ t`). `window` is relative to the nominal window (1.0
    /// reproduces [`QuantumDevice::readout`]).
    ///
    /// # Errors
    ///
    /// [`QubitError::QubitOutOfRange`]; also if `window` is not positive.
    pub fn readout_windowed(
        &self,
        qubit: usize,
        state: u8,
        shots: usize,
        window: f64,
    ) -> Result<Vec<Shot>> {
        if window <= 0.0 || !window.is_finite() {
            return Err(QubitError::InvalidWindow { window });
        }
        let q = *self.qubits.get(qubit).ok_or(QubitError::QubitOutOfRange {
            qubit,
            count: self.qubits.len(),
        })?;
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (qubit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(state) << 60)
                ^ ((window * 4096.0) as u64).rotate_left(23)
                ^ (shots as u64).rotate_left(17),
        );
        let sigma = q.sigma / window.sqrt();
        let relax = (q.relax * window).min(0.9);
        let mut out = Vec::with_capacity(shots);
        for _ in 0..shots {
            let center = if state == 0 { q.c0 } else { q.c1 };
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let r = (-2.0 * u1.ln()).sqrt() * sigma;
            let theta = std::f64::consts::TAU * u2;
            let mut point = IqPoint::new(center.i + r * theta.cos(), center.q + r * theta.sin());
            if state == 1 && rng.gen::<f64>() < relax {
                let f: f64 = rng.gen();
                point = IqPoint::new(
                    q.c0.i + f * (q.c1.i - q.c0.i),
                    q.c0.q + f * (q.c1.q - q.c0.q),
                );
            }
            out.push(Shot {
                qubit,
                prepared: state,
                point,
            });
        }
        Ok(out)
    }

    /// One labelled measurement per qubit (a "readout round"): qubit `i`'s
    /// prepared state alternates pseudo-randomly with the round index.
    ///
    /// # Panics
    ///
    /// Never (internal qubit indices are in range).
    #[must_use]
    pub fn measurement_round(&self, round: u64) -> Vec<Shot> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03));
        (0..self.len())
            .map(|qubit| {
                let state = u8::from(rng.gen::<bool>());
                let mut s = self.readout(qubit, state, 1).expect("qubit in range")[0];
                // Per-round jitter so repeated rounds differ slightly.
                let jit: f64 = rng.gen_range(-1e-9..1e-9);
                s.point.i += jit;
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon_has_27_qubits() {
        let d = QuantumDevice::falcon27(1);
        assert_eq!(d.len(), 27);
        assert!(!d.is_empty());
    }

    #[test]
    fn shots_are_deterministic_per_seed() {
        let d = QuantumDevice::new(4, 9);
        let a = d.readout(2, 1, 16).unwrap();
        let b = d.readout(2, 1, 16).unwrap();
        assert_eq!(a, b);
        let d2 = QuantumDevice::new(4, 10);
        let c = d2.readout(2, 1, 16).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn blobs_cluster_near_true_centers() {
        let d = QuantumDevice::new(3, 5);
        for state in [0u8, 1] {
            let shots = d.readout(1, state, 400).unwrap();
            let c = d.true_center(1, state).unwrap();
            let mean_i = shots.iter().map(|s| s.point.i).sum::<f64>() / 400.0;
            let mean_q = shots.iter().map(|s| s.point.q).sum::<f64>() / 400.0;
            let err = IqPoint::new(mean_i, mean_q).dist2(c).sqrt();
            assert!(err < 0.12, "state {state} mean error {err}");
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let d = QuantumDevice::new(2, 1);
        assert!(matches!(
            d.readout(5, 0, 1),
            Err(QubitError::QubitOutOfRange { qubit: 5, count: 2 })
        ));
        assert!(d.true_center(3, 0).is_err());
    }


    #[test]
    fn readout_window_trades_noise_for_relaxation() {
        // Short windows: noisy blobs. Long windows: heavy relaxation tail.
        // Classified fidelity of prepared |1> peaks at an interior window.
        let d = QuantumDevice::new(1, 77);
        let c0 = d.true_center(0, 0).unwrap();
        let c1 = d.true_center(0, 1).unwrap();
        let fidelity_at = |w: f64| -> f64 {
            let shots = d.readout_windowed(0, 1, 600, w).unwrap();
            let ok = shots
                .iter()
                .filter(|s| s.point.dist2(c1) < s.point.dist2(c0))
                .count();
            ok as f64 / 600.0
        };
        let short = fidelity_at(0.05);
        let mid = fidelity_at(1.0);
        let long = fidelity_at(25.0);
        assert!(mid > short, "integration beats noise: {mid} vs {short}");
        assert!(mid > long, "relaxation punishes long windows: {mid} vs {long}");
    }

    #[test]
    fn unit_window_matches_nominal_statistics() {
        let d = QuantumDevice::new(2, 9);
        let a = d.readout_windowed(1, 0, 200, 1.0).unwrap();
        let c = d.true_center(1, 0).unwrap();
        let mean_i = a.iter().map(|s| s.point.i).sum::<f64>() / 200.0;
        assert!((mean_i - c.i).abs() < 0.1);
    }

    #[test]
    fn invalid_window_is_rejected() {
        let d = QuantumDevice::new(1, 1);
        assert!(d.readout_windowed(0, 0, 1, 0.0).is_err());
        assert!(d.readout_windowed(0, 0, 1, -1.0).is_err());
    }

    #[test]
    fn measurement_rounds_vary() {
        let d = QuantumDevice::new(8, 3);
        let r1 = d.measurement_round(1);
        let r2 = d.measurement_round(2);
        assert_eq!(r1.len(), 8);
        assert_ne!(
            r1.iter().map(|s| s.prepared).collect::<Vec<_>>(),
            r2.iter().map(|s| s.prepared).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn default_t2_matches_paper() {
        let d = QuantumDevice::falcon27(0);
        assert!((d.t2 - 110e-6).abs() < 1e-9);
    }
}
