//! The Rocket-class RV64 SoC netlist generator.
//!
//! Generates the structural artifact the paper's synthesis + place-and-route
//! step hands to signoff: a five-stage in-order RV64 core (fetch, decode,
//! execute, memory, writeback) with split 16 KB L1 caches, a shared 512 KB
//! L2, an FPU pipeline, an iterative multiplier, CSRs, clock distribution,
//! and uncore/peripheral logic. The structure targets a Rocket-class logic
//! depth: the ALU's 64-bit ripple-carry chain plus bypass and result muxing
//! forms the critical path that lands near the paper's 1.04 ns at 300 K.
//!
//! Functional fidelity is *not* the goal here (the instruction-level
//! behaviour lives in `cryo-riscv`); timing/power-relevant structure is.

use crate::builder::DesignBuilder;
use crate::design::{Design, MacroInstance, NetId};
use crate::sram::SramMacro;

/// SoC generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Register width (the paper's SoC is RV64).
    pub xlen: usize,
    /// Decoded control signal count.
    pub decode_signals: usize,
    /// Number of replicated uncore/peripheral logic tiles (DMA, bus fabric,
    /// debug, PLIC/CLINT-class logic). Scales total instance count toward a
    /// full-SoC netlist; calibrated so 300 K logic leakage lands near the
    /// paper's 11 mW.
    pub uncore_tiles: usize,
    /// Clock-tree leaf count.
    pub clock_leaves: usize,
}

impl Default for SocConfig {
    fn default() -> Self {
        Self {
            xlen: 64,
            decode_signals: 24,
            uncore_tiles: 2400,
            clock_leaves: 320,
        }
    }
}

impl SocConfig {
    /// A scaled-down configuration for tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            xlen: 16,
            decode_signals: 8,
            uncore_tiles: 2,
            clock_leaves: 4,
        }
    }
}

/// Deterministic PRNG for structural randomness (decode trees, uncore
/// tiles) — xorshift, seeded per block.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % bound as u64) as usize
    }
}

/// Take `len` bits of `word` starting at `start`, wrapping around so that
/// scaled-down configurations (narrow `xlen`) still produce full-width
/// compare/tag structures.
fn bits(word: &[NetId], start: usize, len: usize) -> Vec<NetId> {
    (0..len).map(|i| word[(start + i) % word.len()]).collect()
}

/// Build the SoC netlist.
#[must_use]
pub fn build_soc(cfg: &SocConfig) -> Design {
    let xlen = cfg.xlen;
    let mut b = DesignBuilder::new("rv64_soc");
    let clk = b.clock_input("clk");
    let rstn = b.input("rstn");

    // ------------------------------------------------------------------
    // Clock distribution.
    // ------------------------------------------------------------------
    b.set_region("clock");
    let root = b.clkbuf(clk, 16);
    let mids: Vec<NetId> = (0..8).map(|_| b.clkbuf(root, 8)).collect();
    let leaves: Vec<NetId> = (0..cfg.clock_leaves)
        .map(|i| b.clkbuf(mids[i % mids.len()], 8))
        .collect();
    let leaf = |i: usize| leaves[i % leaves.len()];

    // Shared constants, buffered for fanout.
    b.set_region("ctrl");
    let zero_src = b.tie_lo();
    let one_src = b.tie_hi();
    let zero = b.buf(zero_src, 4);
    let one = b.buf(one_src, 4);

    // ------------------------------------------------------------------
    // IF: program counter, +4, branch target, next-PC mux, I-cache.
    // ------------------------------------------------------------------
    b.set_region("ifu");
    // Placeholder nets closed later (branch target from EX).
    let take_branch = b.net("take_branch_src");
    let btarget: Vec<NetId> = (0..xlen).map(|_| b.net("btgt")).collect();
    let next_pc_src: Vec<NetId> = (0..xlen).map(|_| b.net("next_pc")).collect();
    let pc: Vec<NetId> = next_pc_src.iter().map(|&d| b.dff(d, leaf(0), 2)).collect();
    // PC + 4: increment from bit 2 with an AND carry chain (the fast
    // incrementer a synthesizer infers for a +constant).
    let (pc_inc, _c) = {
        let upper: Vec<NetId> = pc.iter().skip(2.min(xlen - 1)).copied().collect();
        b.incrementer(&upper, one)
    };
    let mut pc_plus: Vec<NetId> = pc.iter().take(2.min(xlen - 1)).copied().collect();
    pc_plus.extend(pc_inc);
    let pc_plus = pc_plus;
    let next_pc = b.mux2_word(&pc_plus, &btarget, take_branch, 2);
    // Close the placeholder: buffer each next_pc bit onto the register input.
    for (i, &np) in next_pc.iter().enumerate() {
        let buffered = b.buf(np, 1);
        // Alias by instance: drive the placeholder net via a buffer instance
        // output — replace by adding a BUF whose output *is* the
        // placeholder. DesignBuilder::gate always makes fresh nets, so wire
        // explicitly here.
        b.alias_with_buffer(buffered, next_pc_src[i]);
    }

    // L1 instruction cache macro.
    let icache_addr: Vec<NetId> = bits(&pc, 0, 14.min(xlen));
    let instr: Vec<NetId> = (0..32).map(|_| b.net("instr")).collect();
    b.add_macro_instance(MacroInstance {
        name: "l1i_data".into(),
        spec: SramMacro::l1("l1i_data"),
        clock: leaf(1),
        inputs: icache_addr.clone(),
        outputs: instr.clone(),
        region: "l1i".into(),
    });
    // I-cache tag path: tag compare over the PC high bits.
    b.set_region("l1i");
    let itag_q: Vec<NetId> = (0..28).map(|_| b.net("itag")).collect();
    b.add_macro_instance(MacroInstance {
        name: "l1i_tags".into(),
        spec: SramMacro::regfile("l1i_tags", 2.0),
        clock: leaf(1),
        inputs: icache_addr,
        outputs: itag_q.clone(),
        region: "l1i".into(),
    });
    let pc_high: Vec<NetId> = bits(&pc, 14, 28);
    let _ihit = b.equal_word(&itag_q, &pc_high);

    // ------------------------------------------------------------------
    // ID: decode trees, immediate selection, register file.
    // ------------------------------------------------------------------
    b.set_region("dec");
    let mut rng = Lcg(0x5EED_CAFE_0001);
    let mut ctrl: Vec<NetId> = Vec::new();
    for _ in 0..cfg.decode_signals {
        // Three-level random tree over instruction bits.
        let l1: Vec<NetId> = (0..6)
            .map(|_| {
                let a = instr[rng.next(32)];
                let c = instr[rng.next(32)];
                b.nand2(a, c, 1)
            })
            .collect();
        let l2: Vec<NetId> = l1.chunks(2).map(|p| b.nor2(p[0], p[1], 1)).collect();
        ctrl.push(b.reduce_and(&l2));
    }
    // Immediate generation: two mux layers over sign/shuffle choices.
    let sign = instr[31];
    let imm: Vec<NetId> = (0..xlen)
        .map(|i| {
            if i < 12 {
                let m1 = b.mux2(instr[20 + i % 12], instr[i % 20 + 5], ctrl[0], 1);
                b.mux2(m1, instr[(i * 7) % 32], ctrl[1], 1)
            } else {
                b.buf(sign, 1)
            }
        })
        .collect();

    // Register file (SRAM-style macro, 2 read ports folded into one model).
    let rf_addr: Vec<NetId> = (15..25).map(|i| instr[i % 32]).collect();
    let rs1: Vec<NetId> = (0..xlen).map(|_| b.net("rs1")).collect();
    let rs2: Vec<NetId> = (0..xlen).map(|_| b.net("rs2")).collect();
    let mut rf_out = rs1.clone();
    rf_out.extend(rs2.iter().copied());
    b.add_macro_instance(MacroInstance {
        name: "int_regfile".into(),
        spec: SramMacro::regfile("int_regfile", 0.5),
        clock: leaf(2),
        inputs: rf_addr,
        outputs: rf_out,
        region: "dec".into(),
    });

    // ID/EX pipeline registers.
    b.set_region("pipe");
    let rs1_q = b.register_words(&rs1, leaf(3));
    let rs2_q = b.register_words(&rs2, leaf(4));
    let imm_q = b.register_words(&imm, leaf(5));
    let ctrl_q = b.register_words(&ctrl, leaf(6));

    // ------------------------------------------------------------------
    // EX: bypass network, ALU, shifter, multiplier.
    // ------------------------------------------------------------------
    // Forwarding sources (closed after MEM/WB exist).
    b.set_region("bypass");
    let mem_fwd: Vec<NetId> = (0..xlen).map(|_| b.net("mem_fwd")).collect();
    let wb_fwd: Vec<NetId> = (0..xlen).map(|_| b.net("wb_fwd")).collect();
    let fwd_a_mem = ctrl_q[2 % ctrl_q.len()];
    let fwd_a_wb = ctrl_q[3 % ctrl_q.len()];
    let op_a_m = b.mux2_word(&rs1_q, &mem_fwd, fwd_a_mem, 2);
    let op_a = b.mux2_word(&op_a_m, &wb_fwd, fwd_a_wb, 2);
    let op_b_m = b.mux2_word(&rs2_q, &mem_fwd, fwd_a_mem, 2);
    let op_b_r = b.mux2_word(&op_b_m, &wb_fwd, fwd_a_wb, 2);
    let use_imm = ctrl_q[4 % ctrl_q.len()];
    let op_b = b.mux2_word(&op_b_r, &imm_q, use_imm, 2);

    // ALU: subtract-capable ripple adder — the intended critical path.
    b.set_region("alu");
    let sub = ctrl_q[5 % ctrl_q.len()];
    let b_inv: Vec<NetId> = op_b.iter().map(|&x| b.xor2(x, sub, 1)).collect();
    // Block size 20 puts the adder's carry depth right at the paper's
    // ~1.04 ns constraint (what synthesis converges to at this period).
    let (add_out, cout) = b.carry_select_adder_blocks(&op_a, &b_inv, sub, 20);
    let and_out = b.and_word(&op_a, &op_b, 1);
    let or_out = b.or_word(&op_a, &op_b, 1);
    let xor_out = b.xor_word(&op_a, &op_b, 1);
    // SLT from the adder's sign/carry.
    let slt_bit = b.xor2(add_out[xlen - 1], cout, 1);
    let slt_word: Vec<NetId> = (0..xlen)
        .map(|i| if i == 0 { slt_bit } else { zero })
        .collect();
    // Shifter (its own region).
    b.set_region("shifter");
    let shamt: Vec<NetId> = (0..6).map(|i| op_b[i]).collect();
    let shift_out = b.barrel_shifter(&op_a, &shamt);
    // Result selection tree.
    b.set_region("alu");
    let sel0 = ctrl_q[6 % ctrl_q.len()];
    let sel1 = ctrl_q[7 % ctrl_q.len()];
    let sel2 = ctrl_q[8 % ctrl_q.len()];
    let m_logic1 = b.mux2_word(&and_out, &or_out, sel0, 1);
    let m_logic = b.mux2_word(&m_logic1, &xor_out, sel1, 1);
    let m_arith = b.mux2_word(&add_out, &slt_word, sel0, 1);
    let m_as = b.mux2_word(&m_arith, &m_logic, sel1, 2);
    let alu_out = b.mux2_word(&m_as, &shift_out, sel2, 2);

    // Branch resolution: comparator + target adder close the IF loop.
    b.set_region("alu");
    let br_eq = b.equal_word(&op_a, &op_b);
    let br_take = b.and2(br_eq, ctrl_q[9 % ctrl_q.len()], 2);
    b.alias_with_buffer(br_take, take_branch);
    let (btgt_calc, _c2) = b.carry_select_adder(&pc, &imm_q, zero);
    for (i, &t) in btgt_calc.iter().enumerate() {
        b.alias_with_buffer(t, btarget[i]);
    }

    // Iterative multiplier: 8 partial-product rows, CSA reduction, carry-
    // select accumulate, result register.
    b.set_region("mul");
    let mut pp: Vec<Vec<NetId>> = (0..8).map(|r| b.ppgen(&op_a, op_b[r % xlen])).collect();
    while pp.len() > 2 {
        let a0 = pp.remove(0);
        let a1 = pp.remove(0);
        let a2 = pp.remove(0);
        let (s, c) = b.csa_row(&a0, &a1, &a2);
        pp.push(s);
        pp.push(c);
    }
    let (mul_sum, _mc) = b.carry_select_adder(&pp[0], &pp[1], zero);
    let _mul_q = b.register_words(&mul_sum, leaf(7));

    // FPU approximation: three pipelined stages (align, add/LZC, normalize).
    b.set_region("fpu");
    let man_a: Vec<NetId> = (0..53).map(|i| op_a[i % xlen]).collect();
    let man_b: Vec<NetId> = (0..53).map(|i| op_b[i % xlen]).collect();
    let exp_a: Vec<NetId> = (0..11).map(|i| op_a[(i + 40) % xlen]).collect();
    let exp_b: Vec<NetId> = (0..11).map(|i| op_b[(i + 40) % xlen]).collect();
    let exp_b_inv = b.inv_word(&exp_b, 1);
    let (exp_diff, _ec) = b.ripple_adder(&exp_a, &exp_b_inv, one);
    let align_sh: Vec<NetId> = exp_diff.iter().take(6).copied().collect();
    let aligned = b.barrel_shifter(&man_b, &align_sh);
    let s1_a = b.register_words(&man_a, leaf(8));
    let s1_b = b.register_words(&aligned, leaf(8));
    let (fsum, _fc) = b.carry_select_adder(&s1_a, &s1_b, zero);
    // Leading-zero logic: OR-tree prefixes.
    let lz0 = b.reduce_or(&fsum[26..]);
    let lz1 = b.reduce_or(&fsum[13..26]);
    let lz2 = b.reduce_or(&fsum[..13]);
    let s2 = b.register_words(&fsum, leaf(9));
    let lz_bits = vec![lz0, lz1, lz2];
    let lz_q = b.register_words(&lz_bits, leaf(9));
    let norm_sh: Vec<NetId> = (0..6).map(|i| lz_q[i % 3]).collect();
    let normalized = b.barrel_shifter(&s2, &norm_sh);
    let round_one: Vec<NetId> = (0..53).map(|i| if i == 0 { one } else { zero }).collect();
    let (rounded, _rc) = b.carry_select_adder(&normalized, &round_one, zero);
    let _fpu_q = b.register_words(&rounded, leaf(10));

    // ------------------------------------------------------------------
    // EX/MEM, MEM (L1D + tags), MEM/WB, writeback.
    // ------------------------------------------------------------------
    b.set_region("pipe");
    let exmem_alu = b.register_words(&alu_out, leaf(11));
    let exmem_addr = b.register_words(&add_out, leaf(12));
    let exmem_store = b.register_words(&rs2_q, leaf(13));

    b.set_region("lsu");
    let d_addr: Vec<NetId> = bits(&exmem_addr, 0, 14.min(xlen));
    let load_raw: Vec<NetId> = (0..xlen).map(|_| b.net("l1d_out")).collect();
    b.add_macro_instance(MacroInstance {
        name: "l1d_data".into(),
        spec: SramMacro::l1("l1d_data"),
        clock: leaf(14),
        inputs: d_addr.clone(),
        outputs: load_raw.clone(),
        region: "l1d".into(),
    });
    let dtag_q: Vec<NetId> = (0..28).map(|_| b.net("dtag")).collect();
    b.add_macro_instance(MacroInstance {
        name: "l1d_tags".into(),
        spec: SramMacro::regfile("l1d_tags", 2.0),
        clock: leaf(14),
        inputs: d_addr,
        outputs: dtag_q.clone(),
        region: "l1d".into(),
    });
    let addr_high: Vec<NetId> = bits(&exmem_addr, 14, 28);
    let dhit = b.equal_word(&dtag_q, &addr_high);
    // Store alignment and load extension.
    let st_sh: Vec<NetId> = exmem_addr.iter().take(3).copied().collect();
    let _store_aligned = b.barrel_shifter(&exmem_store, &st_sh);
    let ld_sel = ctrl_q[10 % ctrl_q.len()];
    let load_ext1 = b.mux2_word(&load_raw, &exmem_alu, dhit, 1);
    let load_data = b.mux2_word(&load_ext1, &exmem_alu, ld_sel, 2);

    b.set_region("pipe");
    let memwb_val = b.register_words(&load_data, leaf(15));
    // Writeback mux and forwarding closure.
    b.set_region("bypass");
    let wb_sel = ctrl_q[11 % ctrl_q.len()];
    let wb_data = b.mux2_word(&memwb_val, &exmem_alu, wb_sel, 2);
    for i in 0..xlen {
        b.alias_with_buffer(exmem_alu[i], mem_fwd[i]);
        b.alias_with_buffer(wb_data[i], wb_fwd[i]);
    }

    // ------------------------------------------------------------------
    // L2: banks, tags, lightweight controller.
    // ------------------------------------------------------------------
    b.set_region("l2");
    let l2_addr: Vec<NetId> = bits(&exmem_addr, 6, 16.min(xlen));
    for bank in 0..4 {
        let outs: Vec<NetId> = (0..32).map(|_| b.net("l2_out")).collect();
        b.add_macro_instance(MacroInstance {
            name: format!("l2_bank{bank}"),
            spec: SramMacro::l2_bank(&format!("l2_bank{bank}"), 128.0),
            clock: leaf(16 + bank),
            inputs: l2_addr.clone(),
            outputs: outs,
            region: "l2".into(),
        });
    }
    let l2tag_q: Vec<NetId> = (0..24).map(|_| b.net("l2tag")).collect();
    b.add_macro_instance(MacroInstance {
        name: "l2_tags".into(),
        spec: SramMacro::regfile("l2_tags", 30.0),
        clock: leaf(20),
        inputs: l2_addr,
        outputs: l2tag_q.clone(),
        region: "l2".into(),
    });
    let addr_tag: Vec<NetId> = bits(&exmem_addr, 22, 24);
    let _l2hit = b.equal_word(&l2tag_q, &addr_tag);
    // Controller state machine: resettable flops plus next-state logic.
    let mut l2_state: Vec<NetId> = Vec::new();
    for i in 0..24 {
        let d = if l2_state.len() >= 2 {
            let x = b.xor2(l2_state[i - 1], l2_state[i - 2], 1);
            b.and2(x, dhit, 1)
        } else {
            dhit
        };
        l2_state.push(b.dffr(d, rstn, leaf(21), 1));
    }

    // TLB macro.
    let tlb_out: Vec<NetId> = (0..44).map(|_| b.net("tlb")).collect();
    b.add_macro_instance(MacroInstance {
        name: "tlb".into(),
        spec: SramMacro::regfile("tlb", 2.0),
        clock: leaf(22),
        inputs: pc.iter().take(12).copied().collect(),
        outputs: tlb_out,
        region: "lsu".into(),
    });
    // FP register file macro.
    let fp_out: Vec<NetId> = (0..64).map(|_| b.net("fprf")).collect();
    b.add_macro_instance(MacroInstance {
        name: "fp_regfile".into(),
        spec: SramMacro::regfile("fp_regfile", 0.5),
        clock: leaf(23),
        inputs: instr.iter().take(10).copied().collect(),
        outputs: fp_out,
        region: "fpu".into(),
    });

    // ------------------------------------------------------------------
    // CSR file and hazard/control logic.
    // ------------------------------------------------------------------
    b.set_region("csr");
    let mut csr_q: Vec<Vec<NetId>> = Vec::new();
    for r in 0..4 {
        let d: Vec<NetId> = (0..xlen).map(|i| wb_data[(i + r) % xlen]).collect();
        csr_q.push(b.register_words(&d, leaf(24 + r)));
    }
    let csr_m1 = b.mux2_word(&csr_q[0], &csr_q[1], ctrl_q[0], 1);
    let csr_m2 = b.mux2_word(&csr_q[2], &csr_q[3], ctrl_q[0], 1);
    let csr_out = b.mux2_word(&csr_m1, &csr_m2, ctrl_q[1], 1);
    for &n in csr_out.iter().take(8) {
        b.mark_output(n);
    }

    b.set_region("ctrl");
    let mut hz = Vec::new();
    for i in 0..24 {
        let a = ctrl_q[i % ctrl_q.len()];
        let c = ctrl_q[(i * 5 + 1) % ctrl_q.len()];
        let t = b.nand2(a, c, 1);
        hz.push(b.dffr(t, rstn, leaf(28), 1));
    }
    let stall = b.reduce_or(&hz);
    b.mark_output(stall);
    for &n in alu_out.iter().take(4) {
        b.mark_output(n);
    }

    // ------------------------------------------------------------------
    // Uncore tiles: bus fabric / DMA / debug-class random logic.
    // ------------------------------------------------------------------
    b.set_region("uncore");
    let mut tile_rng = Lcg(0xBADC_0FFE_E150_0000);
    // Two-level buffered distribution of the seed signals so uncore fanout
    // never lands on the core's nets directly (as a placed design would
    // buffer a long route).
    let dist_l1: Vec<NetId> = (0..8).map(|g| b.buf(wb_data[g % xlen], 8)).collect();
    let groups = cfg.uncore_tiles / 24 + 1;
    let dist_l2: Vec<NetId> = (0..groups)
        .map(|g| b.buf(dist_l1[g % dist_l1.len()], 4))
        .collect();
    for tile in 0..cfg.uncore_tiles {
        let mut state: Vec<NetId> = Vec::new();
        // 24 state flops with random next-state logic, ~9 cells per flop.
        for i in 0..24 {
            let seed_net = if state.is_empty() {
                dist_l2[(tile / 24) % dist_l2.len()]
            } else {
                state[tile_rng.next(state.len())]
            };
            let _ = i;
            let other = if state.len() > 1 {
                state[tile_rng.next(state.len())]
            } else {
                // Buffered distribution — never load core nets directly
                // from thousands of tiles.
                dist_l2[(tile / 24 + 1) % dist_l2.len()]
            };
            let g1 = b.nand2(seed_net, other, 1);
            let g2 = b.xor2(g1, seed_net, 1);
            let g3 = b.nor2(g2, other, 1);
            let g4 = b.and2(g3, g1, 1);
            let g5 = b.or2(g4, g2, 1);
            let g6 = b.mux2(g5, g1, g3, 1);
            let g7 = b.nand2(g6, g2, 1);
            let g8 = b.xnor2(g7, g4, 1);
            state.push(b.dffr(g8, rstn, leaf(32 + tile), 1));
        }
        let tile_out = b.reduce_or(&state);
        if tile % 16 == 0 {
            b.mark_output(tile_out);
        }
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soc_builds_clean() {
        let d = build_soc(&SocConfig::tiny());
        assert!(d.cell_count() > 500, "cells = {}", d.cell_count());
        assert!(d.macros().len() >= 10, "macros = {}", d.macros().len());
        assert!(d.clock.is_some());
    }

    #[test]
    fn full_soc_scale() {
        let d = build_soc(&SocConfig::default());
        // Rocket-class SoC netlist: tens of thousands of cells.
        assert!(
            d.cell_count() > 20_000,
            "full SoC too small: {}",
            d.cell_count()
        );
        let regions = d.region_histogram();
        for must_have in ["alu", "ifu", "dec", "fpu", "mul", "lsu", "clock", "uncore"] {
            assert!(
                regions.contains_key(must_have),
                "missing region {must_have}"
            );
        }
    }

    #[test]
    fn every_net_has_at_most_one_driver() {
        let d = build_soc(&SocConfig::tiny());
        let conn = d.connectivity();
        for net in 0..d.net_count() {
            let drivers = conn.drivers[net].len()
                + usize::from(d.primary_inputs.contains(&net))
                + usize::from(d.clock == Some(net));
            assert!(
                drivers <= 1,
                "net {} has {drivers} drivers",
                d.net_name(net)
            );
        }
    }

    #[test]
    fn memory_set_matches_paper() {
        let d = build_soc(&SocConfig::default());
        let total_kb: f64 = d.macros().iter().map(|m| m.spec.kbytes).sum();
        assert!(
            (total_kb - 581.0).abs() < 1.0,
            "on-chip SRAM should total 581 KB, got {total_kb}"
        );
    }
}
