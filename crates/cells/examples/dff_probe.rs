//! Scratch: characterize the sequential cells at both corners, fast grid.
use cryo_cells::{topology, CharConfig, Characterizer};
use cryo_device::{ModelCard, Polarity};

fn main() {
    for temp in [300.0, 10.0] {
        let engine = Characterizer::new(
            &ModelCard::nominal(Polarity::N),
            &ModelCard::nominal(Polarity::P),
            CharConfig::fast(temp),
        );
        for cell in [topology::dff(1), topology::dffr(2)] {
            match engine.characterize_cell(&cell) {
                Ok(c) => {
                    let clkq = c.arcs.iter().find(|a| a.pin == "Q").unwrap();
                    let setup = c.constraint_arcs().next().unwrap();
                    println!(
                        "{:>6}K {}: clk->Q {:.1} ps, setup {:.1} ps",
                        temp,
                        c.name,
                        clkq.cell_rise.lookup(20e-12, 3.2e-15) * 1e12,
                        setup.cell_rise.lookup(0.0, 0.0) * 1e12
                    );
                }
                Err(e) => println!("{temp}K {}: FAILED {e}", cell.name),
            }
        }
    }
}
