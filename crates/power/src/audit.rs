//! Physical-invariant audits over power reports.
//!
//! The signoff firewall's power layer: every component of a
//! [`PowerReport`] must be non-negative and finite, and the per-region
//! dynamic breakdown must sum back to the headline dynamic number —
//! every instance and macro contribution is accumulated into both, so
//! any disagreement means a total was silently corrupted after
//! accumulation.

use cryo_liberty::{AuditReport, Finding};

use crate::analysis::PowerReport;

/// Relative tolerance for the breakdown-sum check (floating-point
/// accumulation order differs between the total and the region map).
const REL_TOL: f64 = 1e-9;

/// Audit one corner's power report. `stage` names the pipeline stage for
/// attribution (`power`).
#[must_use]
pub fn audit_power(stage: &str, r: &PowerReport) -> AuditReport {
    let mut report = AuditReport::default();
    for (name, value) in [
        ("dynamic_w", r.dynamic_w),
        ("logic_leakage_w", r.logic_leakage_w),
        ("sram_leakage_w", r.sram_leakage_w),
    ] {
        if !(value.is_finite() && value >= 0.0) {
            report.push(Finding::new(
                stage,
                format!("{}/{name}", r.corner),
                "power_component_nonneg",
                value,
                ">= 0 and finite".into(),
            ));
        }
    }
    for (region, &value) in &r.per_region_dynamic {
        if !(value.is_finite() && value >= 0.0) {
            report.push(Finding::new(
                stage,
                format!("{}/region/{region}", r.corner),
                "power_component_nonneg",
                value,
                ">= 0 and finite".into(),
            ));
        }
    }
    let regions: f64 = r.per_region_dynamic.values().sum();
    if r.dynamic_w.is_finite()
        && regions.is_finite()
        && (regions - r.dynamic_w).abs() > 1e-15 + REL_TOL * r.dynamic_w.abs().max(regions.abs())
    {
        report.push(Finding::new(
            stage,
            r.corner.clone(),
            "power_breakdown_sums",
            regions,
            format!("= dynamic total {:e}", r.dynamic_w),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn clean_report() -> PowerReport {
        PowerReport {
            corner: "c10".into(),
            dynamic_w: 0.057,
            logic_leakage_w: 1.2e-6,
            sram_leakage_w: 3.4e-6,
            per_region_dynamic: HashMap::from([
                ("core".to_string(), 0.05),
                ("uncore".to_string(), 0.007),
            ]),
        }
    }

    #[test]
    fn clean_report_audits_clean() {
        assert!(audit_power("power", &clean_report()).is_clean());
    }

    #[test]
    fn negative_component_and_broken_breakdown_are_flagged() {
        let mut r = clean_report();
        r.logic_leakage_w = -1e-6;
        r.dynamic_w = 0.08; // no longer the region sum
        let a = audit_power("power", &r);
        let inv: Vec<&str> = a.findings.iter().map(|f| f.invariant.as_str()).collect();
        assert!(inv.contains(&"power_component_nonneg"));
        assert!(inv.contains(&"power_breakdown_sums"));
        let neg = a
            .findings
            .iter()
            .find(|f| f.invariant == "power_component_nonneg")
            .unwrap();
        assert_eq!(neg.entity, "c10/logic_leakage_w");
    }

    #[test]
    fn nan_component_is_flagged_not_propagated() {
        let mut r = clean_report();
        r.sram_leakage_w = f64::NAN;
        let a = audit_power("power", &r);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].invariant, "power_component_nonneg");
        assert!(a.findings[0].observed.contains("NaN"));
    }
}
