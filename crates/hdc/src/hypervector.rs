//! 128-bit binary hypervectors.

use std::fmt;
use std::ops::BitXor;

use rand::Rng;

/// A 128-bit binary hypervector, stored as two 64-bit words to match the
/// RV64 kernel layout.
///
/// ```
/// use cryo_hdc::Hv128;
///
/// let x = Hv128::new(0b1010, 0);
/// let y = Hv128::new(0b0110, 0);
/// // Bind is XOR; Hamming distance counts differing bits.
/// assert_eq!(x.bind(y), Hv128::new(0b1100, 0));
/// assert_eq!(x.hamming(y), 2);
/// // Binding the same key preserves distances (the paper's eq. (4)).
/// let key = Hv128::new(0xDEAD_BEEF, 0x1234);
/// assert_eq!(x.bind(key).hamming(y.bind(key)), x.hamming(y));
/// ```
///
/// Stored as two 64-bit words to match the
/// RV64 kernel's register layout ("each 128-bit HDC operation can be split
/// into two 64-bit instructions", Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Hv128 {
    /// Low 64 bits.
    pub lo: u64,
    /// High 64 bits.
    pub hi: u64,
}

impl Hv128 {
    /// Dimensionality in bits.
    pub const DIM: u32 = 128;

    /// Construct from the two words.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        Self { lo, hi }
    }

    /// Uniformly random hypervector.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        Self {
            lo: rng.gen(),
            hi: rng.gen(),
        }
    }

    /// Bind (XOR) — associative, commutative, self-inverse.
    #[must_use]
    pub fn bind(self, other: Self) -> Self {
        Self {
            lo: self.lo ^ other.lo,
            hi: self.hi ^ other.hi,
        }
    }

    /// Hamming distance: popcount of the XOR.
    #[must_use]
    pub fn hamming(self, other: Self) -> u32 {
        (self.lo ^ other.lo).count_ones() + (self.hi ^ other.hi).count_ones()
    }

    /// Normalized similarity in `[0, 1]`: 1 = identical, 0 = complement.
    #[must_use]
    pub fn similarity(self, other: Self) -> f64 {
        1.0 - f64::from(self.hamming(other)) / f64::from(Self::DIM)
    }

    /// Majority bundling of an odd number of vectors (per-bit vote).
    ///
    /// # Panics
    ///
    /// Panics when `vectors` is empty or has even length (majority would be
    /// ambiguous).
    #[must_use]
    pub fn bundle(vectors: &[Self]) -> Self {
        assert!(
            !vectors.is_empty() && vectors.len() % 2 == 1,
            "bundle needs an odd, non-zero count"
        );
        let mut out = Self::default();
        for bit in 0..128 {
            let ones = vectors.iter().filter(|v| v.bit(bit)).count();
            if ones * 2 > vectors.len() {
                out.set_bit(bit);
            }
        }
        out
    }

    /// Cyclic permutation by one position (sequence encoding primitive).
    #[must_use]
    pub fn permute(self) -> Self {
        let carry_lo = self.lo >> 63;
        let carry_hi = self.hi >> 63;
        Self {
            lo: (self.lo << 1) | carry_hi,
            hi: (self.hi << 1) | carry_lo,
        }
    }

    /// Read bit `i` (0 = LSB of `lo`).
    #[must_use]
    pub fn bit(self, i: u32) -> bool {
        if i < 64 {
            (self.lo >> i) & 1 == 1
        } else {
            (self.hi >> (i - 64)) & 1 == 1
        }
    }

    /// Set bit `i`.
    pub fn set_bit(&mut self, i: u32) {
        if i < 64 {
            self.lo |= 1 << i;
        } else {
            self.hi |= 1 << (i - 64);
        }
    }

    /// Total set bits.
    #[must_use]
    pub fn count_ones(self) -> u32 {
        self.lo.count_ones() + self.hi.count_ones()
    }
}

impl BitXor for Hv128 {
    type Output = Self;

    fn bitxor(self, rhs: Self) -> Self {
        self.bind(rhs)
    }
}

impl fmt::Display for Hv128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bind_is_self_inverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Hv128::random(&mut rng);
        let b = Hv128::random(&mut rng);
        assert_eq!(a.bind(b).bind(b), a);
        assert_eq!(a.bind(a), Hv128::default());
    }

    #[test]
    fn bind_is_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b, c) = (
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
        );
        assert_eq!(a.bind(b), b.bind(a));
        assert_eq!(a.bind(b).bind(c), a.bind(b.bind(c)));
    }

    #[test]
    fn hamming_is_a_metric() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b, c) = (
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
        );
        assert_eq!(a.hamming(a), 0);
        assert_eq!(a.hamming(b), b.hamming(a));
        assert!(a.hamming(c) <= a.hamming(b) + b.hamming(c));
    }

    #[test]
    fn bind_preserves_hamming_distance() {
        // d(a^x, b^x) = d(a, b): the key HDC invariant behind (4)'s rewrite.
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b, x) = (
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
            Hv128::random(&mut rng),
        );
        assert_eq!(a.bind(x).hamming(b.bind(x)), a.hamming(b));
    }

    #[test]
    fn random_vectors_are_quasi_orthogonal() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = Hv128::random(&mut rng);
            let b = Hv128::random(&mut rng);
            let d = a.hamming(b);
            assert!((35..=93).contains(&d), "expected ~64 ± tail, got {d}");
        }
    }

    #[test]
    fn bundle_majority() {
        let a = Hv128::new(0b111, 0);
        let b = Hv128::new(0b101, 0);
        let c = Hv128::new(0b001, 0);
        let m = Hv128::bundle(&[a, b, c]);
        assert_eq!(m.lo, 0b101);
        // Bundle is similar to each input.
        assert!(m.similarity(a) > 0.9);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn bundle_rejects_even() {
        let _ = Hv128::bundle(&[Hv128::default(), Hv128::default()]);
    }

    #[test]
    fn permute_preserves_weight_and_rotates() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Hv128::random(&mut rng);
        let p = a.permute();
        assert_eq!(a.count_ones(), p.count_ones());
        // 128 permutations return to the original.
        let mut v = a;
        for _ in 0..128 {
            v = v.permute();
        }
        assert_eq!(v, a);
    }

    #[test]
    fn bit_accessors() {
        let mut v = Hv128::default();
        v.set_bit(0);
        v.set_bit(64);
        v.set_bit(127);
        assert!(v.bit(0) && v.bit(64) && v.bit(127));
        assert!(!v.bit(1) && !v.bit(100));
        assert_eq!(v.count_ones(), 3);
    }
}
