//! Deterministic, seeded fault injection for resilience testing.
//!
//! The characterization flow needs a way to *prove* its degradation paths
//! work: retry ladders, graceful per-cell skipping, checkpoint quarantine.
//! This module provides the cross-stack injection harness: a [`FaultPlan`]
//! names which fault kinds to inject (and how often), and the solver entry
//! points in this crate — plus the cache writers in `cryo-cells` — consult
//! the active plan at well-defined sites.
//!
//! Design constraints:
//!
//! - **Deterministic.** Draws come from a seeded splitmix64 stream, so a
//!   failing test replays bit-for-bit from its seed. Entering a context
//!   label (see [`set_context`]) re-derives the stream from
//!   `seed ⊕ fnv(label)`, so under the parallel characterization scheduler
//!   a cell's fault schedule is a function of *the cell*, never of which
//!   worker thread picked it up or in what order.
//! - **Scoped.** A plan can be restricted to a context label (the cell
//!   currently being characterized) and to a maximum number of injections,
//!   so tests can kill exactly one cell's solves and assert everything else
//!   survives. The injection budget is tracked *per context* for the same
//!   reason the stream is: a budget shared across cells would be consumed
//!   in thread-interleaving order and break jobs-count invariance.
//! - **Thread-local.** `cargo test` runs tests on separate threads; each
//!   installs and clears its own injector without interference. Parallel
//!   characterization workers each install a clone of the parent plan
//!   (see [`current_plan`]) rather than sharing mutable injector state.
//! - **Zero-cost when idle.** All sites early-out on an inactive injector.
//!
//! The simulator also keeps per-thread counters of DC and transient solves
//! (always on, independent of any plan) so checkpoint/resume tests can
//! assert that finished cells are *not* re-simulated. Worker threads drain
//! their counters with [`take_sim_counts`] and the scheduler folds them
//! back into the calling thread with [`add_sim_counts`], so from the
//! caller's perspective [`sim_counts`] covers all work it fanned out.

use std::cell::RefCell;

use crate::SpiceError;

/// FNV-1a over a label; mixed into the seed so each context (cell) gets an
/// independent deterministic draw stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Which injection site is being consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Entry of a DC operating-point solve.
    DcSolve,
    /// Entry of a transient analysis.
    TranSolve,
    /// A cache/checkpoint file write (consulted by `cryo-cells`).
    CacheWrite,
}

/// A declarative fault-injection plan.
///
/// Each field is an injection probability in `[0, 1]` evaluated per site
/// visit; `1.0` means "always fire" (until `max_injections` runs out).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic draw stream.
    pub seed: u64,
    /// Probability a DC solve reports [`SpiceError::NoConvergence`].
    pub dc_no_convergence: f64,
    /// Probability a transient reports [`SpiceError::NoConvergence`].
    pub tran_no_convergence: f64,
    /// Probability a solve reports [`SpiceError::SingularMatrix`].
    pub singular_matrix: f64,
    /// Probability a solve sees a NaN device evaluation (poisons the MNA
    /// assembly; the solver must detect it and report
    /// [`SpiceError::NonFinite`]).
    pub nan_device: f64,
    /// Probability a cache/checkpoint write is truncated mid-file
    /// (simulates a crash during a non-atomic write).
    pub cache_corruption: f64,
    /// Probability a Liberty table ingest is truncated/corrupted
    /// (consulted by `cryo-liberty`'s parser; simulates a damaged `.lib`).
    pub liberty_ingest: f64,
    /// Probability an STA timing-arc lookup fails (consulted by
    /// `cryo-sta`; simulates a missing/garbled arc in the library).
    pub sta_lookup: f64,
    /// Probability a per-instance power contribution is poisoned with NaN
    /// (consulted by `cryo-power`'s aggregation loop).
    pub power_aggregation: f64,
    /// Probability a characterized cell has one delay-table entry
    /// bit-flipped (sign flip: a negative but finite delay — plausible
    /// enough to survive construction, wrong enough to kill a chip).
    /// Spec key: `corrupt=table[:p]`.
    pub corrupt_table: f64,
    /// Probability a cold-corner cell's delay tables are silently scaled
    /// (uniformly, preserving shape and monotonicity — only the
    /// cross-corner audit can see it). Spec key: `corrupt=delay[:p]`.
    pub corrupt_delay: f64,
    /// Probability the cryogenic Vth-shift coefficient is sign-flipped at
    /// a model-card use site, producing a card whose threshold *drops*
    /// when cold. Spec key: `corrupt=vth[:p]`.
    pub corrupt_vth: f64,
    /// When true, `corrupt=` faults persist across re-characterization
    /// generations (quarantine repair cannot clean them, so a gated run
    /// must fail structurally). Default: corruption is transient and a
    /// generation-1 repair runs clean. Spec key: `corrupt=sticky`.
    pub corrupt_sticky: bool,
    /// Restrict injection to contexts whose label contains this substring
    /// (e.g. a cell name). `None` injects everywhere.
    pub scope: Option<String>,
    /// Stop injecting after this many faults have fired. `None` is
    /// unlimited.
    pub max_injections: Option<u32>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            dc_no_convergence: 0.0,
            tran_no_convergence: 0.0,
            singular_matrix: 0.0,
            nan_device: 0.0,
            cache_corruption: 0.0,
            liberty_ingest: 0.0,
            sta_lookup: 0.0,
            power_aggregation: 0.0,
            corrupt_table: 0.0,
            corrupt_delay: 0.0,
            corrupt_vth: 0.0,
            corrupt_sticky: false,
            scope: None,
            max_injections: None,
        }
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Parse a plan from the `CRYO_FAULTS` environment variable, the hook
    /// the experiment binaries use. Format: comma-separated `key=value`
    /// pairs, e.g.
    ///
    /// ```text
    /// CRYO_FAULTS="seed=42,dc=0.05,tran=0.02,singular=0.01,nan=0.01,cache=0.1,scope=NAND2x1,max=3"
    /// ```
    ///
    /// Returns `None` when the variable is unset or empty. Unknown keys and
    /// malformed values are ignored (the harness must never abort the flow
    /// it exists to protect). Supervised entry points should prefer
    /// [`FaultPlan::from_env_checked`], which surfaces malformed specs as a
    /// structured config error *before* any stage runs.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("CRYO_FAULTS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        let mut plan = Self::default();
        for pair in raw.split(',') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            let _ = Self::apply_pair(&mut plan, k.trim(), v.trim());
        }
        Some(plan)
    }

    /// Strictly parse a `CRYO_FAULTS`-format spec string.
    ///
    /// Unlike [`FaultPlan::from_env`], every pair must be well-formed:
    /// unknown keys, missing `=`, unparsable numbers, and probabilities
    /// outside `[0, 1]` are all reported with the offending pair quoted.
    /// An empty/whitespace spec parses to `Ok(None)`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed pair.
    pub fn parse_spec(raw: &str) -> std::result::Result<Option<Self>, String> {
        if raw.trim().is_empty() {
            return Ok(None);
        }
        let mut plan = Self::default();
        for pair in raw.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((k, v)) = pair.split_once('=') else {
                return Err(format!("`{pair}` is not a key=value pair"));
            };
            Self::apply_pair(&mut plan, k.trim(), v.trim())?;
        }
        Ok(Some(plan))
    }

    /// Strictly parse the `CRYO_FAULTS` environment variable via
    /// [`FaultPlan::parse_spec`]. `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// A description of the first malformed pair, suitable for wrapping in
    /// a flow-level config error.
    pub fn from_env_checked() -> std::result::Result<Option<Self>, String> {
        match std::env::var("CRYO_FAULTS") {
            Ok(raw) => Self::parse_spec(&raw),
            Err(_) => Ok(None),
        }
    }

    /// Apply one `key=value` pair, strictly. Shared by the tolerant and
    /// checked parsers (the tolerant one discards the error).
    fn apply_pair(plan: &mut Self, k: &str, v: &str) -> std::result::Result<(), String> {
        fn prob(k: &str, v: &str) -> std::result::Result<f64, String> {
            let p: f64 = v
                .parse()
                .map_err(|_| format!("`{k}={v}`: not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("`{k}={v}`: probability outside [0, 1]"));
            }
            Ok(p)
        }
        match k {
            "seed" => {
                plan.seed = v.parse().map_err(|_| format!("`seed={v}`: not a u64"))?;
            }
            "dc" => plan.dc_no_convergence = prob(k, v)?,
            "tran" => plan.tran_no_convergence = prob(k, v)?,
            "singular" => plan.singular_matrix = prob(k, v)?,
            "nan" => plan.nan_device = prob(k, v)?,
            "cache" => plan.cache_corruption = prob(k, v)?,
            "liberty" => plan.liberty_ingest = prob(k, v)?,
            "sta" => plan.sta_lookup = prob(k, v)?,
            "power" => plan.power_aggregation = prob(k, v)?,
            "corrupt" => {
                // `corrupt=<kind>[:<p>]` with kinds table/delay/vth, plus
                // the bare flag `corrupt=sticky`. Unlike the crash faults,
                // these produce plausible-but-wrong *values*.
                let (kind, p) = match v.split_once(':') {
                    Some((kind, p)) => (kind, prob(k, p)?),
                    None => (v, 1.0),
                };
                match kind {
                    "table" => plan.corrupt_table = p,
                    "delay" => plan.corrupt_delay = p,
                    "vth" => plan.corrupt_vth = p,
                    "sticky" => plan.corrupt_sticky = true,
                    other => {
                        return Err(format!(
                            "`corrupt={other}`: unknown kind (expected table/delay/vth/sticky)"
                        ))
                    }
                }
            }
            "scope" => plan.scope = Some(v.to_string()),
            "max" => {
                plan.max_injections =
                    Some(v.parse().map_err(|_| format!("`max={v}`: not a u32"))?);
            }
            _ => return Err(format!("unknown key `{k}`")),
        }
        Ok(())
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.dc_no_convergence > 0.0
            || self.tran_no_convergence > 0.0
            || self.singular_matrix > 0.0
            || self.nan_device > 0.0
            || self.cache_corruption > 0.0
            || self.liberty_ingest > 0.0
            || self.sta_lookup > 0.0
            || self.power_aggregation > 0.0
            || self.corrupt_table > 0.0
            || self.corrupt_delay > 0.0
            || self.corrupt_vth > 0.0
    }
}

/// What an armed solver site should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SolveFault {
    /// Fail the solve with `NoConvergence`.
    NoConvergence,
    /// Fail the solve with `SingularMatrix`.
    Singular,
    /// Poison device evaluations with NaN for the duration of the solve.
    NanDevice,
}

struct Injector {
    plan: FaultPlan,
    rng: u64,
    /// Total faults fired since install (reported by [`injection_count`]).
    fired: u32,
    /// Faults fired in the current context; `max_injections` bounds this,
    /// so the budget — like the draw stream — is a function of the context
    /// label and independent of scheduling order.
    context_fired: u32,
    context: String,
}

impl Injector {
    /// splitmix64: deterministic, stateless-friendly, good enough for
    /// Bernoulli draws.
    fn next_unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn in_scope(&self) -> bool {
        match &self.plan.scope {
            Some(s) => self.context.contains(s.as_str()),
            None => true,
        }
    }

    fn budget_left(&self) -> bool {
        match self.plan.max_injections {
            Some(m) => self.context_fired < m,
            None => true,
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 || !self.in_scope() || !self.budget_left() {
            return false;
        }
        if self.next_unit() < p {
            self.fired += 1;
            self.context_fired += 1;
            true
        } else {
            false
        }
    }
}

thread_local! {
    static INJECTOR: RefCell<Option<Injector>> = const { RefCell::new(None) };
    static NAN_POISON: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static SIM_COUNTS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// Install `plan` as this thread's active injector (replacing any previous
/// one). Prefer [`install_guard`] in library code so the injector cannot
/// leak past a panic or early return.
pub fn install(plan: FaultPlan) {
    INJECTOR.with(|i| {
        *i.borrow_mut() = Some(Injector {
            rng: plan.seed ^ 0x6a09_e667_f3bc_c908,
            plan,
            fired: 0,
            context_fired: 0,
            context: String::new(),
        });
    });
}

/// A clone of the plan installed on this thread, if any. The parallel
/// characterization scheduler captures this before spawning workers so each
/// worker can install its own injector ([`install_guard`]) and reproduce
/// the exact per-cell fault schedule the serial path would.
#[must_use]
pub fn current_plan() -> Option<FaultPlan> {
    INJECTOR.with(|i| i.borrow().as_ref().map(|inj| inj.plan.clone()))
}

/// Remove the active injector (and any pending NaN poison).
pub fn clear() {
    INJECTOR.with(|i| *i.borrow_mut() = None);
    NAN_POISON.with(|p| p.set(false));
}

/// Whether an injector is installed on this thread.
#[must_use]
pub fn is_active() -> bool {
    INJECTOR.with(|i| i.borrow().is_some())
}

/// Number of faults the active injector has fired so far (0 when idle).
#[must_use]
pub fn injection_count() -> u32 {
    INJECTOR.with(|i| i.borrow().as_ref().map_or(0, |inj| inj.fired))
}

/// Label the current injection context (typically the cell under
/// characterization) so scoped plans can target it.
///
/// Entering a context re-derives the draw stream from
/// `seed ⊕ fnv(label)` and resets the per-context injection budget. This
/// is the determinism contract of the parallel characterization scheduler:
/// a cell's fault schedule depends only on (plan, cell name), never on
/// which thread runs the cell or how work was interleaved. Re-entering the
/// same label replays the same stream. The empty label restores the
/// install-time stream, so code that never sets a context keeps one
/// continuous stream per install (the pre-parallel behavior).
pub fn set_context(label: &str) {
    INJECTOR.with(|i| {
        if let Some(inj) = i.borrow_mut().as_mut() {
            if inj.context != label {
                inj.context.clear();
                inj.context.push_str(label);
                inj.context_fired = 0;
                inj.rng = if label.is_empty() {
                    inj.plan.seed ^ 0x6a09_e667_f3bc_c908
                } else {
                    inj.plan.seed ^ fnv1a(label.as_bytes())
                };
            }
        }
    });
}

/// RAII guard returned by [`install_guard`]; clears the injector on drop.
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Install `plan` and return a guard that uninstalls it when dropped.
#[must_use]
pub fn install_guard(plan: FaultPlan) -> FaultGuard {
    install(plan);
    FaultGuard(())
}

/// Consult the injector at a solver entry site.
pub(crate) fn begin_solve(site: FaultSite) -> Option<SolveFault> {
    INJECTOR.with(|i| {
        let mut borrow = i.borrow_mut();
        let inj = borrow.as_mut()?;
        let conv_p = match site {
            FaultSite::DcSolve => inj.plan.dc_no_convergence,
            FaultSite::TranSolve => inj.plan.tran_no_convergence,
            FaultSite::CacheWrite => 0.0,
        };
        if inj.roll(conv_p) {
            return Some(SolveFault::NoConvergence);
        }
        let singular_p = inj.plan.singular_matrix;
        if inj.roll(singular_p) {
            return Some(SolveFault::Singular);
        }
        let nan_p = inj.plan.nan_device;
        if inj.roll(nan_p) {
            return Some(SolveFault::NanDevice);
        }
        None
    })
}

/// Roll the active injector against a plan-field selector; `false` when
/// idle. Shared body of the public cross-crate consult sites.
fn roll_site(select: impl Fn(&FaultPlan) -> f64) -> bool {
    INJECTOR.with(|i| {
        let mut borrow = i.borrow_mut();
        match borrow.as_mut() {
            Some(inj) => {
                let p = select(&inj.plan);
                inj.roll(p)
            }
            None => false,
        }
    })
}

/// Whether the active plan wants this cache/checkpoint write truncated.
/// Consulted by `cryo-cells` before committing a file.
#[must_use]
pub fn should_corrupt_cache_write() -> bool {
    roll_site(|p| p.cache_corruption)
}

/// Whether the active plan wants this Liberty table ingest corrupted.
/// Consulted by `cryo-liberty` while parsing lookup tables; a hit makes
/// the parser see a truncated table and report a structured
/// `MalformedTable` diagnostic.
#[must_use]
pub fn should_corrupt_liberty_ingest() -> bool {
    roll_site(|p| p.liberty_ingest)
}

/// Whether the active plan wants this STA timing-arc lookup to fail.
/// Consulted by `cryo-sta` per combinational arc; a hit makes the arc
/// unusable, exercising the engine's missing-arc degradation policy.
#[must_use]
pub fn should_fault_sta_lookup() -> bool {
    roll_site(|p| p.sta_lookup)
}

/// Whether the active plan wants this per-instance power contribution
/// poisoned to NaN. Consulted by `cryo-power`'s aggregation loop; the
/// aggregator must detect the non-finite total and fail structurally.
#[must_use]
pub fn should_fault_power_accum() -> bool {
    roll_site(|p| p.power_aggregation)
}

// ----------------------------------------------------------------------
// Silent-corruption sites (`corrupt=` family)
// ----------------------------------------------------------------------

/// Which value-corruption family a site consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Bit-flip one delay-table entry (sign flip).
    Table,
    /// Uniformly scale a cold-corner cell's delays.
    Delay,
    /// Sign-flip the cryogenic Vth-shift coefficient.
    Vth,
}

impl CorruptKind {
    fn label(self) -> &'static str {
        match self {
            CorruptKind::Table => "table",
            CorruptKind::Delay => "delay",
            CorruptKind::Vth => "vth",
        }
    }
}

/// One splitmix64 output for an arbitrary state word, mapped to `[0, 1)`.
fn splitmix64_unit(state: u64) -> f64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether the active plan wants this entity's values silently corrupted.
///
/// `salt` identifies the entity (e.g. `NAND2x1@10`), and `generation`
/// counts re-characterization passes: generation > 0 runs clean unless
/// the plan is `corrupt=sticky`, which is how the quarantine-repair round
/// trip is provable — transient corruption repairs, sticky corruption
/// must surface as a structured audit failure.
///
/// Unlike the crash-fault sites, the draw comes from a *stateless* stream
/// keyed on `seed ⊕ fnv("corrupt:<kind>:<salt>")` and never advances the
/// injector's sequential rng: corrupting a value must not perturb the
/// fault schedule of every site that follows, or the byte-identity
/// contracts (jobs 1 vs N, serial vs parallel) would silently break.
/// Scope and the per-context injection budget still apply.
#[must_use]
pub fn should_corrupt(kind: CorruptKind, salt: &str, generation: u32) -> bool {
    INJECTOR.with(|i| {
        let mut borrow = i.borrow_mut();
        let Some(inj) = borrow.as_mut() else {
            return false;
        };
        let p = match kind {
            CorruptKind::Table => inj.plan.corrupt_table,
            CorruptKind::Delay => inj.plan.corrupt_delay,
            CorruptKind::Vth => inj.plan.corrupt_vth,
        };
        if p <= 0.0 || !inj.in_scope() || !inj.budget_left() {
            return false;
        }
        if generation > 0 && !inj.plan.corrupt_sticky {
            return false;
        }
        let key = format!("corrupt:{}:{salt}", kind.label());
        if splitmix64_unit(inj.plan.seed ^ fnv1a(key.as_bytes())) < p {
            inj.fired += 1;
            inj.context_fired += 1;
            true
        } else {
            false
        }
    })
}

/// Deterministically pick an index in `[0, n)` for a corruption site —
/// which table entry to flip, which arc to scale. Stateless (same salted
/// stream as [`should_corrupt`]); returns 0 when no injector is active or
/// `n` is 0/1.
#[must_use]
pub fn corrupt_pick(salt: &str, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    INJECTOR.with(|i| {
        let borrow = i.borrow();
        let Some(inj) = borrow.as_ref() else {
            return 0;
        };
        let key = format!("pick:{salt}");
        let u = splitmix64_unit(inj.plan.seed ^ fnv1a(key.as_bytes()));
        ((u * n as f64) as usize).min(n - 1)
    })
}

/// Arm or disarm NaN poisoning of device evaluations for the current solve.
pub(crate) fn set_nan_poison(on: bool) {
    NAN_POISON.with(|p| p.set(on));
}

/// Whether device evaluations should currently be poisoned with NaN.
pub(crate) fn nan_poisoned() -> bool {
    NAN_POISON.with(std::cell::Cell::get)
}

/// Guard that disarms NaN poisoning when dropped (survives `?` returns).
pub(crate) struct NanPoisonGuard(());

impl NanPoisonGuard {
    pub(crate) fn armed() -> Self {
        set_nan_poison(true);
        Self(())
    }
}

impl Drop for NanPoisonGuard {
    fn drop(&mut self) {
        set_nan_poison(false);
    }
}

/// Synthesize the injected error for a solver site.
pub(crate) fn injected_error(fault: SolveFault, analysis: &'static str) -> SpiceError {
    match fault {
        SolveFault::NoConvergence => SpiceError::NoConvergence {
            analysis,
            time: 0.0,
            residual: f64::INFINITY,
        },
        SolveFault::Singular => SpiceError::SingularMatrix {
            column: 0,
            node: None,
        },
        // NanDevice is not an immediate error — callers arm the poison and
        // let the solver detect the non-finite evaluation — but a fallback
        // mapping keeps the match total.
        SolveFault::NanDevice => SpiceError::NonFinite { analysis, time: 0.0 },
    }
}

// ----------------------------------------------------------------------
// Simulation counters (always on)
// ----------------------------------------------------------------------

/// Per-thread simulator invocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounts {
    /// DC operating-point solves started (transient analyses start one for
    /// their initial condition, so a transient bumps both counters).
    pub dc: u64,
    /// Transient analyses started.
    pub tran: u64,
}

/// Read this thread's simulator invocation counters.
#[must_use]
pub fn sim_counts() -> SimCounts {
    let (dc, tran) = SIM_COUNTS.with(std::cell::Cell::get);
    SimCounts { dc, tran }
}

/// Reset this thread's simulator invocation counters to zero.
pub fn reset_sim_counts() {
    SIM_COUNTS.with(|c| c.set((0, 0)));
}

/// Read *and zero* this thread's simulator invocation counters. Worker
/// threads call this when they finish so the scheduler can fold their work
/// into the spawning thread via [`add_sim_counts`].
#[must_use]
pub fn take_sim_counts() -> SimCounts {
    let counts = sim_counts();
    reset_sim_counts();
    counts
}

/// Add externally-accumulated counts onto this thread's counters. Paired
/// with [`take_sim_counts`]: after a parallel fan-out, the calling thread's
/// [`sim_counts`] reflects every solve its workers ran, while unrelated
/// threads (e.g. other `#[test]`s) stay untouched.
pub fn add_sim_counts(extra: SimCounts) {
    SIM_COUNTS.with(|c| {
        let (dc, tran) = c.get();
        c.set((dc + extra.dc, tran + extra.tran));
    });
}

pub(crate) fn count_dc_solve() {
    SIM_COUNTS.with(|c| {
        let (dc, tran) = c.get();
        c.set((dc + 1, tran));
    });
}

pub(crate) fn count_tran_solve() {
    SIM_COUNTS.with(|c| {
        let (dc, tran) = c.get();
        c.set((dc, tran + 1));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_injector_never_fires() {
        clear();
        assert!(!is_active());
        assert_eq!(begin_solve(FaultSite::DcSolve), None);
        assert!(!should_corrupt_cache_write());
    }

    #[test]
    fn scoped_plan_only_fires_in_scope() {
        let plan = FaultPlan {
            dc_no_convergence: 1.0,
            scope: Some("NAND2x1".into()),
            ..FaultPlan::new(7)
        };
        let _g = install_guard(plan);
        set_context("INVx1");
        assert_eq!(begin_solve(FaultSite::DcSolve), None);
        set_context("NAND2x1");
        assert_eq!(
            begin_solve(FaultSite::DcSolve),
            Some(SolveFault::NoConvergence)
        );
    }

    #[test]
    fn max_injections_bounds_the_damage() {
        let plan = FaultPlan {
            tran_no_convergence: 1.0,
            max_injections: Some(2),
            ..FaultPlan::new(3)
        };
        let _g = install_guard(plan);
        assert!(begin_solve(FaultSite::TranSolve).is_some());
        assert!(begin_solve(FaultSite::TranSolve).is_some());
        assert_eq!(begin_solve(FaultSite::TranSolve), None, "budget exhausted");
        assert_eq!(injection_count(), 2);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan {
            dc_no_convergence: 0.5,
            ..FaultPlan::new(99)
        };
        let sample = |p: FaultPlan| -> Vec<bool> {
            let _g = install_guard(p);
            (0..32)
                .map(|_| begin_solve(FaultSite::DcSolve).is_some())
                .collect()
        };
        let a = sample(plan.clone());
        let b = sample(plan);
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn guard_clears_on_drop() {
        {
            let _g = install_guard(FaultPlan::new(1));
            assert!(is_active());
        }
        assert!(!is_active());
    }

    #[test]
    fn context_stream_is_a_function_of_the_label_not_of_history() {
        let plan = FaultPlan {
            dc_no_convergence: 0.5,
            ..FaultPlan::new(123)
        };
        let draws = |p: &FaultPlan, labels: &[&str]| -> Vec<Vec<bool>> {
            let _g = install_guard(p.clone());
            labels
                .iter()
                .map(|l| {
                    set_context(l);
                    (0..16)
                        .map(|_| begin_solve(FaultSite::DcSolve).is_some())
                        .collect()
                })
                .collect()
        };
        // Visit order must not matter: each cell replays its own stream.
        let forward = draws(&plan, &["INVx1", "NAND2x1", "DFFx1"]);
        let reverse = draws(&plan, &["DFFx1", "NAND2x1", "INVx1"]);
        assert_eq!(forward[0], reverse[2], "INVx1 stream is order-independent");
        assert_eq!(forward[1], reverse[1], "NAND2x1 stream is order-independent");
        assert_eq!(forward[2], reverse[0], "DFFx1 stream is order-independent");
        assert_ne!(forward[0], forward[1], "distinct cells draw distinct streams");
    }

    #[test]
    fn injection_budget_is_per_context() {
        let plan = FaultPlan {
            dc_no_convergence: 1.0,
            max_injections: Some(1),
            ..FaultPlan::new(9)
        };
        let _g = install_guard(plan);
        set_context("INVx1");
        assert!(begin_solve(FaultSite::DcSolve).is_some());
        assert_eq!(begin_solve(FaultSite::DcSolve), None, "INVx1 budget spent");
        set_context("INVx2");
        assert!(
            begin_solve(FaultSite::DcSolve).is_some(),
            "a fresh context gets a fresh budget, independent of visit order"
        );
        assert_eq!(injection_count(), 2, "total count still accumulates");
    }

    #[test]
    fn current_plan_round_trips_for_worker_inheritance() {
        assert_eq!(current_plan(), None);
        let plan = FaultPlan {
            tran_no_convergence: 0.25,
            scope: Some("XORx1".into()),
            ..FaultPlan::new(77)
        };
        let _g = install_guard(plan.clone());
        assert_eq!(current_plan(), Some(plan));
    }

    #[test]
    fn parse_spec_accepts_the_full_documented_grammar() {
        let plan = FaultPlan::parse_spec(
            "seed=42,dc=0.05,tran=0.02,singular=0.01,nan=0.01,cache=0.1,\
             liberty=0.2,sta=0.3,power=0.4,scope=NAND2x1,max=3",
        )
        .unwrap()
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert!((plan.liberty_ingest - 0.2).abs() < 1e-12);
        assert!((plan.sta_lookup - 0.3).abs() < 1e-12);
        assert!((plan.power_aggregation - 0.4).abs() < 1e-12);
        assert_eq!(plan.scope.as_deref(), Some("NAND2x1"));
        assert_eq!(plan.max_injections, Some(3));
        assert!(plan.is_armed());
        assert_eq!(FaultPlan::parse_spec("  ").unwrap(), None);
    }

    #[test]
    fn parse_spec_rejects_malformed_pairs() {
        for (spec, needle) in [
            ("dc=banana", "not a number"),
            ("dc=1.5", "outside [0, 1]"),
            ("seed=-1", "not a u64"),
            ("max=lots", "not a u32"),
            ("bogus=1", "unknown key"),
            ("justtext", "not a key=value pair"),
        ] {
            let err = FaultPlan::parse_spec(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "spec `{spec}` should report `{needle}`, got `{err}`"
            );
        }
    }

    #[test]
    fn upper_layer_sites_fire_and_honor_scope() {
        let plan = FaultPlan {
            liberty_ingest: 1.0,
            sta_lookup: 1.0,
            power_aggregation: 1.0,
            scope: Some("stage:sta".into()),
            ..FaultPlan::new(5)
        };
        let _g = install_guard(plan);
        set_context("stage:power");
        assert!(!should_fault_sta_lookup(), "out of scope");
        set_context("stage:sta");
        assert!(should_fault_sta_lookup());
        assert!(should_corrupt_liberty_ingest());
        assert!(should_fault_power_accum());
        assert_eq!(injection_count(), 3);
    }

    #[test]
    fn parse_spec_accepts_the_corrupt_family() {
        let plan = FaultPlan::parse_spec("seed=7,corrupt=table,corrupt=delay:0.25,corrupt=vth:0.5")
            .unwrap()
            .unwrap();
        assert!((plan.corrupt_table - 1.0).abs() < 1e-12, "bare kind means p=1");
        assert!((plan.corrupt_delay - 0.25).abs() < 1e-12);
        assert!((plan.corrupt_vth - 0.5).abs() < 1e-12);
        assert!(!plan.corrupt_sticky);
        assert!(plan.is_armed());
        let sticky = FaultPlan::parse_spec("corrupt=table,corrupt=sticky")
            .unwrap()
            .unwrap();
        assert!(sticky.corrupt_sticky);
        let err = FaultPlan::parse_spec("corrupt=everything").unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        let err = FaultPlan::parse_spec("corrupt=table:2.0").unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn corrupt_draws_are_stateless_and_salted() {
        let plan = FaultPlan {
            corrupt_table: 0.5,
            dc_no_convergence: 0.5,
            ..FaultPlan::new(11)
        };
        // The crash-fault stream must be identical whether or not corrupt
        // sites were consulted in between: corruption is a parallel salted
        // stream, not part of the sequential draw order.
        let crash_draws = |consult_corrupt: bool| -> Vec<bool> {
            let _g = install_guard(plan.clone());
            (0..16)
                .map(|i| {
                    if consult_corrupt {
                        let _ = should_corrupt(CorruptKind::Table, &format!("CELL{i}@10"), 0);
                    }
                    begin_solve(FaultSite::DcSolve).is_some()
                })
                .collect()
        };
        assert_eq!(crash_draws(false), crash_draws(true));
        // Per-salt decisions are deterministic and not all equal.
        let decide = |salt: &str| {
            let _g = install_guard(plan.clone());
            should_corrupt(CorruptKind::Table, salt, 0)
        };
        let picks: Vec<bool> = (0..32).map(|i| decide(&format!("CELL{i}@10"))).collect();
        assert_eq!(
            picks,
            (0..32)
                .map(|i| decide(&format!("CELL{i}@10")))
                .collect::<Vec<_>>()
        );
        assert!(picks.iter().any(|&x| x) && picks.iter().any(|&x| !x));
    }

    #[test]
    fn corruption_is_transient_unless_sticky() {
        let mut plan = FaultPlan {
            corrupt_vth: 1.0,
            ..FaultPlan::new(2)
        };
        {
            let _g = install_guard(plan.clone());
            assert!(should_corrupt(CorruptKind::Vth, "nfet", 0));
            assert!(
                !should_corrupt(CorruptKind::Vth, "nfet", 1),
                "generation 1 (repair) runs clean by default"
            );
        }
        plan.corrupt_sticky = true;
        let _g = install_guard(plan);
        assert!(should_corrupt(CorruptKind::Vth, "nfet", 0));
        assert!(
            should_corrupt(CorruptKind::Vth, "nfet", 1),
            "sticky corruption survives repair"
        );
    }

    #[test]
    fn corrupt_sites_honor_scope_and_budget() {
        let plan = FaultPlan {
            corrupt_table: 1.0,
            scope: Some("NAND".into()),
            max_injections: Some(1),
            ..FaultPlan::new(4)
        };
        let _g = install_guard(plan);
        set_context("INVx1");
        assert!(!should_corrupt(CorruptKind::Table, "INVx1@300", 0));
        set_context("NAND2x1");
        assert!(should_corrupt(CorruptKind::Table, "NAND2x1@300", 0));
        assert!(
            !should_corrupt(CorruptKind::Table, "NAND2x1@300", 0),
            "per-context budget applies to corrupt sites too"
        );
    }

    #[test]
    fn corrupt_pick_is_deterministic_and_in_range() {
        assert_eq!(corrupt_pick("x", 9), 0, "idle injector picks 0");
        let _g = install_guard(FaultPlan::new(21));
        let a = corrupt_pick("NAND2x1@10/arc0", 49);
        let b = corrupt_pick("NAND2x1@10/arc0", 49);
        assert_eq!(a, b);
        assert!(a < 49);
        assert_eq!(corrupt_pick("anything", 1), 0);
        let distinct: std::collections::HashSet<usize> =
            (0..16).map(|i| corrupt_pick(&format!("s{i}"), 49)).collect();
        assert!(distinct.len() > 4, "salts spread across the range");
    }

    #[test]
    fn take_and_add_sim_counts_move_work_between_threads() {
        reset_sim_counts();
        count_dc_solve();
        count_tran_solve();
        count_tran_solve();
        let taken = take_sim_counts();
        assert_eq!((taken.dc, taken.tran), (1, 2));
        assert_eq!(sim_counts(), SimCounts::default(), "take drains");
        add_sim_counts(taken);
        add_sim_counts(SimCounts { dc: 3, tran: 0 });
        assert_eq!((sim_counts().dc, sim_counts().tran), (4, 2));
        reset_sim_counts();
    }
}
