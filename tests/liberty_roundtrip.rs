//! Characterized libraries survive the Liberty text format and the JSON
//! cache losslessly enough for signoff: every timing/power lookup agrees.

use cryo_soc::cells::{cache, topology, CharConfig, Characterizer};
use cryo_soc::device::{ModelCard, Polarity};
use cryo_soc::liberty::format::{parse_library, write_library};

fn mini_library() -> cryo_soc::liberty::Library {
    let engine = Characterizer::new(
        &ModelCard::nominal(Polarity::N),
        &ModelCard::nominal(Polarity::P),
        CharConfig::fast(300.0),
    );
    let cells = vec![
        topology::inverter(1),
        topology::nand(2, 2),
        topology::xor2(1),
        topology::dff(1),
    ];
    engine.characterize_library("rt300", &cells).unwrap()
}

#[test]
fn liberty_text_round_trip_preserves_signoff_lookups() {
    let lib = mini_library();
    let text = write_library(&lib);
    let back = parse_library(&text).expect("parses");
    assert_eq!(back.len(), lib.len());
    for cell in lib.cells() {
        let rt = back.cell(&cell.name).expect("cell survives");
        assert_eq!(rt.arcs.len(), cell.arcs.len(), "{}", cell.name);
        assert_eq!(rt.pins.len(), cell.pins.len());
        assert_eq!(rt.is_sequential(), cell.is_sequential());
        for a in &cell.arcs {
            // The writer groups arcs under pins, so order may differ; match
            // by (related_pin, pin, kind).
            let b = rt
                .arcs
                .iter()
                .find(|b| b.related_pin == a.related_pin && b.pin == a.pin && b.kind == a.kind)
                .unwrap_or_else(|| panic!("{}: arc {}->{} lost", cell.name, a.related_pin, a.pin));
            for (slew, load) in [(5e-12, 1e-15), (20e-12, 5e-15), (80e-12, 12e-15)] {
                let da = a.worst_delay(slew, load);
                let db = b.worst_delay(slew, load);
                assert!(
                    (da - db).abs() < 1e-6 * da.abs().max(1e-15),
                    "{} {}->{}: {da:e} vs {db:e}",
                    cell.name,
                    a.related_pin,
                    a.pin
                );
            }
        }
        // Leakage and pin caps survive within text precision.
        assert!(
            (rt.average_leakage() - cell.average_leakage()).abs()
                < 1e-3 * cell.average_leakage().abs() + 1e-15
        );
        for pin in cell.input_pins() {
            let rp = rt.pin(&pin.name).unwrap();
            assert!((rp.capacitance - pin.capacitance).abs() < 1e-18);
        }
    }
}

#[test]
fn json_cache_round_trip_is_lossless() {
    let lib = mini_library();
    let dir = std::env::temp_dir().join("cryo_soc_cache_it");
    let _ = std::fs::remove_dir_all(&dir);
    cache::store(&dir, &lib.name, "itkey", &lib).unwrap();
    let back = cache::load(&dir, &lib.name, "itkey").expect("cache hit");
    assert_eq!(back.len(), lib.len());
    for cell in lib.cells() {
        let rt = back.cell(&cell.name).unwrap();
        assert_eq!(rt.name, cell.name);
        assert_eq!(rt.arcs.len(), cell.arcs.len());
        for ((sa, wa), (sb, wb)) in cell.leakage_states.iter().zip(&rt.leakage_states) {
            assert_eq!(sa, sb);
            assert!((wa - wb).abs() <= 1e-14 * wa.abs().max(1e-30));
        }
        // Table values survive to within a JSON float round trip (last ulp).
        for (a, b) in cell.arcs.iter().zip(&rt.arcs) {
            for (va, vb) in a.cell_rise.values().iter().zip(b.cell_rise.values()) {
                assert!(
                    (va - vb).abs() <= 1e-15 * va.abs().max(1e-30),
                    "{va:e} vs {vb:e}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn functions_survive_and_still_evaluate() {
    let lib = mini_library();
    let back = parse_library(&write_library(&lib)).unwrap();
    let xor = back.cell("XOR2x1").unwrap();
    let f = xor.pin("Y").unwrap().function.clone().expect("function");
    assert!(!f.eval(0b00));
    assert!(f.eval(0b01));
    assert!(f.eval(0b10));
    assert!(!f.eval(0b11));
}
