//! The cross-stack flow orchestrator.

use std::path::PathBuf;

use cryo_cells::{cache, topology, CharConfig, Characterizer, CharReport, CheckpointStore};
use cryo_device::{corner_die, ModelCard, Polarity, VariationModel};
use cryo_hdc::IqEncoder;
use cryo_liberty::{audit_library, AuditReport, Library};
use cryo_netlist::{build_soc, Design, SocConfig};
use cryo_power::{analyze_power, ActivityProfile, PowerConfig, PowerReport};
use cryo_qubit::{Calibration, HdcClassifier, QuantumDevice};
use cryo_riscv::asm::assemble;
use cryo_riscv::kernels::{dhrystone_source, hdc_source_rounds, knn_source_rounds, HDC_LEVELS};
use cryo_riscv::{PipelineConfig, PipelineModel, RunStats};
use cryo_spice::{fault, FaultPlan};
use cryo_sta::{analyze, MissingArcPolicy, StaConfig, TimingReport};

use crate::audit::AuditPolicy;
use crate::corners::{Corner, Process};
use crate::surrogate::SurrogatePolicy;
use crate::{CoreError, Result};

/// The paper's cooling budget at 10 K, watts (Sec. I-B).
pub const COOLING_BUDGET_10K: f64 = 0.100;
/// The decoherence time of the paper's IBM Falcon processor, seconds.
pub const DECOHERENCE_TIME: f64 = 110e-6;
/// Fig. 7's analysis clock, hertz.
pub const FIG7_CLOCK: f64 = 1e9;
/// The paper's kNN dynamic power at 300 K used as the activity-scale
/// calibration anchor (DESIGN.md §5), watts.
pub const KNN_DYNAMIC_300K: f64 = 63.5e-3;

/// Flow configuration: grids, SoC size, seeds.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Where characterized libraries are cached.
    pub cache_dir: PathBuf,
    /// Characterization grid for the 300 K corner.
    pub char_300k: CharConfig,
    /// Characterization grid for the 10 K corner.
    pub char_10k: CharConfig,
    /// SoC generator configuration.
    pub soc: SocConfig,
    /// Seed for the quantum device and HDC item memories.
    pub seed: u64,
    /// Minimum fraction of the standard-cell set that must land in a
    /// characterized library (directly, resumed, or derated) before the
    /// flow will sign off on the corner.
    pub coverage_floor: f64,
    /// Optional fault-injection plan installed around characterization;
    /// populated from the `CRYO_FAULTS` environment variable by the
    /// constructors so experiment binaries can inject without recompiling.
    pub fault_plan: Option<FaultPlan>,
    /// Worker threads for parallel library characterization; copied into
    /// both corners' `CharConfig::jobs`. `0` (the default) auto-detects —
    /// `CRYO_JOBS` wins, then available parallelism. `1` forces the serial
    /// path. Any value produces byte-identical libraries, so this does not
    /// participate in cache keys.
    pub jobs: usize,
    /// What the audit firewall does with physical-invariant findings at
    /// stage boundaries; populated from `CRYO_AUDIT` by the constructors
    /// (default [`AuditPolicy::Warn`]). Auditing never changes clean
    /// artifacts, so this does not participate in cache keys.
    pub audit_policy: AuditPolicy,
    /// Whether the cold corner is predicted by the learned surrogate
    /// instead of SPICE-characterized; populated from `CRYO_SURROGATE` by
    /// the constructors (default [`SurrogatePolicy::Off`]). Predicted
    /// libraries are never promoted to the SPICE cache and the surrogate's
    /// own stores are namespaced, so this does not participate in cache
    /// keys — SPICE artifacts are byte-identical with the surrogate on or
    /// off.
    pub surrogate_policy: SurrogatePolicy,
}

impl FlowConfig {
    /// The paper's configuration: full 7×7 grids, full SoC. Characterization
    /// takes minutes on first run and is disk-cached afterwards.
    #[must_use]
    pub fn full(cache_dir: impl Into<PathBuf>) -> Self {
        Self {
            cache_dir: cache_dir.into(),
            char_300k: CharConfig::full(300.0),
            char_10k: CharConfig::full(10.0),
            soc: SocConfig::default(),
            seed: 7,
            coverage_floor: 0.95,
            fault_plan: FaultPlan::from_env(),
            jobs: 0,
            audit_policy: AuditPolicy::from_env(),
            surrogate_policy: SurrogatePolicy::from_env(),
        }
    }

    /// Reduced grids and a scaled-down uncore for tests and quick runs.
    #[must_use]
    pub fn fast(cache_dir: impl Into<PathBuf>) -> Self {
        Self {
            cache_dir: cache_dir.into(),
            char_300k: CharConfig::fast(300.0),
            char_10k: CharConfig::fast(10.0),
            soc: SocConfig {
                uncore_tiles: 8,
                ..SocConfig::default()
            },
            seed: 7,
            coverage_floor: 0.95,
            fault_plan: FaultPlan::from_env(),
            jobs: 0,
            audit_policy: AuditPolicy::from_env(),
            surrogate_policy: SurrogatePolicy::from_env(),
        }
    }
}

/// A workload the SoC can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// kNN classification of `n` qubits.
    Knn {
        /// Qubit count.
        n: usize,
    },
    /// HDC classification of `n` qubits.
    Hdc {
        /// Qubit count.
        n: usize,
        /// Enable the `Zbb cpop` hardware-popcount ablation.
        cpop: bool,
    },
    /// The Dhrystone-like integer mix.
    Dhrystone,
}

/// Timed workload outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Which workload ran.
    pub workload: Workload,
    /// Pipeline statistics of the full (multi-round) run.
    pub stats: RunStats,
    /// Steady-state cycles per classification (marginal rounds); equals
    /// overall CPI-derived cost for Dhrystone.
    pub cycles_per_item: f64,
}

/// The flow orchestrator.
#[derive(Debug, Clone)]
pub struct CryoFlow {
    /// n-FinFET model card (calibrated).
    pub nfet: ModelCard,
    /// p-FinFET model card (calibrated).
    pub pfet: ModelCard,
    cfg: FlowConfig,
}

impl CryoFlow {
    /// Build the flow on the nominal (pre-calibrated) model cards.
    #[must_use]
    pub fn new(cfg: FlowConfig) -> Self {
        Self {
            nfet: ModelCard::nominal(Polarity::N),
            pfet: ModelCard::nominal(Polarity::P),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Libraries
    // ------------------------------------------------------------------

    /// Characterize (or load from cache) the library at `temp` kelvin.
    ///
    /// # Errors
    ///
    /// Characterization, cache I/O, or coverage-floor failures.
    pub fn library(&self, temp: f64) -> Result<Library> {
        self.library_with_report(temp).map(|(lib, _)| lib)
    }

    /// Characterize (or load from cache) the library at `temp` kelvin,
    /// returning the structured per-cell [`CharReport`] alongside it.
    ///
    /// This is the resilient path: each cell gets the retry ladder,
    /// exhausted cells are derated from drive siblings or skipped, finished
    /// cells are checkpointed under the cache directory so an interrupted
    /// run resumes without re-simulation, and the configured fault plan (if
    /// any) is installed for the duration of characterization.
    ///
    /// # Errors
    ///
    /// [`CoreError::Coverage`] when the achieved coverage falls below
    /// `FlowConfig::coverage_floor`; cache I/O failures otherwise.
    pub fn library_with_report(&self, temp: f64) -> Result<(Library, CharReport)> {
        let char_cfg = self.base_char_cfg(temp);
        let stage = if temp < 150.0 { "charlib10" } else { "charlib300" };
        // The fault guard goes up before the cards and the cache key are
        // derived: a `corrupt=vth` plan poisons the effective cards, which
        // changes the key, so a poisoned run can never read or write the
        // clean cache entry.
        let _fault_guard = self.cfg.fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.effective_cards();
        let name = format!("cryo5_tt_0p70v_{}k", temp as u32);
        self.characterize_corner(&name, stage, &char_cfg, &nfet, &pfet)
    }

    /// Characterize (or load from cache) one named corner from explicit
    /// model cards — the shared engine behind [`CryoFlow::library_with_report`]
    /// and the farm's [`CryoFlow::corner_library_with_report`]. Callers
    /// install the fault guard *before* deriving the cards so a poisoned
    /// card set changes the cache key here.
    fn characterize_corner(
        &self,
        name: &str,
        stage: &str,
        char_cfg: &CharConfig,
        nfet: &ModelCard,
        pfet: &ModelCard,
    ) -> Result<(Library, CharReport)> {
        let policy = self.cfg.audit_policy;
        let cells = topology::standard_cell_set();
        let tag = cache::cell_set_tag(&cells);
        let key = cache::cache_key(nfet, pfet, char_cfg, &tag)?;
        let audit_cfg = crate::audit::lib_audit_config(char_cfg);
        if let Some(lib) = cache::load(&self.cfg.cache_dir, name, &key) {
            // Cached corners are audited too — the cache is exactly where
            // silent at-rest corruption lives. A dirty cached corner under
            // Gate is discarded and rebuilt; under Warn it is used as-is.
            let cache_audit = if policy.is_on() {
                audit_library(stage, &lib, &audit_cfg)
            } else {
                AuditReport::default()
            };
            if cache_audit.is_clean() || policy != AuditPolicy::Gate {
                warn_findings(name, &cache_audit);
                let mut report = CharReport {
                    outcomes: lib
                        .cells()
                        .iter()
                        .map(|c| cryo_cells::CellOutcome {
                            name: c.name.clone(),
                            status: cryo_cells::CellStatus::Cached,
                            attempts: 0,
                            fault: None,
                            derated_from: None,
                        })
                        .collect(),
                    audit: cache_audit,
                    ..CharReport::default()
                };
                report.sort_by_name();
                return Ok((lib, report));
            }
            eprintln!(
                "warning: cached {name} failed its audit ({}); re-characterizing",
                cache_audit.summary()
            );
        }
        let checkpoint = CheckpointStore::open(&self.cfg.cache_dir, name, &key)?;
        let engine = Characterizer::new(nfet, pfet, char_cfg.clone());
        let (mut lib, mut report) =
            engine.characterize_library_robust(name, &cells, Some(&checkpoint));
        if policy.is_on() {
            let mut audit_rep = audit_library(stage, &lib, &audit_cfg);
            if !audit_rep.is_clean() && policy == AuditPolicy::Gate {
                // Quarantine only the offending cells and re-characterize
                // just those; every clean cell resumes from its checkpoint
                // with zero re-simulation. Generation 1 tells the fault
                // injector's transient corrupt= sites not to fire again.
                let offenders = audit_rep.offending_cells();
                for cell in &offenders {
                    checkpoint.remove(cell);
                }
                let repair = Characterizer::new(nfet, pfet, char_cfg.clone()).with_generation(1);
                let (lib2, report2) =
                    repair.characterize_library_robust(name, &cells, Some(&checkpoint));
                let recheck = audit_library(stage, &lib2, &audit_cfg);
                if !recheck.is_clean() {
                    return Err(CoreError::AuditFailed {
                        stage: stage.to_string(),
                        report: recheck,
                    });
                }
                lib = lib2;
                report = report2;
                audit_rep = AuditReport {
                    findings: Vec::new(),
                    repaired: offenders,
                };
            }
            warn_findings(name, &audit_rep);
            report.audit = audit_rep;
        }
        let expected: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        let coverage = lib.coverage(&expected);
        if coverage < self.cfg.coverage_floor {
            return Err(CoreError::Coverage {
                corner: name.to_string(),
                coverage,
                floor: self.cfg.coverage_floor,
                missing: lib.missing_cells(&expected),
            });
        }
        // Only fully covered, audit-clean corners are promoted to the
        // library-level cache; partial corners keep their checkpoints so
        // the missing cells are retried on the next run.
        if report.failed().is_empty()
            && report.derated().is_empty()
            && report.audit.findings.is_empty()
        {
            cache::store(&self.cfg.cache_dir, name, &key, &lib)?;
            checkpoint.clear();
        } else {
            eprintln!("warning: {name} degraded — {}", report.summary());
            for o in report.derated().into_iter().chain(report.failed()) {
                eprintln!(
                    "warning:   {} after {} attempts: {}{}",
                    o.name,
                    o.attempts,
                    o.fault.as_deref().unwrap_or("unknown fault"),
                    o.derated_from
                        .as_deref()
                        .map(|d| format!(" (derated from {d})"))
                        .unwrap_or_default()
                );
            }
        }
        Ok((lib, report))
    }

    /// The model cards after the fault injector's `corrupt=vth` site: a
    /// plausible-but-wrong sign flip on the cryogenic Vth shift parameter.
    /// Both the cache key and the characterizer are built from these, so a
    /// poisoned card can never pollute the clean cache; the device audit at
    /// the calibrate stage is what catches the flip (a negative `tvth`
    /// claims Vth *drops* when cooled — physically backwards for FinFETs).
    /// Only fires while a fault plan is installed, so clean flows see the
    /// calibrated cards unchanged.
    #[must_use]
    pub fn effective_cards(&self) -> (ModelCard, ModelCard) {
        let mut nfet = self.nfet.clone();
        let mut pfet = self.pfet.clone();
        if fault::should_corrupt(fault::CorruptKind::Vth, "modelcard", 0) {
            nfet.tvth = -nfet.tvth;
            pfet.tvth = -pfet.tvth;
        }
        (nfet, pfet)
    }

    /// The legacy two-point characterization grid for `temp`, with the
    /// flow-level `jobs` override applied.
    fn base_char_cfg(&self, temp: f64) -> CharConfig {
        let mut char_cfg = if temp < 150.0 {
            self.cfg.char_10k.clone()
        } else {
            self.cfg.char_300k.clone()
        };
        if self.cfg.jobs != 0 {
            char_cfg.jobs = self.cfg.jobs;
        }
        char_cfg
    }

    /// The characterization grid for a farm corner: the nearest legacy
    /// grid (the 10 K one below 150 K, the 300 K one above) re-pointed at
    /// the corner's exact temperature and supply. For the legacy corners
    /// themselves this is byte-identical to [`CryoFlow::base_char_cfg`],
    /// so the farm reuses every cache and checkpoint the two-point flow
    /// already built.
    #[must_use]
    pub fn corner_char_cfg(&self, corner: &Corner) -> CharConfig {
        let mut char_cfg = self.base_char_cfg(corner.temp);
        char_cfg.temp = corner.temp;
        char_cfg.vdd = corner.vdd;
        char_cfg
    }

    /// The pure (fault-free) model cards for a process corner: the
    /// calibrated nominal pair pushed to its deterministic ±3-sigma
    /// extreme by [`corner_die`] (`tt` returns the calibrated cards bit
    /// for bit). No fault site is consulted here — the farm manifest key
    /// is derived from these, so the key is identical with injection on
    /// or off.
    #[must_use]
    pub fn process_cards(&self, process: Process) -> (ModelCard, ModelCard) {
        let var = VariationModel::default();
        let sign = process.sigma_sign();
        (
            corner_die(&self.nfet, &var, sign),
            corner_die(&self.pfet, &var, sign),
        )
    }

    /// [`CryoFlow::effective_cards`] generalized to a farm corner: the
    /// process cards for `corner`, after the injector's corner-scoped
    /// `corrupt=vth` site. The site's salt *and* fault context are
    /// `corner:<name>`, so a plan like
    /// `corrupt=vth:1.0,scope=corner:ss_0p65v_77k` poisons exactly one
    /// corner of the farm; the draw is stateless, so repeated calls agree
    /// and parallel/serial runs stay byte-identical. Poisoned cards
    /// change the cache key, so a poisoned corner can never pollute a
    /// clean cache entry.
    #[must_use]
    pub fn corner_cards(&self, corner: &Corner) -> (ModelCard, ModelCard) {
        let (mut nfet, mut pfet) = self.process_cards(corner.process);
        if fault::is_active() {
            let label = format!("corner:{}", corner.name());
            fault::set_context(&label);
            if fault::should_corrupt(fault::CorruptKind::Vth, &label, 0) {
                nfet.tvth = -nfet.tvth;
                pfet.tvth = -pfet.tvth;
            }
            fault::set_context("");
        }
        (nfet, pfet)
    }

    /// [`CryoFlow::library_with_report`] for an arbitrary farm corner:
    /// same engine (cache → checkpointed robust characterization →
    /// audit-gated repair → coverage floor), with the corner's own cache
    /// key, library name, and `corner:<name>` stage label.
    ///
    /// # Errors
    ///
    /// Same as [`CryoFlow::library_with_report`].
    pub fn corner_library_with_report(&self, corner: &Corner) -> Result<(Library, CharReport)> {
        let char_cfg = self.corner_char_cfg(corner);
        let _fault_guard = self.cfg.fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.corner_cards(corner);
        self.characterize_corner(&corner.lib_name(), &corner.name(), &char_cfg, &nfet, &pfet)
    }

    /// Targeted re-characterization for the supervisor's cross-corner
    /// repair: seed the checkpoint store from `current`'s clean cells,
    /// evict `offenders`, and re-run at generation 1 so only the offending
    /// cells are re-simulated. Returns the repaired library and the
    /// characterization report of the repair pass (clean cells `Resumed`).
    ///
    /// # Errors
    ///
    /// Checkpoint/cache I/O failures.
    pub fn repair_library(
        &self,
        temp: f64,
        current: &Library,
        offenders: &[String],
    ) -> Result<(Library, CharReport)> {
        let char_cfg = self.base_char_cfg(temp);
        let _fault_guard = self.cfg.fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.effective_cards();
        let name = format!("cryo5_tt_0p70v_{}k", temp as u32);
        self.repair_corner(&name, &char_cfg, &nfet, &pfet, current, offenders)
    }

    /// [`CryoFlow::repair_library`] for an arbitrary farm corner.
    ///
    /// # Errors
    ///
    /// Checkpoint/cache I/O failures.
    pub fn corner_repair_library(
        &self,
        corner: &Corner,
        current: &Library,
        offenders: &[String],
    ) -> Result<(Library, CharReport)> {
        let char_cfg = self.corner_char_cfg(corner);
        let _fault_guard = self.cfg.fault_plan.clone().map(fault::install_guard);
        let (nfet, pfet) = self.corner_cards(corner);
        self.repair_corner(&corner.lib_name(), &char_cfg, &nfet, &pfet, current, offenders)
    }

    fn repair_corner(
        &self,
        name: &str,
        char_cfg: &CharConfig,
        nfet: &ModelCard,
        pfet: &ModelCard,
        current: &Library,
        offenders: &[String],
    ) -> Result<(Library, CharReport)> {
        let cells = topology::standard_cell_set();
        let tag = cache::cell_set_tag(&cells);
        let key = cache::cache_key(nfet, pfet, char_cfg, &tag)?;
        // A repaired corner must not be served from the (possibly dirty)
        // library-level cache, so the repair works on checkpoints alone.
        let _ = std::fs::remove_file(cache::cache_path(&self.cfg.cache_dir, name, &key));
        let checkpoint = CheckpointStore::open(&self.cfg.cache_dir, name, &key)?;
        for cell in current.cells() {
            if !offenders.contains(&cell.name) {
                checkpoint.store(cell)?;
            }
        }
        for off in offenders {
            checkpoint.remove(off);
        }
        let engine = Characterizer::new(nfet, pfet, char_cfg.clone()).with_generation(1);
        let (lib, report) = engine.characterize_library_robust(name, &cells, Some(&checkpoint));
        Ok((lib, report))
    }

    // ------------------------------------------------------------------
    // SoC + signoff
    // ------------------------------------------------------------------

    /// Generate the SoC netlist (synthesized/placed at 300 K, per the
    /// paper; the same netlist is then analyzed at both corners).
    #[must_use]
    pub fn soc(&self) -> Design {
        build_soc(&self.cfg.soc)
    }

    /// Run STA on `design` at a corner. `lib300_mean_delay` anchors the
    /// macro-timing derate (pass the 300 K library's mean delay).
    ///
    /// # Errors
    ///
    /// STA failures (unmapped cells, loops).
    pub fn timing(
        &self,
        design: &Design,
        lib: &Library,
        lib300_mean_delay: f64,
    ) -> Result<TimingReport> {
        self.timing_with_policy(design, lib, lib300_mean_delay, MissingArcPolicy::Fail)
    }

    /// [`CryoFlow::timing`] with an explicit missing-arc policy — the
    /// supervised pipeline's degraded-mode entry point. `Fail` reproduces
    /// `timing` exactly; the other policies let a partially characterized
    /// library reach a complete (flagged) report.
    ///
    /// # Errors
    ///
    /// STA failures (unmapped cells, loops); with `Fail`, also missing arcs.
    pub fn timing_with_policy(
        &self,
        design: &Design,
        lib: &Library,
        lib300_mean_delay: f64,
        policy: MissingArcPolicy,
    ) -> Result<TimingReport> {
        let scale = if lib300_mean_delay > 0.0 {
            lib.stats().mean_delay / lib300_mean_delay
        } else {
            1.0
        };
        let sta_cfg = StaConfig {
            macro_delay_scale: scale,
            missing_arc_policy: policy,
            ..StaConfig::default()
        };
        Ok(analyze(design, lib, &sta_cfg)?)
    }

    // ------------------------------------------------------------------
    // Workloads
    // ------------------------------------------------------------------

    /// Assemble and time a workload on the pipeline model.
    ///
    /// # Errors
    ///
    /// Assembly or simulation faults.
    pub fn run_workload(&self, workload: Workload) -> Result<WorkloadRun> {
        let (src_one, src_many, items, cpop) = self.workload_sources(workload)?;
        let pipe_cfg = PipelineConfig {
            enable_cpop: cpop,
            ..PipelineConfig::default()
        };
        let run = |src: &str| -> Result<RunStats> {
            let program = assemble(src)?;
            let mut m = PipelineModel::new(pipe_cfg.clone());
            m.cpu.load_program(&program);
            Ok(m.run(500_000_000)?)
        };
        let stats_many = run(&src_many)?;
        let cycles_per_item = if let Some(src_one) = src_one {
            let stats_one = run(&src_one)?;
            // Marginal (steady-state) cost of the extra rounds.
            (stats_many.cycles - stats_one.cycles) as f64
                / ((WORKLOAD_ROUNDS - 1) as f64 * items as f64)
        } else {
            stats_many.cycles as f64 / items as f64
        };
        Ok(WorkloadRun {
            workload,
            stats: stats_many,
            cycles_per_item,
        })
    }

    /// Produce the single-round and multi-round sources plus metadata.
    fn workload_sources(
        &self,
        workload: Workload,
    ) -> Result<(Option<String>, String, usize, bool)> {
        match workload {
            Workload::Knn { n } => {
                let (centers, meas) = self.knn_data(n)?;
                Ok((
                    Some(knn_source_rounds(&centers, &meas, 1)),
                    knn_source_rounds(&centers, &meas, WORKLOAD_ROUNDS),
                    n,
                    false,
                ))
            }
            Workload::Hdc { n, cpop } => {
                let (ix, iy, centers, meas, qmin, qscale) = self.hdc_data(n)?;
                Ok((
                    Some(hdc_source_rounds(
                        &ix, &iy, &centers, &meas, qmin, qscale, cpop, 1,
                    )),
                    hdc_source_rounds(
                        &ix,
                        &iy,
                        &centers,
                        &meas,
                        qmin,
                        qscale,
                        cpop,
                        WORKLOAD_ROUNDS,
                    ),
                    n,
                    cpop,
                ))
            }
            Workload::Dhrystone => Ok((None, dhrystone_source(400), 400, false)),
        }
    }

    /// Calibrated kNN tables + a fresh measurement round for `n` qubits.
    #[allow(clippy::type_complexity)]
    fn knn_data(&self, n: usize) -> Result<(Vec<[f64; 4]>, Vec<(f64, f64)>)> {
        let device = QuantumDevice::new(n, self.cfg.seed);
        let cal = Calibration::train(&device, 128)?;
        let shots = device.measurement_round(1);
        let meas: Vec<(f64, f64)> = shots.iter().map(|s| (s.point.i, s.point.q)).collect();
        Ok((cal.knn_table(), meas))
    }

    /// HDC kernel tables for `n` qubits.
    #[allow(clippy::type_complexity)]
    fn hdc_data(
        &self,
        n: usize,
    ) -> Result<(
        Vec<[u64; 2]>,
        Vec<[u64; 2]>,
        Vec<[u64; 4]>,
        Vec<(f64, f64)>,
        f64,
        f64,
    )> {
        let device = QuantumDevice::new(n, self.cfg.seed);
        let cal = Calibration::train(&device, 128)?;
        let encoder = IqEncoder::new(HDC_LEVELS, -3.0, 3.0, self.cfg.seed);
        let qmin = encoder.qmin;
        let qscale = encoder.qscale;
        let classifier = HdcClassifier::new(&cal, encoder)?;
        let (ix, iy) = classifier.encoder().tables();
        let centers = classifier.center_table();
        let shots = device.measurement_round(1);
        let meas: Vec<(f64, f64)> = shots.iter().map(|s| (s.point.i, s.point.q)).collect();
        Ok((ix, iy, centers, meas, qmin, qscale))
    }

    // ------------------------------------------------------------------
    // Power
    // ------------------------------------------------------------------

    /// Map workload pipeline statistics onto per-region switching
    /// activities — the paper's "actual switching activity" step, at block
    /// granularity.
    #[must_use]
    pub fn activity_profile(&self, stats: &RunStats) -> ActivityProfile {
        let ipc = stats.per_cycle(stats.instructions);
        let mut p = ActivityProfile::with_default(0.02);
        p.set_region("ifu", 0.30 * ipc)
            .set_region("dec", 0.30 * ipc)
            .set_region("alu", 0.35 * ipc)
            .set_region("bypass", 0.30 * ipc)
            .set_region("pipe", 0.25 * ipc)
            .set_region("shifter", 0.08 * ipc)
            .set_region("mul", 0.40 * stats.per_cycle(stats.muldiv_ops))
            .set_region("fpu", 0.40 * stats.per_cycle(stats.fp_ops))
            .set_region("lsu", 0.35 * stats.per_cycle(stats.loads + stats.stores))
            .set_region("l1i", 0.25 * ipc)
            .set_region("l1d", 0.30 * stats.per_cycle(stats.loads + stats.stores))
            .set_region(
                "l2",
                0.25 * stats.per_cycle(stats.l1d_misses + stats.l1i_misses),
            )
            .set_region("csr", 0.02)
            .set_region("ctrl", 0.10 * ipc)
            .set_region("uncore", 0.02);
        p.set_macro_access("l1i_data", ipc.min(1.0));
        p.set_macro_access("l1i_tags", ipc.min(1.0));
        p.set_macro_access("l1d", stats.per_cycle(stats.loads + stats.stores));
        p.set_macro_access("int_regfile", (2.0 * ipc).min(2.0));
        p.set_macro_access("fp_regfile", stats.per_cycle(stats.fp_ops));
        p.set_macro_access("l2", stats.per_cycle(stats.l1d_misses + stats.l1i_misses));
        p.set_macro_access("tlb", ipc.min(1.0));
        p
    }

    /// Run power signoff for a workload profile at a corner.
    ///
    /// # Errors
    ///
    /// Power analysis failures.
    pub fn power(
        &self,
        design: &Design,
        lib: &Library,
        profile: &ActivityProfile,
        frequency: f64,
    ) -> Result<PowerReport> {
        let cfg = PowerConfig::at(&self.nfet, lib.temperature, frequency);
        Ok(analyze_power(design, lib, &cfg, profile, None)?)
    }

    /// Solve the global activity scale so the 300 K kNN dynamic power hits
    /// the paper's 63.5 mW anchor (DESIGN.md §5). Dynamic power is affine
    /// in the scale, so two evaluations suffice.
    ///
    /// # Errors
    ///
    /// Power analysis failures.
    pub fn calibrate_activity_scale(
        &self,
        design: &Design,
        lib300: &Library,
        base_profile: &ActivityProfile,
        frequency: f64,
    ) -> Result<f64> {
        let p1 = {
            let mut p = base_profile.clone();
            p.scale(1.0);
            self.power(design, lib300, &p, frequency)?.dynamic_w
        };
        let p2 = {
            let mut p = base_profile.clone();
            p.scale(2.0);
            self.power(design, lib300, &p, frequency)?.dynamic_w
        };
        let slope = (p2 - p1).max(1e-12);
        let offset = p1 - slope; // value at scale 0 plus one slope unit
        let scale = (KNN_DYNAMIC_300K - offset) / slope;
        Ok(scale.max(0.01))
    }
}

/// Rounds used for steady-state workload timing.
pub const WORKLOAD_ROUNDS: u64 = 4;

/// Print audit findings as warnings (Warn policy, or repaired Gate runs).
fn warn_findings(name: &str, audit: &AuditReport) {
    for f in &audit.findings {
        eprintln!("warning: audit {name}: {f}");
    }
    for cell in &audit.repaired {
        eprintln!("warning: audit {name}: {cell} repaired by targeted re-characterization");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> CryoFlow {
        CryoFlow::new(FlowConfig::fast(
            std::env::temp_dir().join("cryo_flow_test"),
        ))
    }

    #[test]
    fn knn_workload_cycles_are_paper_scale() {
        let f = flow();
        let run = f.run_workload(Workload::Knn { n: 20 }).unwrap();
        assert!(
            (30.0..60.0).contains(&run.cycles_per_item),
            "paper Table 2: 41.5 cycles at 20 qubits; got {:.1}",
            run.cycles_per_item
        );
    }

    #[test]
    fn hdc_is_slower_and_cpop_helps() {
        let f = flow();
        let knn = f.run_workload(Workload::Knn { n: 20 }).unwrap();
        let hdc = f
            .run_workload(Workload::Hdc { n: 20, cpop: false })
            .unwrap();
        let hdc_hw = f.run_workload(Workload::Hdc { n: 20, cpop: true }).unwrap();
        assert!(hdc.cycles_per_item > 2.5 * knn.cycles_per_item);
        assert!(hdc_hw.cycles_per_item < 0.7 * hdc.cycles_per_item);
    }

    #[test]
    fn more_qubits_cost_more_cycles() {
        let f = flow();
        let small = f.run_workload(Workload::Knn { n: 20 }).unwrap();
        let large = f.run_workload(Workload::Knn { n: 400 }).unwrap();
        assert!(
            large.cycles_per_item > small.cycles_per_item * 1.1,
            "cache misses must grow: {:.1} -> {:.1}",
            small.cycles_per_item,
            large.cycles_per_item
        );
    }

    #[test]
    fn activity_profile_reflects_workload() {
        let f = flow();
        let knn = f.run_workload(Workload::Knn { n: 20 }).unwrap();
        let dhry = f.run_workload(Workload::Dhrystone).unwrap();
        let p_knn = f.activity_profile(&knn.stats);
        let p_dhry = f.activity_profile(&dhry.stats);
        assert!(
            p_knn.alpha("fpu") > p_dhry.alpha("fpu"),
            "kNN exercises the FPU"
        );
        assert!(p_dhry.alpha("fpu") < 0.01, "Dhrystone has no FP");
    }
}
