//! Average-power computation (the Fig. 6 breakdown).

use std::collections::HashMap;

use cryo_device::ModelCard;
use cryo_liberty::Library;
use cryo_netlist::design::{Design, LoadRef};
use cryo_spice::fault;

use crate::activity::{ActivityProfile, ToggleCounts};
use crate::{PowerError, Result};

/// Power-analysis configuration.
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Clock frequency, hertz.
    pub frequency: f64,
    /// n-FinFET card used for SRAM macro leakage at the corner temperature.
    pub nfet: ModelCard,
    /// Operating temperature, kelvin (should match the library corner).
    pub temperature: f64,
    /// Representative input slew for energy lookups, seconds.
    pub typical_slew: f64,
    /// Fraction of a flip-flop's clk→Q internal energy burned every cycle by
    /// internal clock loading even when Q does not switch.
    pub dff_clock_energy_factor: f64,
}

impl PowerConfig {
    /// Defaults at a given corner.
    #[must_use]
    pub fn at(nfet: &ModelCard, temperature: f64, frequency: f64) -> Self {
        Self {
            vdd: 0.7,
            frequency,
            nfet: nfet.clone(),
            temperature,
            typical_slew: 20e-12,
            dff_clock_energy_factor: 0.30,
        }
    }
}

/// The Fig. 6 power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Corner name.
    pub corner: String,
    /// Dynamic (switching + internal + clock + SRAM access) power, watts.
    pub dynamic_w: f64,
    /// Standard-cell leakage, watts.
    pub logic_leakage_w: f64,
    /// SRAM macro leakage, watts.
    pub sram_leakage_w: f64,
    /// Dynamic power per region, watts.
    pub per_region_dynamic: HashMap<String, f64>,
}

impl PowerReport {
    /// Total average power, watts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic_w + self.logic_leakage_w + self.sram_leakage_w
    }

    /// Whether the SoC fits the cryostat's cooling capacity.
    #[must_use]
    pub fn fits_budget(&self, budget_w: f64) -> bool {
        self.total() <= budget_w
    }

    /// Render a Voltus-flavoured summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "Corner {}: dynamic {:.2} mW + logic leakage {:.3} mW + SRAM leakage {:.3} mW = {:.2} mW",
            self.corner,
            self.dynamic_w * 1e3,
            self.logic_leakage_w * 1e3,
            self.sram_leakage_w * 1e3,
            self.total() * 1e3
        )
    }
}

/// Compute the average power of `design` at a library corner under either a
/// region [`ActivityProfile`] or measured [`ToggleCounts`].
///
/// # Errors
///
/// - [`PowerError::UnmappedCell`] for instances missing from the library.
/// - [`PowerError::NonFiniteAccumulation`] when a contribution goes NaN/∞
///   (corrupted energy tables, or an injected `power=` fault).
pub fn analyze_power(
    design: &Design,
    lib: &Library,
    cfg: &PowerConfig,
    profile: &ActivityProfile,
    measured: Option<&ToggleCounts>,
) -> Result<PowerReport> {
    let conn = design.connectivity();
    // Net loads (same model as STA).
    let mut net_load = vec![0.0f64; design.net_count()];
    for net in 0..design.net_count() {
        let mut cap = 0.0;
        for load in &conn.loads[net] {
            match load {
                LoadRef::Cell { instance, pin } => {
                    let inst = &design.instances()[*instance];
                    let cell = lib.cell(&inst.cell).map_err(|_| PowerError::UnmappedCell {
                        instance: inst.name.clone(),
                        cell: inst.cell.clone(),
                    })?;
                    cap += cell.pin(pin).map_or(0.0, |p| p.capacitance);
                }
                LoadRef::Macro { .. } => cap += 2.0e-15,
            }
        }
        cap += design.wire_cap(conn.loads[net].len());
        net_load[net] = cap;
    }

    let fault_active = fault::is_active();
    let mut dynamic = 0.0;
    let mut logic_leak = 0.0;
    let mut per_region: HashMap<String, f64> = HashMap::new();
    for inst in design.instances() {
        // Per-instance injection context: the fault schedule is a function
        // of the instance, so serial and parallel callers see the same
        // poisoned contribution (aggregation itself is serial).
        if fault_active {
            fault::set_context(&format!("power:{}", inst.name));
        }
        let cell = lib.cell(&inst.cell).map_err(|_| PowerError::UnmappedCell {
            instance: inst.name.clone(),
            cell: inst.cell.clone(),
        })?;
        logic_leak += cell.average_leakage();

        let mut inst_dyn = 0.0;
        for (pin, net) in &inst.outputs {
            let load = net_load[*net];
            // Activity: measured toggles if available, else region profile.
            let alpha = measured.map_or_else(|| profile.alpha(&inst.region), |t| t.activity(*net));
            // Internal energy: mean power arc at the lookup point.
            let e_int: f64 = cell
                .power_arcs
                .iter()
                .filter(|p| p.pin == *pin)
                .map(|p| p.average_energy(cfg.typical_slew, load))
                .sum::<f64>()
                / cell
                    .power_arcs
                    .iter()
                    .filter(|p| p.pin == *pin)
                    .count()
                    .max(1) as f64;
            // Load energy: half CV² per transition on average.
            let e_load = 0.5 * load * cfg.vdd * cfg.vdd;
            inst_dyn += alpha * cfg.frequency * (e_int + e_load);
        }
        // Sequential cells burn internal clock power every cycle — derated
        // by the region's activity to model the integrated clock gating a
        // synthesis flow inserts on idle banks (20 % of the tree is assumed
        // ungatable).
        if cell.is_sequential() {
            let e_clkq: f64 = cell
                .power_arcs
                .iter()
                .map(|p| p.average_energy(cfg.typical_slew, 1e-15))
                .sum::<f64>()
                / cell.power_arcs.len().max(1) as f64;
            let alpha = measured
                .map_or_else(|| profile.alpha(&inst.region), |t| t.mean_activity());
            let gating = 0.2 + 0.8 * (alpha * 4.0).min(1.0);
            inst_dyn += cfg.dff_clock_energy_factor * e_clkq * cfg.frequency * gating;
        }
        if fault_active && fault::should_fault_power_accum() {
            inst_dyn = f64::NAN;
        }
        // Detect poison at the contributing instance — a NaN summed into
        // the totals would silently wipe out the whole report.
        if !inst_dyn.is_finite() {
            if fault_active {
                fault::set_context("");
            }
            return Err(PowerError::NonFiniteAccumulation {
                instance: inst.name.clone(),
            });
        }
        dynamic += inst_dyn;
        *per_region.entry(inst.region.clone()).or_insert(0.0) += inst_dyn;
    }
    if fault_active {
        fault::set_context("");
    }

    // SRAM macros: leakage from the device model, access energy from the
    // macro model.
    let mut sram_leak = 0.0;
    for m in design.macros() {
        sram_leak += m.spec.leakage(&cfg.nfet, cfg.temperature, cfg.vdd);
        let accesses = profile.macro_accesses(&m.name);
        let p_access = accesses * cfg.frequency * m.spec.access_energy(cfg.vdd);
        dynamic += p_access;
        *per_region.entry(m.region.clone()).or_insert(0.0) += p_access;
    }

    if !(dynamic.is_finite() && logic_leak.is_finite() && sram_leak.is_finite()) {
        return Err(PowerError::NonFiniteAccumulation {
            instance: "<total>".to_string(),
        });
    }

    Ok(PowerReport {
        corner: lib.name.clone(),
        dynamic_w: dynamic,
        logic_leakage_w: logic_leak,
        sram_leakage_w: sram_leak,
        per_region_dynamic: per_region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::simulate_toggles;
    use cryo_device::Polarity;
    use cryo_liberty::{ArcKind, Cell, LogicFunction, Lut2, Pin, PowerArc, TimingArc, TimingSense};
    use cryo_netlist::DesignBuilder;

    fn synth_lib() -> Library {
        let mut lib = Library::new("p", 300.0, 0.7);
        for (name, invert) in [("INVx1", true), ("BUFx2", false)] {
            let f = LogicFunction::from_eval(&["A"], move |b| (b & 1 != 0) != invert);
            lib.add_cell(Cell {
                name: name.to_string(),
                area: 0.05,
                pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
                arcs: vec![TimingArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    kind: ArcKind::Combinational,
                    sense: TimingSense::NegativeUnate,
                    cell_rise: Lut2::constant(10e-12),
                    cell_fall: Lut2::constant(10e-12),
                    rise_transition: Lut2::constant(5e-12),
                    fall_transition: Lut2::constant(5e-12),
                }],
                power_arcs: vec![PowerArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    rise_energy: Lut2::constant(2e-15),
                    fall_energy: Lut2::constant(2e-15),
                }],
                leakage_states: vec![(0, 5e-9), (1, 7e-9)],
                ff: None,
                drive: 1,
            });
        }
        let nand = LogicFunction::from_eval(&["A", "B"], |b| b & 3 != 3);
        lib.add_cell(Cell {
            name: "NAND2x1".into(),
            area: 0.06,
            pins: vec![
                Pin::input("A", 1e-15),
                Pin::input("B", 1e-15),
                Pin::output("Y", nand),
            ],
            arcs: vec![],
            power_arcs: vec![PowerArc {
                related_pin: "A".into(),
                pin: "Y".into(),
                rise_energy: Lut2::constant(3e-15),
                fall_energy: Lut2::constant(3e-15),
            }],
            leakage_states: vec![(0, 6e-9)],
            ff: None,
            drive: 1,
        });
        lib
    }

    fn chain_design() -> Design {
        let mut b = DesignBuilder::new("c");
        let mut x = b.input("in");
        for _ in 0..3 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        b.finish()
    }

    #[test]
    fn toggle_simulation_counts_chain() {
        let lib = synth_lib();
        let d = chain_design();
        // Alternate the input: every net toggles every cycle.
        let vectors: Vec<Vec<bool>> = (0..10).map(|i| vec![i % 2 == 1]).collect();
        let t = simulate_toggles(&d, &lib, &vectors).unwrap();
        // After warmup, each inverter output toggles once per cycle.
        for inst in d.instances() {
            let (_, net) = inst.outputs[0];
            assert!(
                t.activity(net) > 0.8,
                "net {} activity {}",
                d.net_name(net),
                t.activity(net)
            );
        }
    }

    #[test]
    fn constant_input_means_no_toggles() {
        let lib = synth_lib();
        let d = chain_design();
        let vectors: Vec<Vec<bool>> = (0..10).map(|_| vec![true]).collect();
        let t = simulate_toggles(&d, &lib, &vectors).unwrap();
        let total_after_first: u64 = t.toggles.iter().sum();
        // Only the very first application can toggle nets.
        assert!(total_after_first <= d.net_count() as u64);
    }

    #[test]
    fn power_scales_with_activity_and_frequency() {
        let lib = synth_lib();
        let d = chain_design();
        let cfg1 = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, 1e9);
        let lo = ActivityProfile::with_default(0.1);
        let hi = ActivityProfile::with_default(0.4);
        let p_lo = analyze_power(&d, &lib, &cfg1, &lo, None).unwrap();
        let p_hi = analyze_power(&d, &lib, &cfg1, &hi, None).unwrap();
        assert!((p_hi.dynamic_w / p_lo.dynamic_w - 4.0).abs() < 0.01);
        let cfg2 = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, 2e9);
        let p_2g = analyze_power(&d, &lib, &cfg2, &lo, None).unwrap();
        assert!((p_2g.dynamic_w / p_lo.dynamic_w - 2.0).abs() < 0.01);
        // Leakage is activity-independent.
        assert_eq!(p_lo.logic_leakage_w, p_hi.logic_leakage_w);
    }

    #[test]
    fn measured_toggles_drive_power() {
        let lib = synth_lib();
        let d = chain_design();
        let cfg = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, 1e9);
        let busy: Vec<Vec<bool>> = (0..32).map(|i| vec![i % 2 == 0]).collect();
        let idle: Vec<Vec<bool>> = (0..32).map(|_| vec![false]).collect();
        let t_busy = simulate_toggles(&d, &lib, &busy).unwrap();
        let t_idle = simulate_toggles(&d, &lib, &idle).unwrap();
        let profile = ActivityProfile::with_default(0.0);
        let p_busy = analyze_power(&d, &lib, &cfg, &profile, Some(&t_busy)).unwrap();
        let p_idle = analyze_power(&d, &lib, &cfg, &profile, Some(&t_idle)).unwrap();
        assert!(p_busy.dynamic_w > 10.0 * p_idle.dynamic_w.max(1e-12));
    }

    #[test]
    fn report_totals_and_budget() {
        let r = PowerReport {
            corner: "c".into(),
            dynamic_w: 0.057,
            logic_leakage_w: 0.0001,
            sram_leakage_w: 0.0004,
            per_region_dynamic: HashMap::new(),
        };
        assert!((r.total() - 0.0575).abs() < 1e-9);
        assert!(r.fits_budget(0.1), "paper: 10 K SoC fits 100 mW");
        assert!(!r.fits_budget(0.05));
        assert!(r.summary().contains("mW"));
    }

    #[test]
    fn injected_power_fault_is_detected_not_propagated() {
        use cryo_spice::fault::FaultPlan;
        let lib = synth_lib();
        let d = chain_design();
        let cfg = PowerConfig::at(&ModelCard::nominal(Polarity::N), 300.0, 1e9);
        let profile = ActivityProfile::with_default(0.1);
        let plan = FaultPlan {
            seed: 3,
            power_aggregation: 1.0,
            max_injections: Some(1),
            ..FaultPlan::default()
        };
        {
            let _g = fault::install_guard(plan);
            let err = analyze_power(&d, &lib, &cfg, &profile, None).unwrap_err();
            let PowerError::NonFiniteAccumulation { instance } = &err else {
                panic!("expected NonFiniteAccumulation, got {err:?}");
            };
            assert_eq!(
                instance, &d.instances()[0].name,
                "poison is pinned to the contributing instance"
            );
            assert_eq!(fault::injection_count(), 1);
        }
        // The injector is gone: the same analysis is clean and finite.
        let report = analyze_power(&d, &lib, &cfg, &profile, None).unwrap();
        assert!(report.total().is_finite());
    }

    #[test]
    fn vector_width_checked() {
        let lib = synth_lib();
        let d = chain_design();
        let err = simulate_toggles(&d, &lib, &[vec![true, false]]).unwrap_err();
        assert!(matches!(err, PowerError::VectorWidth { .. }));
    }
}
