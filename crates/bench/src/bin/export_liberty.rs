//! Exports the characterized corners as Liberty-style `.lib` text files —
//! the artifact a downstream EDA flow would consume.
use std::fs;

use cryo_liberty::format::write_library;

fn main() {
    let flow = cryo_bench::flow_from_args();
    fs::create_dir_all("data").expect("data dir");
    for temp in [300.0, 10.0] {
        let lib = flow.library(temp).expect("characterized library");
        let text = write_library(&lib);
        let path = format!("data/{}.lib", lib.name);
        fs::write(&path, &text).expect("write .lib");
        println!(
            "wrote {path}: {} cells, {} KB of Liberty text",
            lib.len(),
            text.len() / 1024
        );
    }
}
