//! PVT corner-farm driver: runs the fault-isolated multi-corner signoff,
//! prints the per-corner ledger and provenance table, and powers the CI
//! kill-and-resume and poisoned-corner drills.
//!
//! Flags and environment hooks:
//!
//! - `--corners=<spec>` — the corner set as a `CRYO_CORNERS` spec
//!   (`T=300,77,4.2;V=0.70,0.65;P=tt,ss`); the flag wins over the
//!   environment variable; default `T=300,77,10`.
//! - `--fast` — reduced grids and uncore (CI smoke; default is the paper's
//!   full configuration with caching under `data/`).
//! - `--audit=off|warn|gate` — audit-firewall policy (default `warn`).
//! - `--surrogate[=<spec>]` — predict non-anchor corners from each
//!   (process, VDD) group's warmest SPICE anchor; bare flag means
//!   `predict:0.75`.
//! - `--min-signed=<frac>` — signoff floor (default 0.9).
//! - `--derate=<margin>` — let failed corners borrow their nearest signed
//!   neighbor's numbers with this pessimism margin.
//! - `--report=<path>` — dump the farm report as JSON.
//! - `--bench` — measure a cold farm vs. a fully resumed farm in a scratch
//!   cache and write `BENCH_corners.json` at the repo root.
//! - `CRYO_KILL_AFTER_CORNERS=<n>` — checkpoint the first `n` corners,
//!   then die by SIGKILL (a real crash), leaving the farm store behind.
//! - `CRYO_EXPECT_RESUMED_CORNERS=<n>` — assert the first `n` corners
//!   replayed from checkpoints with zero re-simulation; exit non-zero
//!   otherwise.
//!
//! Exit status: non-zero when the farm misses its signoff floor, so CI can
//! gate on the degraded-but-signed contract directly.

use std::time::Instant;

use cryo_core::corners::{CornerFarm, CornerProvenance, CornerSpec, FarmConfig, FarmRun};
use cryo_core::{AuditPolicy, CryoFlow, FlowConfig, SurrogatePolicy};

/// Value of `--name=<v>` or `--name <v>`, if present.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let prefix = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == name {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// `--surrogate[=<spec>]`; a bare flag means `predict:0.75`.
fn surrogate_spec() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut spec = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--surrogate=") {
            spec = Some(v.to_string());
        } else if a == "--surrogate" {
            spec = Some(match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => "predict:0.75".to_string(),
            });
        }
    }
    spec
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn provenance_label(p: &CornerProvenance) -> String {
    match p {
        CornerProvenance::Spice => "spice".into(),
        CornerProvenance::Predicted { model_hash } => format!("predicted({model_hash})"),
        CornerProvenance::Derated { from, margin } => {
            format!("derated(from {from}, margin {margin})")
        }
        CornerProvenance::Failed { cause } => format!("FAILED: {cause}"),
    }
}

fn print_farm(run: &FarmRun, wall_s: f64) {
    let rep = &run.report;
    println!("=== corner farm {} ===", rep.farm_key);
    println!(
        "{:<16} {:>8} {:>9} {:>10} {:>9} {:>9} {:>10}  provenance",
        "corner", "resumed", "attempts", "wall(s)", "dc", "tran", "arc_evals"
    );
    for (r, o) in run.ledger.iter().zip(&rep.corners) {
        println!(
            "{:<16} {:>8} {:>9} {:>10.3} {:>9} {:>9} {:>10}  {}",
            r.corner,
            if r.from_checkpoint { "yes" } else { "no" },
            r.attempts,
            r.wall_s,
            r.dc_solves,
            r.tran_solves,
            r.arc_evals,
            provenance_label(&o.provenance)
        );
    }
    for o in &rep.corners {
        if let Some(f) = o.fmax_hz {
            println!(
                "  {:<16} fmax {:>8.0} MHz, {} cells, {} degraded arc(s){}{}",
                o.name,
                f / 1e6,
                o.cells,
                o.degraded_arcs,
                if o.repaired.is_empty() { "" } else { ", repaired: " },
                o.repaired.join(", ")
            );
        }
    }
    println!(
        "total wall: {wall_s:.3} s, completed: {}, signed {}/{} (floor {:.0} %), \
         failed {}, signoff: {}",
        rep.completed,
        rep.signed,
        rep.corners.len(),
        rep.min_signed_frac * 100.0,
        rep.failed,
        if rep.signoff { "YES" } else { "NO" }
    );
}

fn farm_config(spec: CornerSpec, halt_after: Option<usize>) -> FarmConfig {
    let mut fcfg = FarmConfig::new(spec);
    if let Some(v) = arg_value("--min-signed") {
        fcfg.min_signed_frac = v
            .parse()
            .unwrap_or_else(|_| die(&format!("bad --min-signed {v:?}")));
    }
    if let Some(v) = arg_value("--derate") {
        fcfg.derate_margin = Some(
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad --derate {v:?}"))),
        );
    }
    fcfg.halt_after = halt_after;
    fcfg
}

fn run_farm(farm: &CornerFarm) -> (FarmRun, f64) {
    let t = Instant::now();
    match farm.run() {
        Ok(run) => (run, t.elapsed().as_secs_f64()),
        Err(e) => {
            eprintln!("corner farm failed: {e}");
            std::process::exit(1);
        }
    }
}

fn bench(spec: CornerSpec, fast: bool) {
    // Cold farm vs. fully resumed farm in a scratch cache, plus the grid
    // scale-up this layer buys over the paper's fixed two-corner flow.
    let dir = std::env::temp_dir().join(format!("cryo_corner_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = if fast {
        FlowConfig::fast(&dir)
    } else {
        FlowConfig::full(&dir)
    };
    if let Some(s) = surrogate_spec() {
        cfg.surrogate_policy = SurrogatePolicy::parse(&s).unwrap_or_else(|e| die(&e));
    }
    let corners = spec.corners().len();
    let farm = CornerFarm::new(CryoFlow::new(cfg), farm_config(spec, None));
    let (cold, cold_s) = run_farm(&farm);
    print_farm(&cold, cold_s);
    let (res, resumed_s) = run_farm(&farm);
    print_farm(&res, resumed_s);
    assert!(res.ledger.iter().all(|r| r.from_checkpoint));
    let by_prov = |label: &str| {
        cold.report
            .corners
            .iter()
            .filter(|o| provenance_label(&o.provenance).starts_with(label))
            .count()
    };
    let json = format!(
        "{{\n  \"bench\": \"flow_corners\",\n  \"description\": \"PVT corner farm ({} config, \
         {corners} corners vs. the paper's fixed 2), cold run vs. fully checkpoint-resumed run \
         in a fresh cache, via `cargo run --release -p cryo-bench --bin flow_corners -- \
         {}--bench`.\",\n  \"corners\": {corners},\n  \"spice\": {},\n  \"predicted\": {},\n  \
         \"derated\": {},\n  \"failed\": {},\n  \"cold_s\": {cold_s:.3},\n  \
         \"resumed_s\": {resumed_s:.3},\n  \"cold_over_resumed\": {:.1}\n}}\n",
        if fast { "fast" } else { "full" },
        if fast { "--fast " } else { "" },
        by_prov("spice"),
        by_prov("predicted"),
        by_prov("derated"),
        cold.report.failed,
        cold_s / resumed_s.max(1e-9),
    );
    std::fs::write("BENCH_corners.json", json).expect("write BENCH_corners.json");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("wrote BENCH_corners.json (cold {cold_s:.3} s, resumed {resumed_s:.3} s)");
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let spec_str = arg_value("--corners")
        .or_else(|| std::env::var("CRYO_CORNERS").ok())
        .unwrap_or_else(|| "T=300,77,10".to_string());
    let spec = CornerSpec::parse(&spec_str)
        .unwrap_or_else(|e| die(&format!("bad corner spec {spec_str:?}: {e}")));
    if std::env::args().any(|a| a == "--bench") {
        bench(spec, fast);
        return;
    }
    let kill_after: Option<usize> = std::env::var("CRYO_KILL_AFTER_CORNERS")
        .ok()
        .map(|n| n.parse().unwrap_or_else(|_| die("bad CRYO_KILL_AFTER_CORNERS")));
    let mut cfg = if fast {
        FlowConfig::fast("data")
    } else {
        FlowConfig::full("data")
    };
    if let Some(p) = arg_value("--audit") {
        cfg.audit_policy = AuditPolicy::parse(&p).unwrap_or_else(|e| die(&e));
    }
    if let Some(s) = surrogate_spec() {
        cfg.surrogate_policy = SurrogatePolicy::parse(&s).unwrap_or_else(|e| die(&e));
    }
    let farm = CornerFarm::new(CryoFlow::new(cfg), farm_config(spec, kill_after));
    let (run, wall_s) = run_farm(&farm);
    print_farm(&run, wall_s);
    if let Some(path) = arg_value("--report") {
        let json = serde_json::to_string(&run.report).expect("farm report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("wrote farm report to {path}");
    }

    if let Some(n) = kill_after {
        // Die the hard way: the checkpoint blobs on disk are all the next
        // run gets, exactly like a crashed or OOM-killed job.
        println!("checkpointed {n} corner(s); sending SIGKILL to self");
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        std::process::exit(137);
    }

    if let Ok(n) = std::env::var("CRYO_EXPECT_RESUMED_CORNERS") {
        let n: usize = n.parse().unwrap_or_else(|_| die("bad CRYO_EXPECT_RESUMED_CORNERS"));
        for r in run.ledger.iter().take(n) {
            if !r.from_checkpoint || r.dc_solves + r.tran_solves + r.arc_evals != 0 {
                eprintln!(
                    "corner {} was NOT resumed from checkpoint (resumed={}, dc={}, tran={}, \
                     arc_evals={})",
                    r.corner, r.from_checkpoint, r.dc_solves, r.tran_solves, r.arc_evals
                );
                std::process::exit(1);
            }
        }
        println!("resume verified: {n} corner(s) replayed from checkpoints with zero re-simulation");
    }

    if let Some(e) = run.signoff_error() {
        eprintln!("{e}");
        std::process::exit(3);
    }
}
