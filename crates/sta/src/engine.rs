//! Arrival propagation engine.

use cryo_liberty::{ArcKind, Library};
use cryo_netlist::design::{Design, DriverRef, LoadRef};

use crate::report::{EndpointSummary, PathStep, TimingReport};
use crate::{Result, StaError};

/// STA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaConfig {
    /// Analysis clock period, seconds. The paper synthesizes at 0 ns to
    /// force maximum optimization and reads the worst slack as the critical
    /// path; `0.0` reproduces that.
    pub clock_period: f64,
    /// Transition time assumed at primary inputs and clock pins, seconds.
    pub input_slew: f64,
    /// Corner scale factor applied to SRAM macro timing (ratio of the
    /// corner's mean cell delay to the 300 K mean; 1.0 at 300 K).
    pub macro_delay_scale: f64,
    /// Capacitive load each SRAM macro input pin presents, farads.
    pub macro_input_cap: f64,
    /// Earliest arrival assumed at primary inputs for hold analysis,
    /// seconds (external input delay).
    pub input_min_delay: f64,
    /// How many worst endpoints to summarize in the report.
    pub max_reported_paths: usize,
}

impl Default for StaConfig {
    fn default() -> Self {
        Self {
            clock_period: 0.0,
            input_slew: 20e-12,
            macro_delay_scale: 1.0,
            macro_input_cap: 2.0e-15,
            input_min_delay: 10e-12,
            max_reported_paths: 8,
        }
    }
}

/// Per-net timing state.
#[derive(Debug, Clone, Copy)]
struct NetTiming {
    /// Worst (max) arrival and the slew accompanying it.
    max_arrival: f64,
    max_slew: f64,
    /// Best (min) arrival for hold analysis.
    min_arrival: f64,
    /// Whether any path reaches this net.
    reached: bool,
    /// Backtrace: instance index and its input net on the worst path.
    parent: Option<(usize, usize)>,
}

impl Default for NetTiming {
    fn default() -> Self {
        Self {
            max_arrival: f64::NEG_INFINITY,
            max_slew: 0.0,
            min_arrival: f64::INFINITY,
            reached: false,
            parent: None,
        }
    }
}

/// Run setup and hold timing analysis on `design` against `lib`.
///
/// See the crate-level docs for the algorithm; typical use:
///
/// ```no_run
/// use cryo_sta::{analyze, StaConfig};
/// # let design = cryo_netlist::build_soc(&cryo_netlist::SocConfig::tiny());
/// # let lib = cryo_liberty::Library::new("corner", 300.0, 0.7);
/// let report = analyze(&design, &lib, &StaConfig::default())?;
/// println!("fmax = {:.0} MHz", report.fmax() / 1e6);
/// # Ok::<(), cryo_sta::StaError>(())
/// ```
///
/// # Errors
///
/// - [`StaError::UnmappedCell`] if an instance's cell is missing.
/// - [`StaError::CombinationalLoop`] if registers do not break all cycles.
/// - [`StaError::NoEndpoints`] for designs with nothing to time.
pub fn analyze(design: &Design, lib: &Library, cfg: &StaConfig) -> Result<TimingReport> {
    let conn = design.connectivity();
    let n_nets = design.net_count();

    // ------------------------------------------------------------------
    // Net loads: sum of sink pin caps + wire estimate.
    // ------------------------------------------------------------------
    let mut net_load = vec![0.0f64; n_nets];
    for net in 0..n_nets {
        let mut cap = 0.0;
        for load in &conn.loads[net] {
            match load {
                LoadRef::Cell { instance, pin } => {
                    let inst = &design.instances()[*instance];
                    let cell = lib.cell(&inst.cell).map_err(|_| StaError::UnmappedCell {
                        instance: inst.name.clone(),
                        cell: inst.cell.clone(),
                    })?;
                    cap += cell.pin(pin).map_or(0.0, |p| p.capacitance);
                }
                LoadRef::Macro { .. } => cap += cfg.macro_input_cap,
            }
        }
        cap += design.wire_cap(conn.loads[net].len());
        net_load[net] = cap;
    }

    // ------------------------------------------------------------------
    // Classify instances; seed startpoints.
    // ------------------------------------------------------------------
    let mut timing: Vec<NetTiming> = vec![NetTiming::default(); n_nets];
    fn seed(timing: &mut [NetTiming], net: usize, arrival: f64, slew: f64) {
        let t = &mut timing[net];
        t.max_arrival = t.max_arrival.max(arrival);
        t.min_arrival = t.min_arrival.min(arrival);
        t.max_slew = t.max_slew.max(slew);
        t.reached = true;
    }
    for &pi in &design.primary_inputs {
        seed(&mut timing, pi, 0.0, cfg.input_slew);
        timing[pi].min_arrival = cfg.input_min_delay;
    }
    if let Some(clk) = design.clock {
        seed(&mut timing, clk, 0.0, cfg.input_slew);
        timing[clk].min_arrival = cfg.input_min_delay;
    }
    // Sequential cell outputs: launch at clk→Q.
    let mut is_seq = vec![false; design.instances().len()];
    for (i, inst) in design.instances().iter().enumerate() {
        let cell = lib.cell(&inst.cell).map_err(|_| StaError::UnmappedCell {
            instance: inst.name.clone(),
            cell: inst.cell.clone(),
        })?;
        if cell.is_sequential() {
            is_seq[i] = true;
            for (pin, net) in &inst.outputs {
                for arc in cell.arcs_to(pin) {
                    if arc.kind == ArcKind::ClockToQ {
                        let d = arc.worst_delay(cfg.input_slew, net_load[*net]);
                        let s = arc
                            .rise_transition
                            .lookup(cfg.input_slew, net_load[*net])
                            .max(arc.fall_transition.lookup(cfg.input_slew, net_load[*net]));
                        seed(&mut timing, *net, d, s);
                    }
                }
            }
        }
    }
    // Macro outputs: launch at scaled clock-to-out.
    for m in design.macros() {
        let d = m.spec.clk_to_out(cfg.macro_delay_scale);
        for &net in &m.outputs {
            seed(&mut timing, net, d, 30e-12);
        }
    }

    // ------------------------------------------------------------------
    // Levelize the combinational instances (Kahn).
    // ------------------------------------------------------------------
    // In-degree: number of input nets driven by combinational instances.
    let comb_driver_of = |net: usize| -> Option<usize> {
        conn.drivers[net].iter().find_map(|d| match d {
            DriverRef::Cell { instance, .. } if !is_seq[*instance] => Some(*instance),
            _ => None,
        })
    };
    let n_inst = design.instances().len();
    let mut indegree = vec![0usize; n_inst];
    let mut fanout_edges: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (i, inst) in design.instances().iter().enumerate() {
        if is_seq[i] {
            continue;
        }
        for (_, net) in &inst.inputs {
            if let Some(src) = comb_driver_of(*net) {
                indegree[i] += 1;
                fanout_edges[src].push(i);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n_inst)
        .filter(|&i| !is_seq[i] && indegree[i] == 0)
        .collect();
    let mut order = Vec::with_capacity(n_inst);
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(i);
        for &next in &fanout_edges[i] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                queue.push(next);
            }
        }
    }
    let comb_count = (0..n_inst).filter(|&i| !is_seq[i]).count();
    if order.len() != comb_count {
        // Find a net on the cycle for the error message.
        let stuck = (0..n_inst)
            .find(|&i| !is_seq[i] && indegree[i] > 0)
            .expect("some instance must be stuck");
        let net = design.instances()[stuck].inputs[0].1;
        return Err(StaError::CombinationalLoop {
            net: design.net_name(net).to_string(),
        });
    }

    // ------------------------------------------------------------------
    // Propagate arrivals.
    // ------------------------------------------------------------------
    for &i in &order {
        let inst = &design.instances()[i];
        let cell = lib.cell(&inst.cell).expect("checked above");
        for (out_pin, out_net) in &inst.outputs {
            let load = net_load[*out_net];
            let mut best: Option<(f64, f64, usize)> = None; // arrival, slew, from-net
            let mut min_arr = f64::INFINITY;
            for arc in cell.arcs_to(out_pin) {
                if arc.kind != ArcKind::Combinational {
                    continue;
                }
                let Some((_, in_net)) = inst.inputs.iter().find(|(pin, _)| *pin == arc.related_pin)
                else {
                    continue;
                };
                let tin = timing[*in_net];
                if !tin.reached {
                    continue;
                }
                let delay = arc.worst_delay(tin.max_slew, load);
                let out_slew = arc
                    .rise_transition
                    .lookup(tin.max_slew, load)
                    .max(arc.fall_transition.lookup(tin.max_slew, load));
                let arr = tin.max_arrival + delay;
                if best.is_none_or(|(a, _, _)| arr > a) {
                    best = Some((arr, out_slew, *in_net));
                }
                let dmin = arc
                    .cell_rise
                    .lookup(tin.max_slew, load)
                    .min(arc.cell_fall.lookup(tin.max_slew, load));
                min_arr = min_arr.min(tin.min_arrival + dmin);
            }
            if let Some((arr, slew, from)) = best {
                let t = &mut timing[*out_net];
                if arr > t.max_arrival {
                    t.max_arrival = arr;
                    t.max_slew = slew;
                    t.parent = Some((i, from));
                }
                t.min_arrival = t.min_arrival.min(min_arr);
                t.reached = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Endpoints: setup and hold.
    // ------------------------------------------------------------------
    struct Endpoint {
        name: String,
        net: usize,
        setup: f64,
        hold: f64,
    }
    let mut endpoints: Vec<Endpoint> = Vec::new();
    for (i, inst) in design.instances().iter().enumerate() {
        if !is_seq[i] {
            continue;
        }
        let cell = lib.cell(&inst.cell).expect("checked above");
        let mut setup = 0.0;
        let mut hold = 0.0;
        for arc in cell.constraint_arcs() {
            match arc.kind {
                ArcKind::Setup => setup = arc.cell_rise.lookup(0.0, 0.0),
                ArcKind::Hold => hold = arc.cell_rise.lookup(0.0, 0.0),
                _ => {}
            }
        }
        if let Some(ff) = &cell.ff {
            if let Some((_, d_net)) = inst.inputs.iter().find(|(p, _)| *p == ff.next_state) {
                endpoints.push(Endpoint {
                    name: format!("{}/D", inst.name),
                    net: *d_net,
                    setup,
                    hold,
                });
            }
        }
    }
    for m in design.macros() {
        for &net in &m.inputs {
            endpoints.push(Endpoint {
                name: format!("{}/in", m.name),
                net,
                setup: m.spec.setup * cfg.macro_delay_scale,
                hold: 0.0,
            });
        }
    }
    for &po in &design.primary_outputs {
        endpoints.push(Endpoint {
            name: format!("PO {}", design.net_name(po)),
            net: po,
            setup: 0.0,
            hold: 0.0,
        });
    }
    if endpoints.is_empty() {
        return Err(StaError::NoEndpoints);
    }

    let mut critical_delay = 0.0f64;
    let mut worst_endpoint: Option<&Endpoint> = None;
    let mut worst_hold = f64::INFINITY;
    let mut endpoint_delays: Vec<(f64, usize)> = Vec::new();
    for (idx, ep) in endpoints.iter().enumerate() {
        let t = timing[ep.net];
        if !t.reached {
            continue;
        }
        let path = t.max_arrival + ep.setup;
        endpoint_delays.push((path, idx));
        if path > critical_delay {
            critical_delay = path;
            worst_endpoint = Some(ep);
        }
        if t.min_arrival.is_finite() {
            worst_hold = worst_hold.min(t.min_arrival - ep.hold);
        }
    }
    let endpoint = worst_endpoint.map_or_else(String::new, |e| e.name.clone());

    // Backtrace a path ending at `net`.
    let backtrace = |end_net: usize| -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut net = end_net;
        while let Some((inst_idx, from)) = timing[net].parent {
            let inst = &design.instances()[inst_idx];
            let incr = timing[net].max_arrival - timing[from].max_arrival;
            path.push(PathStep {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
                net: design.net_name(net).to_string(),
                incr,
                arrival: timing[net].max_arrival,
            });
            net = from;
        }
        path.push(PathStep {
            instance: "startpoint".to_string(),
            cell: "-".to_string(),
            net: design.net_name(net).to_string(),
            incr: 0.0,
            arrival: timing[net].max_arrival,
        });
        path.reverse();
        path
    };
    let path = worst_endpoint.map_or_else(Vec::new, |ep| backtrace(ep.net));

    // The N worst endpoints (PrimeTime's `report_timing -max_paths N`).
    endpoint_delays.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let worst_paths: Vec<EndpointSummary> = endpoint_delays
        .iter()
        .take(cfg.max_reported_paths)
        .map(|&(delay, idx)| EndpointSummary {
            endpoint: endpoints[idx].name.clone(),
            path_delay: delay,
            slack: cfg.clock_period - delay,
            depth: backtrace(endpoints[idx].net).len(),
        })
        .collect();
    // Endpoint slack histogram (2.5 % bins of the critical delay).
    let bin = (critical_delay / 40.0).max(1e-15);
    let mut slack_histogram = vec![0usize; 41];
    for &(delay, _) in &endpoint_delays {
        let b = ((critical_delay - delay) / bin) as usize;
        slack_histogram[b.min(40)] += 1;
    }

    Ok(TimingReport {
        corner: lib.name.clone(),
        temperature: lib.temperature,
        critical_path_delay: critical_delay,
        worst_paths,
        slack_histogram,
        worst_slack: cfg.clock_period - critical_delay,
        worst_hold_slack: if worst_hold.is_finite() {
            worst_hold
        } else {
            0.0
        },
        critical_path: path,
        endpoint,
        endpoint_count: endpoints.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryo_liberty::{
        Cell, FfSpec, Library, LogicFunction, Lut2, Pin, PowerArc, TimingArc, TimingSense,
    };
    use cryo_netlist::DesignBuilder;

    /// Synthetic library: INV delay = 10 ps + 1 ps/fF·load; DFF clk→Q 50 ps,
    /// setup 30 ps, hold 5 ps.
    fn synth_lib() -> Library {
        let mut lib = Library::new("synth", 300.0, 0.7);
        let slews = vec![1e-12, 100e-12];
        let loads = vec![0.0, 100e-15];
        let table = |base: f64, per_f: f64| {
            let vals: Vec<f64> = slews
                .iter()
                .flat_map(|_s| loads.iter().map(move |l| base + per_f * l / 1e-15))
                .collect();
            Lut2::new(slews.clone(), loads.clone(), vals).unwrap()
        };
        let inv_fn = LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
        for (name, base) in [("INVx1", 10e-12), ("INVx2", 8e-12), ("BUFx2", 12e-12)] {
            let f = if name.starts_with("BUF") {
                LogicFunction::from_eval(&["A"], |b| b & 1 != 0)
            } else {
                inv_fn.clone()
            };
            lib.add_cell(Cell {
                name: name.to_string(),
                area: 0.05,
                pins: vec![Pin::input("A", 1e-15), Pin::output("Y", f)],
                arcs: vec![TimingArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    kind: ArcKind::Combinational,
                    sense: TimingSense::NegativeUnate,
                    cell_rise: table(base, 1e-12),
                    cell_fall: table(base, 1e-12),
                    rise_transition: table(5e-12, 0.2e-12),
                    fall_transition: table(5e-12, 0.2e-12),
                }],
                power_arcs: vec![PowerArc {
                    related_pin: "A".into(),
                    pin: "Y".into(),
                    rise_energy: Lut2::constant(1e-18),
                    fall_energy: Lut2::constant(1e-18),
                }],
                leakage_states: vec![(0, 1e-9)],
                ff: None,
                drive: 1,
            });
        }
        let dff_fn = LogicFunction::from_eval(&["D"], |b| b & 1 != 0);
        lib.add_cell(Cell {
            name: "DFFx1".to_string(),
            area: 0.2,
            pins: vec![
                Pin::input("D", 1e-15),
                {
                    let mut p = Pin::input("CLK", 1e-15);
                    p.is_clock = true;
                    p
                },
                Pin::output("Q", dff_fn),
            ],
            arcs: vec![
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "Q".into(),
                    kind: ArcKind::ClockToQ,
                    sense: TimingSense::NonUnate,
                    cell_rise: table(50e-12, 1e-12),
                    cell_fall: table(50e-12, 1e-12),
                    rise_transition: table(5e-12, 0.2e-12),
                    fall_transition: table(5e-12, 0.2e-12),
                },
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "D".into(),
                    kind: ArcKind::Setup,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(30e-12),
                    cell_fall: Lut2::constant(30e-12),
                    rise_transition: Lut2::constant(0.0),
                    fall_transition: Lut2::constant(0.0),
                },
                TimingArc {
                    related_pin: "CLK".into(),
                    pin: "D".into(),
                    kind: ArcKind::Hold,
                    sense: TimingSense::NonUnate,
                    cell_rise: Lut2::constant(5e-12),
                    cell_fall: Lut2::constant(5e-12),
                    rise_transition: Lut2::constant(0.0),
                    fall_transition: Lut2::constant(0.0),
                },
            ],
            power_arcs: vec![],
            leakage_states: vec![(0, 2e-9)],
            ff: Some(FfSpec {
                clocked_on: "CLK".into(),
                next_state: "D".into(),
                clear: None,
            }),
            drive: 1,
        });
        lib
    }

    #[test]
    fn inverter_chain_delay_adds_up() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("chain");
        let mut x = b.input("in");
        for _ in 0..4 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        // Each stage: 10 ps + load-dependent term (one INV sink = 1 fF plus
        // wire). Expect ≈ 4 × ~11.4 ps.
        assert!(
            report.critical_path_delay > 40e-12 && report.critical_path_delay < 60e-12,
            "delay = {:.2} ps",
            report.critical_path_delay * 1e12
        );
        // Path has startpoint + 4 stages.
        assert_eq!(report.critical_path.len(), 5);
    }

    #[test]
    fn register_to_register_includes_clkq_and_setup() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("r2r");
        let clk = b.clock_input("clk");
        let din = b.input("din");
        let q1 = b.dff(din, clk, 1);
        let mut x = q1;
        for _ in 0..2 {
            x = b.inv(x, 1);
        }
        let _q2 = b.dff(x, clk, 1);
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        // clk→Q (~50) + 2 × INV (~11) + setup (30) ≈ 102 ps.
        assert!(
            (95e-12..120e-12).contains(&report.critical_path_delay),
            "delay = {:.2} ps",
            report.critical_path_delay * 1e12
        );
        assert!(report.endpoint.contains("/D"));
        // Hold is clean: min path 2 INVs ≈ 22 ps > 5 ps hold.
        assert!(report.worst_hold_slack > 0.0);
    }

    #[test]
    fn deeper_chain_is_slower_and_fmax_inverts() {
        let lib = synth_lib();
        let build = |n: usize| {
            let mut b = DesignBuilder::new("chain");
            let mut x = b.input("in");
            for _ in 0..n {
                x = b.inv(x, 1);
            }
            b.mark_output(x);
            b.finish()
        };
        let r4 = analyze(&build(4), &lib, &StaConfig::default()).unwrap();
        let r16 = analyze(&build(16), &lib, &StaConfig::default()).unwrap();
        assert!(r16.critical_path_delay > 3.0 * r4.critical_path_delay);
        assert!(r16.fmax() < r4.fmax());
    }


    #[test]
    fn worst_paths_are_sorted_and_bounded() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("multi");
        let clk = b.clock_input("clk");
        let din = b.input("din");
        // Three register-to-register paths of different depths.
        let q = b.dff(din, clk, 1);
        for depth in [1usize, 3, 6] {
            let mut x = q;
            for _ in 0..depth {
                x = b.inv(x, 1);
            }
            let _ = b.dff(x, clk, 1);
        }
        let d = b.finish();
        let report = analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(report.worst_paths.len() >= 3);
        for w in report.worst_paths.windows(2) {
            assert!(w[0].path_delay >= w[1].path_delay, "sorted descending");
        }
        assert!(
            (report.worst_paths[0].path_delay - report.critical_path_delay).abs() < 1e-15,
            "first summary is the critical path"
        );
        let total: usize = report.slack_histogram.iter().sum();
        assert_eq!(total, report.endpoint_count, "every endpoint lands in a bin");
    }

    #[test]
    fn unmapped_cell_is_reported() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("bad");
        let x = b.input("in");
        let _ = b.nand2(x, x, 1); // NAND2x1 not in the synthetic library
        let d = b.finish();
        assert!(matches!(
            analyze(&d, &lib, &StaConfig::default()),
            Err(StaError::UnmappedCell { .. })
        ));
    }

    #[test]
    fn slack_against_period() {
        let lib = synth_lib();
        let mut b = DesignBuilder::new("chain");
        let mut x = b.input("in");
        for _ in 0..4 {
            x = b.inv(x, 1);
        }
        b.mark_output(x);
        let d = b.finish();
        let cfg = StaConfig {
            clock_period: 1e-9,
            ..StaConfig::default()
        };
        let report = analyze(&d, &lib, &cfg).unwrap();
        assert!(report.worst_slack > 0.0, "1 ns period is easy to meet");
        let zero = analyze(&d, &lib, &StaConfig::default()).unwrap();
        assert!(zero.worst_slack < 0.0, "0 ns period is never met");
    }
}
