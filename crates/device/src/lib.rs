#![warn(missing_docs)]
//! Cryogenic-aware compact model for 5-nm FinFET transistors.
//!
//! This crate is the bottom of the `cryo-soc` stack. It provides:
//!
//! - [`ModelCard`] — a BSIM-CMG-flavoured parameter set covering the effects
//!   the paper calibrates: work-function/interface-trap subthreshold
//!   behaviour, field-dependent mobility, series resistance, drain-induced
//!   barrier lowering, velocity saturation, and the cryogenic extensions
//!   (band-tail effective temperature, threshold-voltage shift, scattering
//!   temperature coefficients).
//! - [`FinFet`] — an evaluated device at a given temperature and fin count,
//!   producing smooth drain current and terminal capacitances suitable for
//!   Newton-based circuit simulation.
//! - [`silicon::VirtualWafer`] — the "measurement" substitute: a hidden
//!   reference device plus instrument noise, sampled at 300 K and 10 K.
//! - [`calibrate`] — staged parameter extraction that reproduces the paper's
//!   flow (subthreshold → mobility → series R → DIBL/velocity saturation →
//!   cryogenic coefficients) using a Nelder–Mead optimizer.
//! - [`metrics`] — figure-of-merit extraction (Vth, SS, Ion, Ioff) from I–V
//!   sweeps.
//!
//! # Example
//!
//! ```
//! use cryo_device::{FinFet, ModelCard, Polarity};
//!
//! let card = ModelCard::nominal(Polarity::N);
//! let dev300 = FinFet::new(&card, 300.0, 1);
//! let dev10 = FinFet::new(&card, 10.0, 1);
//! // Leakage collapses at cryogenic temperature, on-current barely moves.
//! let ioff_ratio = dev300.ids(0.0, 0.7) / dev10.ids(0.0, 0.7);
//! let ion_ratio = dev300.ids(0.7, 0.7) / dev10.ids(0.7, 0.7);
//! assert!(ioff_ratio > 1e3);
//! assert!(ion_ratio > 0.5 && ion_ratio < 2.0);
//! ```

pub mod audit;
pub mod calibrate;
pub mod metrics;
pub mod model;
pub mod montecarlo;
pub mod optimize;
pub mod params;
pub mod silicon;
pub mod thermal;

pub use audit::{audit_cards, DeviceFinding};
pub use calibrate::{CalibrationReport, Calibrator};
pub use metrics::{CornerScalars, DeviceMetrics, IvCurve, IvDataset};
pub use model::FinFet;
pub use montecarlo::{corner_die, mismatch_run, MismatchResult, VariationModel};
pub use params::{ModelCard, Polarity};
pub use silicon::VirtualWafer;

use std::error::Error;
use std::fmt;

/// Error type for device-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A model-card parameter is outside its physical range.
    InvalidParameter {
        /// Parameter name as it appears on the model card.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// Calibration could not reach the requested residual.
    CalibrationFailed {
        /// Stage that failed.
        stage: &'static str,
        /// Final residual (RMS decades of current error).
        residual: f64,
        /// Residual the caller asked for.
        target: f64,
    },
    /// A dataset did not contain the sweep required by a calibration stage.
    MissingSweep {
        /// Description of the missing sweep.
        what: &'static str,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "model parameter {name} = {value} violates {constraint}"),
            DeviceError::CalibrationFailed {
                stage,
                residual,
                target,
            } => write!(
                f,
                "calibration stage {stage} stalled at residual {residual:.4} (target {target:.4})"
            ),
            DeviceError::MissingSweep { what } => {
                write!(f, "measurement dataset lacks required sweep: {what}")
            }
        }
    }
}

impl Error for DeviceError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;
