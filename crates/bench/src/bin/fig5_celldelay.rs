//! Regenerates Fig. 5: standard-cell delay histograms at 300 K and 10 K.
use cryo_core::experiments::fig5_cell_delays;

fn main() {
    let flow = cryo_bench::flow_from_args();
    let r = fig5_cell_delays(&flow).expect("fig5");
    cryo_bench::maybe_write_json("fig5", &r);
    println!(
        "=== Fig. 5: delay histogram across {} cells (paper: 200) ===",
        r.cell_count
    );
    println!(
        "bin width {:.0} ps; overlap {:.1} % (paper: 'large overlap')",
        r.bin_width * 1e12,
        r.overlap * 100.0
    );
    println!(
        "mean delay ratio 10K/300K: {:.3} (paper: slight increase)",
        r.mean_delay_ratio
    );
    println!(
        "library leakage reduction at 10 K: {:.0}x (paper: 'almost negligible')",
        r.leakage_reduction
    );
    let n = r.counts_300k.len().max(r.counts_10k.len()).min(44);
    let peak = r
        .counts_300k
        .iter()
        .chain(&r.counts_10k)
        .copied()
        .max()
        .unwrap_or(1) as f64;
    println!("{:>8}  {:<26} {:<26}", "delay", "300 K", "10 K");
    for i in 0..n {
        let c300 = r.counts_300k.get(i).copied().unwrap_or(0);
        let c10 = r.counts_10k.get(i).copied().unwrap_or(0);
        println!(
            "{:>6.0}ps  {:<26} {:<26}",
            i as f64 * r.bin_width * 1e12,
            cryo_bench::bar(c300 as f64, peak, 24),
            cryo_bench::bar(c10 as f64, peak, 24)
        );
    }
}
