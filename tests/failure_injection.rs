//! Failure injection: every engine reports structured errors instead of
//! panicking or hanging when handed defective inputs.

use cryo_soc::liberty::{LibertyError, Library, Lut2};
use cryo_soc::netlist::{DesignBuilder, NetlistError};
use cryo_soc::riscv::asm::assemble;
use cryo_soc::riscv::cpu::Cpu;
use cryo_soc::riscv::RiscvError;
use cryo_soc::spice::{dc_operating_point, Circuit, Source, SpiceError, GROUND};
use cryo_soc::sta::{analyze, StaConfig, StaError};

#[test]
fn conflicting_ideal_sources_are_singular_or_unsolvable() {
    // Two ideal voltage sources forcing different values onto one node.
    let mut c = Circuit::new();
    let n = c.node("n");
    c.vsource("V1", n, GROUND, Source::dc(1.0));
    c.vsource("V2", n, GROUND, Source::dc(2.0));
    c.resistor("R", n, GROUND, 1e3);
    let r = dc_operating_point(&c);
    assert!(
        matches!(
            r,
            Err(SpiceError::SingularMatrix { .. }) | Err(SpiceError::NoConvergence { .. })
        ),
        "got {r:?}"
    );
}

#[test]
fn empty_circuit_is_rejected_cleanly() {
    let c = Circuit::new();
    assert!(matches!(
        dc_operating_point(&c),
        Err(SpiceError::EmptyCircuit)
    ));
}

#[test]
fn combinational_loop_is_detected_by_sta() {
    // Ring of two inverters with no register: a combinational loop.
    let mut lib = Library::new("loop_lib", 300.0, 0.7);
    let inv_fn = cryo_soc::liberty::LogicFunction::from_eval(&["A"], |b| b & 1 == 0);
    lib.add_cell(cryo_soc::liberty::Cell {
        name: "INVx1".into(),
        area: 0.05,
        pins: vec![
            cryo_soc::liberty::Pin::input("A", 1e-15),
            cryo_soc::liberty::Pin::output("Y", inv_fn),
        ],
        arcs: vec![cryo_soc::liberty::TimingArc {
            related_pin: "A".into(),
            pin: "Y".into(),
            kind: cryo_soc::liberty::ArcKind::Combinational,
            sense: cryo_soc::liberty::TimingSense::NegativeUnate,
            cell_rise: Lut2::constant(10e-12),
            cell_fall: Lut2::constant(10e-12),
            rise_transition: Lut2::constant(5e-12),
            fall_transition: Lut2::constant(5e-12),
        }],
        power_arcs: vec![],
        leakage_states: vec![(0, 1e-9)],
        ff: None,
        drive: 1,
    });
    let mut b = DesignBuilder::new("ring");
    let fb = b.net("feedback");
    let y1 = b.inv(fb, 1);
    let y2 = b.inv(y1, 1);
    b.alias_with_buffer(y2, fb); // BUFx2 closes the loop
    b.mark_output(y2);
    // Library lacks BUFx2 -> unmapped-cell error first; add it.
    let buf_fn = cryo_soc::liberty::LogicFunction::from_eval(&["A"], |bits| bits & 1 != 0);
    let mut buf = lib.cell("INVx1").unwrap().clone();
    buf.name = "BUFx2".into();
    buf.pins[1].function = Some(buf_fn);
    lib.add_cell(buf);
    let design = b.finish();
    let err = analyze(&design, &lib, &StaConfig::default()).unwrap_err();
    assert!(matches!(err, StaError::CombinationalLoop { .. }), "{err}");
}

#[test]
fn unmapped_cell_is_reported_by_netlist_check() {
    let mut b = DesignBuilder::new("bad");
    let x = b.input("x");
    let _ = b.gate("FANTASYx9", &[x]);
    let design = b.finish();
    let lib = Library::new("empty", 300.0, 0.7);
    assert!(matches!(
        design.check(&lib),
        Err(NetlistError::UnmappedCell { .. })
    ));
}

#[test]
fn malformed_tables_are_rejected() {
    assert!(matches!(
        Lut2::new(vec![2.0, 1.0], vec![1.0], vec![0.0, 0.0]),
        Err(LibertyError::MalformedTable { .. })
    ));
}

#[test]
fn cpu_faults_on_out_of_range_access() {
    let program = assemble(
        "li a0, 0x7fffffff
         slli a0, a0, 8
         ld a1, 0(a0)
         ecall",
    )
    .unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    let err = cpu.run(100).unwrap_err();
    assert!(matches!(err, RiscvError::MemoryFault { .. }), "{err}");
}

#[test]
fn cpu_faults_on_illegal_instruction() {
    let program = assemble("nop\necall").unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    // Overwrite the nop with an undecodable word.
    cpu.write_mem(0x1000, &0xffff_ffffu32.to_le_bytes())
        .unwrap();
    let err = cpu.run(10).unwrap_err();
    assert!(
        matches!(err, RiscvError::IllegalInstruction { .. }),
        "{err}"
    );
}

#[test]
fn assembler_reports_line_numbers() {
    let err = assemble("nop\nnop\nbogus_mnemonic a0").unwrap_err();
    match err {
        RiscvError::Asm { line, .. } => assert_eq!(line, 3),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn infinite_loop_hits_budget_not_hang() {
    let program = assemble("spin: j spin").unwrap();
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    assert!(matches!(
        cpu.run(10_000),
        Err(RiscvError::Timeout { executed: 10_000 })
    ));
}
