//! Vendored subset of the `serde_json` API: `to_string`, `to_string_pretty`,
//! `from_str`, over the vendored serde [`Value`] data model.
//!
//! Rendering follows real serde_json's conventions (unit enum variants as
//! bare strings, `Option` as `null`, tuples as arrays, non-finite floats as
//! `null`), and the parser accepts the full JSON grammar including exponent
//! notation, so cache files written by the real crates parse unchanged.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// serde_json signature so call sites keep their error handling.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails for the vendored data model (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------
// Writer
// ------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                write_value(&items[i], out, indent, depth + 1);
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
                let (k, v) = &fields[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // f64 Display is the shortest decimal that round-trips, and always a
        // valid JSON number. Match serde_json by keeping a ".0" on integral
        // floats so readers see a float, not an integer.
        let s = format!("{n}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------
// Parser
// ------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// [`Error`] with a byte offset on malformed input.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number: missing fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number: missing exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scientific_notation_and_nesting() {
        let v = parse(r#"{"a":5.6e-16,"b":[1,2.5,-3e2],"c":null,"d":"x","e":true}"#).unwrap();
        assert_eq!(v.get("a").as_f64(), Some(5.6e-16));
        assert_eq!(v.get("b"), &Value::Array(vec![
            Value::Number(1.0),
            Value::Number(2.5),
            Value::Number(-300.0),
        ]));
        assert_eq!(v.get("c"), &Value::Null);
        assert_eq!(v.get("d").as_str(), Some("x"));
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("INVx1".into())),
            ("vals".into(), Value::Array(vec![Value::Number(1e-12), Value::Number(2.0)])),
            ("opt".into(), Value::Null),
        ]);
        let compact = to_string(&ValueWrap(&v)).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&ValueWrap(&v)).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""line\nquote\"tab\tuA""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\"tab\tuA"));
    }

    struct ValueWrap<'a>(&'a Value);
    impl serde::Serialize for ValueWrap<'_> {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
