#![warn(missing_docs)]
//! Hyperdimensional computing primitives.
//!
//! The paper's second classifier (Sec. V-B) represents I/Q points as binary
//! *hypervectors*: the bind operation ⊕ is a bitwise XOR, similarity is the
//! Hamming distance, and values are encoded through an item memory of
//! random hypervectors covering the quantized value range. This crate is
//! the reference ("golden") implementation the RISC-V kernel is verified
//! against bit-for-bit, plus the general algebra (bundling, permutation,
//! level encoding) a reusable HDC library ships.

pub mod encoder;
pub mod hypervector;
pub mod item_memory;

pub use encoder::IqEncoder;
pub use hypervector::Hv128;
pub use item_memory::ItemMemory;

/// Classify by minimum Hamming distance to a set of class hypervectors;
/// returns the winning class index (ties resolved toward the lower index,
/// matching the RISC-V kernel's strict-less comparison).
#[must_use]
pub fn nearest_class(query: Hv128, classes: &[Hv128]) -> usize {
    let mut best = 0usize;
    let mut best_d = u32::MAX;
    for (i, c) in classes.iter().enumerate() {
        let d = query.hamming(*c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_class_prefers_lower_on_tie() {
        let a = Hv128::new(0, 0);
        let classes = [Hv128::new(1, 0), Hv128::new(2, 0)]; // both distance 1
        assert_eq!(nearest_class(a, &classes), 0);
    }

    #[test]
    fn nearest_class_finds_exact_match() {
        let q = Hv128::new(0xDEAD, 0xBEEF);
        let classes = [Hv128::new(1, 2), q, Hv128::new(3, 4)];
        assert_eq!(nearest_class(q, &classes), 1);
    }
}
