#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // net ids are the natural index domain
//! Static timing analysis over characterized libraries.
//!
//! `cryo-sta` plays Synopsys PrimeTime's role in the paper's flow: given the
//! gate-level SoC netlist from `cryo-netlist` and a characterized
//! [`cryo_liberty::Library`] corner, it levelizes the combinational graph,
//! propagates arrival times and slews through the NLDM tables, accounts for
//! SRAM macro launch/capture, and reports the critical path — the number
//! behind the paper's Table 1 (1.04 ns at 300 K vs 1.09 ns at 10 K).
//!
//! The analysis is graph-based worst-slope STA:
//!
//! - **Startpoints**: primary inputs (driven with a configurable input
//!   slew), flip-flop `Q` pins (launched at `clk→Q`), and macro data
//!   outputs (launched at the macro's clock-to-out).
//! - **Propagation**: per-arc NLDM lookup of delay and output transition at
//!   the net's load (pin capacitances plus a fanout-based wire estimate).
//! - **Endpoints**: flip-flop `D` pins (capture at period − setup), macro
//!   inputs, and primary outputs.
//!
//! Hold analysis runs the dual min-propagation against the hold margins.

pub mod audit;
mod engine;
pub mod counters;
mod report;

pub use audit::audit_timing;
pub use engine::{analyze, MissingArcPolicy, StaConfig};
pub use report::{DegradeCause, DegradeKind, DegradeResolution, DegradedArc, PathStep, TimingReport};

/// Alias under the paper's name for the timing outcome of one corner.
pub type StaReport = TimingReport;

use std::error::Error;
use std::fmt;

/// STA errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// An instance references a cell missing from the library.
    UnmappedCell {
        /// Instance name.
        instance: String,
        /// Cell name.
        cell: String,
    },
    /// The combinational graph has a cycle (unbroken by registers).
    CombinationalLoop {
        /// Name of a net on the cycle.
        net: String,
    },
    /// The design has no timing endpoints.
    NoEndpoints,
    /// An arc lookup failed (injected fault) and the configured
    /// [`MissingArcPolicy`] is `Fail`.
    ArcLookupFault {
        /// Instance name.
        instance: String,
        /// Cell name.
        cell: String,
        /// Output pin of the failed arc.
        pin: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnmappedCell { instance, cell } => {
                write!(f, "instance {instance}: cell {cell} not in library")
            }
            StaError::CombinationalLoop { net } => {
                write!(f, "combinational loop through {net}")
            }
            StaError::NoEndpoints => write!(f, "design has no timing endpoints"),
            StaError::ArcLookupFault {
                instance,
                cell,
                pin,
            } => write!(
                f,
                "instance {instance}: arc lookup for {cell}/{pin} failed and policy is Fail"
            ),
        }
    }
}

impl Error for StaError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StaError>;
