//! Malformed environment knobs fail structurally at flow start — before a
//! single solve — naming the variable, the rejected value, and the reason.
//!
//! Environment variables are process-global, so this file holds exactly
//! one `#[test]` that walks every case sequentially; cargo gives each test
//! binary its own process, keeping the mutations invisible to the rest of
//! the suite.

use cryo_soc::core::supervise::{validate_env, Supervisor, SupervisorConfig};
use cryo_soc::core::{CoreError, CryoFlow, FlowConfig, SurrogatePolicy};

#[test]
fn malformed_env_is_rejected_at_flow_start_with_structured_errors() {
    let set = |k: &str, v: &str| std::env::set_var(k, v);
    let unset = |k: &str| std::env::remove_var(k);

    // Clean slate: both knobs parse to None.
    unset("CRYO_FAULTS");
    unset("CRYO_JOBS");
    let env = validate_env().expect("unset env is valid");
    assert!(env.fault_plan.is_none());
    assert!(env.jobs.is_none());

    // Valid specs parse.
    set("CRYO_FAULTS", "seed=42,dc=0.05,scope=INVx2,max=3");
    set("CRYO_JOBS", "4");
    let env = validate_env().expect("valid env");
    let plan = env.fault_plan.expect("plan parsed");
    assert_eq!(plan.seed, 42);
    assert_eq!(plan.scope.as_deref(), Some("INVx2"));
    assert_eq!(env.jobs, Some(4));

    // Malformed CRYO_FAULTS: each failure mode names the offending pair.
    for (spec, needle) in [
        ("dc=2.5", "outside [0, 1]"),
        ("dc=abc", "not a number"),
        ("typo=0.5", "unknown key"),
        ("justgarbage", "not a key=value pair"),
        ("seed=-1", "not a u64"),
    ] {
        set("CRYO_FAULTS", spec);
        match validate_env() {
            Err(CoreError::Config { var, value, reason }) => {
                assert_eq!(var, "CRYO_FAULTS");
                assert_eq!(value, spec);
                assert!(reason.contains(needle), "{spec}: {reason}");
            }
            other => panic!("{spec}: expected Config error, got {other:?}"),
        }
    }
    unset("CRYO_FAULTS");

    // Malformed CRYO_JOBS.
    for bad in ["many", "-2", "1.5"] {
        set("CRYO_JOBS", bad);
        match validate_env() {
            Err(CoreError::Config { var, value, .. }) => {
                assert_eq!(var, "CRYO_JOBS");
                assert_eq!(value, bad);
            }
            other => panic!("{bad}: expected Config error, got {other:?}"),
        }
    }

    // Malformed CRYO_KERNEL / CRYO_WARMSTART: the kernel selector and the
    // warm-start switch are pure throughput knobs (results are byte-identical
    // either way), but typos still fail structurally rather than silently
    // falling back to the default.
    unset("CRYO_JOBS");
    for bad in ["fast", "Dense", "sparse,dense", "1"] {
        set("CRYO_KERNEL", bad);
        match validate_env() {
            Err(CoreError::Config { var, value, reason }) => {
                assert_eq!(var, "CRYO_KERNEL");
                assert_eq!(value, bad);
                assert!(reason.contains("dense"), "{bad}: {reason}");
            }
            other => panic!("{bad}: expected Config error, got {other:?}"),
        }
    }
    set("CRYO_KERNEL", "dense");
    let env = validate_env().expect("valid kernel spec");
    assert_eq!(env.kernel, Some(cryo_soc::spice::KernelKind::Dense));
    unset("CRYO_KERNEL");
    let env = validate_env().expect("unset kernel is valid");
    assert!(env.kernel.is_none());
    for bad in ["true", "On", "0", "yes"] {
        set("CRYO_WARMSTART", bad);
        match validate_env() {
            Err(CoreError::Config { var, value, reason }) => {
                assert_eq!(var, "CRYO_WARMSTART");
                assert_eq!(value, bad);
                assert!(reason.contains("on"), "{bad}: {reason}");
            }
            other => panic!("{bad}: expected Config error, got {other:?}"),
        }
    }
    set("CRYO_WARMSTART", "off");
    let env = validate_env().expect("valid warm-start spec");
    assert_eq!(env.warmstart, Some(false));
    unset("CRYO_WARMSTART");
    let env = validate_env().expect("unset warm-start is valid");
    assert!(env.warmstart.is_none());

    // Malformed CRYO_SURROGATE: garbage names the variable and the reason;
    // a valid spec round-trips into the parsed policy.
    unset("CRYO_JOBS");
    for (bad, needle) in [
        ("on", "unknown surrogate policy"),
        ("predict:", "bad max_rel_err"),
        ("predict:zero", "bad max_rel_err"),
        ("predict:-0.5", "finite and > 0"),
        ("predict:inf", "finite and > 0"),
        ("predict:nan", "finite and > 0"),
    ] {
        set("CRYO_SURROGATE", bad);
        match validate_env() {
            Err(CoreError::Config { var, value, reason }) => {
                assert_eq!(var, "CRYO_SURROGATE");
                assert_eq!(value, bad);
                assert!(reason.contains(needle), "{bad}: {reason}");
            }
            other => panic!("{bad}: expected Config error, got {other:?}"),
        }
    }
    set("CRYO_SURROGATE", "predict:0.4");
    let env = validate_env().expect("valid surrogate spec");
    assert_eq!(
        env.surrogate_policy,
        SurrogatePolicy::PredictWithFallback { max_rel_err: 0.4 }
    );
    unset("CRYO_SURROGATE");
    let env = validate_env().expect("unset surrogate is valid");
    assert_eq!(env.surrogate_policy, SurrogatePolicy::Off);

    // Malformed CRYO_CORNERS: empty sweeps, duplicates, and temperatures
    // outside the calibrated range are all structural rejections; a valid
    // spec parses into the canonical (normalized) corner set.
    for (bad, needle) in [
        ("", "empty corner spec"),
        ("V=0.7", "missing T axis"),
        ("T=", "empty value"),
        ("T=300,300", "duplicate temperature"),
        ("T=300;T=77", "duplicate T axis"),
        ("T=1.0", "outside the calibrated range"),
        ("T=500", "outside the calibrated range"),
        ("T=300;V=0.7005", "not on the 1 mV grid"),
        ("T=300;P=fs", "unknown process corner"),
    ] {
        set("CRYO_CORNERS", bad);
        match validate_env() {
            Err(CoreError::Config { var, value, reason }) => {
                assert_eq!(var, "CRYO_CORNERS");
                assert_eq!(value, bad);
                assert!(reason.contains(needle), "{bad}: {reason}");
            }
            other => panic!("{bad}: expected Config error, got {other:?}"),
        }
    }
    set("CRYO_CORNERS", "T=10,300,77;P=ss,tt");
    let env = validate_env().expect("valid corner spec");
    let spec = env.corner_spec.expect("spec parsed");
    assert_eq!(spec.spec_string(), "T=300,77,10;V=0.7;P=tt,ss");
    assert_eq!(spec.corners().len(), 6);
    unset("CRYO_CORNERS");
    let env = validate_env().expect("unset corners is valid");
    assert!(env.corner_spec.is_none());

    // A malformed corner spec also stops the farm before any state exists.
    set("CRYO_CORNERS", "T=999");
    {
        use cryo_soc::core::corners::{CornerFarm, CornerSpec, FarmConfig};
        let dir = std::env::temp_dir().join("cryo_config_validation_farm");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = FlowConfig::fast(&dir);
        cfg.fault_plan = None;
        let farm = CornerFarm::new(
            CryoFlow::new(cfg),
            FarmConfig::new(CornerSpec::parse("T=300").unwrap()),
        );
        match farm.run() {
            Err(CoreError::Config { var, .. }) => assert_eq!(var, "CRYO_CORNERS"),
            other => panic!("expected Config error from farm run(), got {other:?}"),
        }
        assert!(
            !dir.join("checkpoints").exists(),
            "no farm state may be created under a rejected configuration"
        );
    }
    unset("CRYO_CORNERS");

    // The supervisor refuses to start any stage under a malformed knob:
    // the error comes back before a checkpoint store even exists.
    set("CRYO_JOBS", "many");
    let dir = std::env::temp_dir().join("cryo_config_validation_it");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FlowConfig::fast(&dir);
    cfg.fault_plan = None;
    let sup = Supervisor::new(CryoFlow::new(cfg), SupervisorConfig::default());
    match sup.run() {
        Err(CoreError::Config { var, .. }) => assert_eq!(var, "CRYO_JOBS"),
        other => panic!("expected Config error from run(), got {other:?}"),
    }
    assert!(
        !dir.join("checkpoints").exists(),
        "no pipeline state may be created under a rejected configuration"
    );
    unset("CRYO_JOBS");
}
