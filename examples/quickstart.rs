//! Quickstart: can an off-the-shelf RISC-V SoC keep up with a quantum
//! computer's readout? Classify a 27-qubit device with both of the paper's
//! algorithms, time them on the cycle-accurate SoC model, and check the
//! decoherence budget.
//!
//! Run with: `cargo run --release --example quickstart`

use cryo_soc::core::{CryoFlow, FlowConfig, Workload};
use cryo_soc::qubit::{classification_time, state_fidelity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = CryoFlow::new(FlowConfig::fast("data"));

    println!("== cryo-soc quickstart: 27 qubits, IBM-Falcon-class readout ==\n");

    // 1. Time the two classifiers on the Rocket-class pipeline model.
    let knn = flow.run_workload(Workload::Knn { n: 27 })?;
    let hdc = flow.run_workload(Workload::Hdc { n: 27, cpop: false })?;
    println!("kNN: {:>6.1} cycles/classification", knn.cycles_per_item);
    println!(
        "HDC: {:>6.1} cycles/classification ({:.1}x slower — software popcount)",
        hdc.cycles_per_item,
        hdc.cycles_per_item / knn.cycles_per_item
    );

    // 2. Check against the decoherence deadline at a 1 GHz clock.
    let budget = 110e-6;
    let t_knn = classification_time(27, knn.cycles_per_item, 1e9);
    println!(
        "\nClassifying all 27 qubits takes {:.2} us of the {:.0} us decoherence budget",
        t_knn * 1e6,
        budget * 1e6
    );
    println!(
        "state fidelity remaining after classification: {:.4}",
        state_fidelity(t_knn, budget)
    );

    // 3. How far does it scale? (The paper's headline: ~1500 qubits.)
    let n_max = cryo_soc::qubit::max_qubits_within_budget(budget, 1e9, |_| knn.cycles_per_item);
    println!("at this rate the SoC keeps up with ~{n_max} qubits before becoming the bottleneck");
    Ok(())
}
