//! Always-on per-thread counters of NLDM arc evaluations.
//!
//! The supervised pipeline proves "a resumed run repeats no STA work" the
//! same way checkpoint tests prove "no re-simulation" at the SPICE layer:
//! the engine bumps a per-thread counter for every timing-arc evaluation,
//! and resume tests assert the counter stays at zero when a stage is
//! restored from its checkpoint. The take/add pair mirrors
//! `cryo_spice::fault::{take_sim_counts, add_sim_counts}` so a supervisor
//! running a stage on a watchdog thread can fold the stage's work back
//! into its own thread's ledger.

use std::cell::Cell;

thread_local! {
    static ARC_EVALS: Cell<u64> = const { Cell::new(0) };
}

/// Number of timing-arc evaluations this thread has performed.
#[must_use]
pub fn eval_count() -> u64 {
    ARC_EVALS.with(Cell::get)
}

/// Reset this thread's arc-evaluation counter to zero.
pub fn reset_eval_count() {
    ARC_EVALS.with(|c| c.set(0));
}

/// Read *and zero* this thread's arc-evaluation counter.
#[must_use]
pub fn take_eval_count() -> u64 {
    ARC_EVALS.with(|c| c.replace(0))
}

/// Add externally-accumulated evaluations onto this thread's counter.
pub fn add_eval_count(extra: u64) {
    ARC_EVALS.with(|c| c.set(c.get() + extra));
}

pub(crate) fn count_arc_eval() {
    ARC_EVALS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_add_round_trip() {
        reset_eval_count();
        count_arc_eval();
        count_arc_eval();
        let taken = take_eval_count();
        assert_eq!(taken, 2);
        assert_eq!(eval_count(), 0, "take drains");
        add_eval_count(taken);
        add_eval_count(3);
        assert_eq!(eval_count(), 5);
        reset_eval_count();
    }
}
