//! Waveform container and the measurements characterization needs.

/// A sampled waveform: strictly increasing times with one value each.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Build a waveform from matching time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or are empty.
    #[must_use]
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(!t.is_empty(), "empty waveform");
        Self { t, v }
    }

    /// Time samples.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Value samples.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Linear interpolation at time `time`, clamped at the ends.
    #[must_use]
    pub fn value_at(&self, time: f64) -> f64 {
        if time <= self.t[0] {
            return self.v[0];
        }
        let last = self.t.len() - 1;
        if time >= self.t[last] {
            return self.v[last];
        }
        let idx = self.t.partition_point(|&x| x < time);
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        v0 + (v1 - v0) * (time - t0) / (t1 - t0).max(1e-30)
    }

    /// First time after `after` at which the waveform crosses `level` in the
    /// given direction (`rising = true` for low→high).
    #[must_use]
    pub fn cross(&self, level: f64, rising: bool, after: f64) -> Option<f64> {
        for i in 1..self.t.len() {
            if self.t[i] <= after {
                continue;
            }
            let (v0, v1) = (self.v[i - 1], self.v[i]);
            let hit = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if hit {
                let f = (level - v0) / (v1 - v0);
                let tc = self.t[i - 1] + f * (self.t[i] - self.t[i - 1]);
                if tc > after {
                    return Some(tc);
                }
            }
        }
        None
    }

    /// Transition time between the `frac_lo` and `frac_hi` fractions of a
    /// swing from `v_start` to `v_end` (works for rising and falling edges).
    ///
    /// Returns `None` when either crossing is missing.
    #[must_use]
    pub fn transition_time(
        &self,
        v_start: f64,
        v_end: f64,
        frac_lo: f64,
        frac_hi: f64,
        after: f64,
    ) -> Option<f64> {
        let rising = v_end > v_start;
        let lvl_lo = v_start + (v_end - v_start) * frac_lo;
        let lvl_hi = v_start + (v_end - v_start) * frac_hi;
        let t_lo = self.cross(lvl_lo, rising, after)?;
        let t_hi = self.cross(lvl_hi, rising, t_lo)?;
        Some(t_hi - t_lo)
    }

    /// Trapezoidal integral of the waveform over its full span.
    #[must_use]
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            acc += 0.5 * (self.v[i] + self.v[i - 1]) * (self.t[i] - self.t[i - 1]);
        }
        acc
    }

    /// Trapezoidal integral restricted to `[t0, t1]`.
    #[must_use]
    pub fn integral_between(&self, t0: f64, t1: f64) -> f64 {
        let (t0, t1) = (t0.min(t1), t0.max(t1));
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            let (a, b) = (self.t[i - 1], self.t[i]);
            if b <= t0 || a >= t1 {
                continue;
            }
            let lo = a.max(t0);
            let hi = b.min(t1);
            let va = self.value_at(lo);
            let vb = self.value_at(hi);
            acc += 0.5 * (va + vb) * (hi - lo);
        }
        acc
    }

    /// Minimum sampled value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sampled value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Final sampled value.
    #[must_use]
    pub fn last(&self) -> f64 {
        *self.v.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 → 1 V linearly over 0..10 s.
        let t: Vec<f64> = (0..=10).map(f64::from).collect();
        let v: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();
        Waveform::new(t, v)
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert_eq!(w.value_at(-5.0), 0.0);
        assert_eq!(w.value_at(50.0), 1.0);
        assert!((w.value_at(2.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rising_cross() {
        let w = ramp();
        assert!((w.cross(0.5, true, 0.0).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(w.cross(0.5, false, 0.0), None);
        assert_eq!(w.cross(2.0, true, 0.0), None);
    }

    #[test]
    fn cross_respects_after() {
        let t = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let v = vec![0.0, 1.0, 0.0, 1.0, 0.0];
        let w = Waveform::new(t, v);
        let first = w.cross(0.5, true, 0.0).unwrap();
        let second = w.cross(0.5, true, first + 0.1).unwrap();
        assert!(second > first + 1.0);
    }

    #[test]
    fn transition_time_20_80() {
        let w = ramp();
        let tt = w.transition_time(0.0, 1.0, 0.2, 0.8, 0.0).unwrap();
        assert!((tt - 6.0).abs() < 1e-9);
    }

    #[test]
    fn falling_transition_time() {
        let t: Vec<f64> = (0..=10).map(f64::from).collect();
        let v: Vec<f64> = (0..=10).map(|i| 1.0 - f64::from(i) / 10.0).collect();
        let w = Waveform::new(t, v);
        let tt = w.transition_time(1.0, 0.0, 0.2, 0.8, 0.0).unwrap();
        assert!((tt - 6.0).abs() < 1e-9);
    }

    #[test]
    fn integral_of_ramp() {
        let w = ramp();
        assert!((w.integral() - 5.0).abs() < 1e-12);
        assert!((w.integral_between(0.0, 5.0) - 1.25).abs() < 1e-9);
        assert!(
            (w.integral_between(5.0, 0.0) - 1.25).abs() < 1e-9,
            "order-insensitive"
        );
    }

    #[test]
    fn extremes() {
        let w = ramp();
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 1.0);
        assert_eq!(w.last(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_vectors_panic() {
        let _ = Waveform::new(vec![0.0, 1.0], vec![0.0]);
    }
}
