//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no registry access, so these derives are written
//! against `proc_macro` alone — no syn/quote. They parse the item's token
//! stream directly, which covers exactly the shapes this workspace derives:
//! structs with named fields (optionally carrying `#[serde(skip)]`) and enums
//! with unit variants. Anything fancier fails loudly with `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Is this token the punctuation character `c`?
fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Collect leading `#[...]` attributes, returning whether any is
/// `#[serde(skip)]` (or `skip_serializing`/`skip_deserializing`, which this
/// workspace treats identically).
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let body = g.stream().to_string();
            if body.starts_with("serde") && body.contains("skip") {
                skip = true;
            }
            i += 2;
        } else {
            break;
        }
    }
    (i, skip)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = eat_attrs(&tokens, 0);
    i = eat_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if i < tokens.len() && is_punct(&tokens[i], '<') {
        return Err(format!("{name}: generic types are not supported by the vendored serde derive"));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(tt) if is_punct(tt, ';') && kind == "struct" => TokenStream::new(),
        other => return Err(format!("{name}: unsupported item body {other:?}")),
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => parse_struct_fields(&name, &body).map(|fields| Item::Struct { name, fields }),
        "enum" => parse_enum_variants(&name, &body).map(|variants| Item::Enum { name, variants }),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_struct_fields(name: &str, body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let (next, skip) = eat_attrs(body, i);
        i = eat_vis(body, next);
        let field_name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("{name}: expected field name, got {other:?}")),
        };
        i += 1;
        if !matches!(body.get(i), Some(tt) if is_punct(tt, ':')) {
            return Err(format!(
                "{name}.{field_name}: tuple structs are not supported by the vendored serde derive"
            ));
        }
        i += 1;
        // Skip the type: everything up to the next comma outside `<...>`.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                tt if is_punct(tt, '<') => angle_depth += 1,
                tt if is_punct(tt, '>') => angle_depth -= 1,
                tt if is_punct(tt, ',') && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name: field_name,
            skip,
        });
    }
    Ok(fields)
}

fn parse_enum_variants(name: &str, body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let (next, _) = eat_attrs(body, i);
        i = next;
        let variant = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("{name}: expected variant name, got {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(tt) if is_punct(tt, ',') => i += 1,
            Some(_) => {
                return Err(format!(
                    "{name}::{variant}: only unit variants are supported by the vendored serde derive"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::Deserialize::from_value(obj.get(\"{0}\"))\
                             .map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"{name}.{0}: {{e}}\")))?,",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = ::serde::object_fields(v, \"{name}\")?;\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok(Self::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"invalid {name} variant: {{v:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
