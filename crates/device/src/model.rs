//! FinFET large-signal model evaluation.
//!
//! [`FinFet`] binds a [`ModelCard`] to an operating temperature and a fin
//! count, pre-computing every temperature-dependent quantity once so that the
//! per-bias-point evaluation inside the circuit simulator stays cheap. The
//! drain-current formulation is a charge-based EKV-style single expression —
//! smooth across weak/moderate/strong inversion and across the linear/
//! saturation boundary — with the cryogenic effect structure of the paper:
//!
//! * Boltzmann factors evaluated at the band-tail effective temperature
//!   (`T0`), which saturates the subthreshold swing at deep-cryogenic
//!   temperatures;
//! * threshold voltage increasing as the device cools (`TVTH`, `KT11`,
//!   `KT12`);
//! * phonon-limited mobility rising at low temperature (`UTE`) while surface
//!   roughness and Coulomb scattering (`UA1`, `UA2`, `UD1`, `EU1`) claw the
//!   gain back at high vertical field;
//! * temperature-dependent velocity saturation (`AT`, `AT1`) and saturation
//!   smoothing (`TMEXP`, `KSATIVT`).

use crate::params::ModelCard;
use crate::thermal::{cold_fraction, softplus, thermal_voltage, T_NOM};

/// A FinFET evaluated at a fixed temperature, ready for bias-point queries.
///
/// Construction pre-computes all temperature-dependent model quantities;
/// [`FinFet::ids`] then costs a handful of transcendental calls.
#[derive(Debug, Clone, PartialEq)]
pub struct FinFet {
    card: ModelCard,
    temp: f64,
    nfin: u32,
    // Pre-computed temperature-dependent quantities.
    vt: f64,
    vth_t: f64,
    u0_t: f64,
    ua_t: f64,
    ud_t: f64,
    eu_t: f64,
    vsat_t: f64,
    mexp_t: f64,
    ksativ_t: f64,
    i_floor_t: f64,
}

impl FinFet {
    /// Bind `card` to an operating `temp` (kelvin) with `nfin` parallel fins.
    ///
    /// # Panics
    ///
    /// Panics if `nfin == 0` or `temp < 0`; use [`ModelCard::validate`] to
    /// screen the card itself.
    #[must_use]
    pub fn new(card: &ModelCard, temp: f64, nfin: u32) -> Self {
        assert!(nfin > 0, "FinFET needs at least one fin");
        assert!(
            temp >= 0.0 && temp.is_finite(),
            "temperature must be >= 0 K"
        );
        let cf = cold_fraction(temp, card.t0);
        let vt = thermal_voltage(temp, card.t0);
        let teff = vt / crate::thermal::KB_OVER_Q;
        let vth_t = card.vth0 + card.tvth * cf + card.kt11 * cf * cf + card.kt12 * cf * cf * cf;
        let u0_t = card.u0 * (teff / T_NOM).powf(card.ute);
        let ua_t = card.ua * (1.0 + card.ua1 * cf + card.ua2 * cf * cf).max(0.0);
        let ud_t = card.ud * (1.0 + card.ud1 * cf).max(0.0);
        let eu_t = (card.eu * (1.0 + card.eu1 * cf)).max(0.1);
        let vsat_t = card.vsat * (1.0 + card.at * cf + card.at1 * cf * cf).max(0.05);
        let mexp_t = (card.mexp * (1.0 + card.tmexp * cf)).max(1.0);
        let ksativ_t = card.ksativ * (1.0 + card.ksativt * cf);
        // The leakage floor tracks the band-tail density `D0` and shrinks
        // mildly when cold (tunnelling-limited, not thermally limited).
        let i_floor_t = card.i_floor * card.d0 * (0.25 + 0.75 * teff / T_NOM);
        Self {
            card: card.clone(),
            temp,
            nfin,
            vt,
            vth_t,
            u0_t,
            ua_t,
            ud_t,
            eu_t,
            vsat_t,
            mexp_t,
            ksativ_t,
            i_floor_t,
        }
    }

    /// The model card this device was built from.
    #[must_use]
    pub fn card(&self) -> &ModelCard {
        &self.card
    }

    /// Operating temperature in kelvin.
    #[must_use]
    pub fn temp(&self) -> f64 {
        self.temp
    }

    /// Number of parallel fins.
    #[must_use]
    pub fn nfin(&self) -> u32 {
        self.nfin
    }

    /// Temperature-adjusted threshold voltage (magnitude) at zero drain bias.
    #[must_use]
    pub fn vth(&self) -> f64 {
        self.vth_t
    }

    /// Subthreshold ideality factor at the given drain bias magnitude.
    #[must_use]
    pub fn nfactor(&self, vds_abs: f64) -> f64 {
        1.0 + self.card.cit + self.card.cdsc + self.card.cdscd * vds_abs
    }

    /// Drain current in amperes for source-referenced terminal voltages.
    ///
    /// Sign conventions match SPICE: for an n-FinFET, positive `vgs`/`vds`
    /// produce positive drain current (into the drain). For a p-FinFET the
    /// same function is evaluated on mirrored voltages and the current sign
    /// is flipped, so `ids(-0.7, -0.7)` is a large negative number.
    #[must_use]
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let s = self.card.polarity.sign();
        let (vg, vd) = (s * vgs, s * vds);
        // The model core is defined for vd >= 0; for reversed terminals swap
        // source and drain (the device is symmetric) and negate.
        if vd >= 0.0 {
            s * self.ids_core(vg, vd)
        } else {
            // Swap: gate-to-"new source" voltage is vg - vd.
            -s * self.ids_core(vg - vd, -vd)
        }
    }

    /// Polarity-normalised core current (`vd >= 0`), per the whole device
    /// (all fins), always `>= 0`.
    fn ids_core(&self, vg: f64, vd: f64) -> f64 {
        let card = &self.card;
        let n = self.nfactor(vd);
        let vt = self.vt;
        // DIBL: the barrier drops with drain bias; PDIBL2 rolls the effect
        // off at high vd.
        let dibl = card.eta0 * vd / (1.0 + card.pdibl2 * vd);
        let vth = self.vth_t - dibl;

        // Two fixed-point refinements of the series-resistance voltage drop.
        // This keeps the expression explicit (and smooth for numerical
        // Jacobians) while capturing the linear-region R_sd degradation.
        let mut ids = self.ids_intrinsic(vg, vd, vth, n, vt);
        for _ in 0..2 {
            let ir_s = ids * card.rsw / self.nfin as f64;
            let ir_d = ids * card.rdw / self.nfin as f64;
            let vg_eff = vg - ir_s;
            let vd_eff = (vd - ir_s - ir_d).max(0.0);
            ids = self.ids_intrinsic(vg_eff, vd_eff, vth, n, vt);
        }
        ids + self.i_floor_t * self.nfin as f64 * (vd / (vd + 0.05)).max(0.0)
    }

    /// Intrinsic (resistance-free) channel current, all fins.
    fn ids_intrinsic(&self, vg: f64, vd: f64, vth: f64, n: f64, vt: f64) -> f64 {
        let card = &self.card;
        // Smoothed overdrive used by the mobility and vdsat expressions.
        let vov = n * vt * softplus((vg - vth) / (n * vt));
        // Vertical-field mobility degradation: phonon/surface-roughness term
        // with exponent EU plus a Coulomb term screened by carrier density.
        let mob_den = 1.0
            + (self.ua_t * (vov + 0.5 * vth).max(0.0)).powf(self.eu_t)
            + self.ud_t / (1.0 + 10.0 * vov);
        let ueff = self.u0_t / mob_den;
        // Saturation voltage from the velocity-saturation critical field.
        let esat_l = 2.0 * self.vsat_t * card.lg / ueff;
        let vdsat = self.ksativ_t * vov * esat_l / (vov + esat_l) + 2.0 * vt;
        // Smooth clamp of the drain bias (BSIM VDSEFF with MEXP).
        let ratio = (vd / vdsat).powf(self.mexp_t);
        let vdseff = vd / (1.0 + ratio).powf(1.0 / self.mexp_t);
        // Charge-based EKV pair: forward (source-side) and reverse
        // (drain-side) inversion charges.
        let half = 2.0 * n * vt;
        let qf = softplus((vg - vth) / half);
        let qr = softplus((vg - vth - n * vdseff) / half);
        let beta = ueff * card.cox * (card.weff() / card.lg) * self.nfin as f64;
        let core = 2.0 * n * beta * vt * vt * (qf * qf - qr * qr);
        // Channel-length modulation on the saturated part.
        core * (1.0 + card.pclm * (vd - vdseff))
    }

    /// Transconductance `dIds/dVgs` by central difference (A/V).
    #[must_use]
    pub fn gm(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1e-5;
        (self.ids(vgs + h, vds) - self.ids(vgs - h, vds)) / (2.0 * h)
    }

    /// Output conductance `dIds/dVds` by central difference (A/V).
    #[must_use]
    pub fn gds(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1e-5;
        (self.ids(vgs, vds + h) - self.ids(vgs, vds - h)) / (2.0 * h)
    }

    /// Total gate input capacitance (farads) — intrinsic channel plus both
    /// overlaps, all fins. Used as the Meyer-style constant gate load.
    #[must_use]
    pub fn cgg(&self) -> f64 {
        self.card.cgg_total() * self.nfin as f64
    }

    /// Gate-source lumped capacitance (farads): half the intrinsic channel
    /// charge plus the source overlap.
    #[must_use]
    pub fn cgs(&self) -> f64 {
        (0.5 * self.card.cgg_intrinsic() + self.card.cgso) * self.nfin as f64
    }

    /// Gate-drain lumped capacitance (farads): half the intrinsic channel
    /// charge plus the drain overlap (the Miller component).
    #[must_use]
    pub fn cgd(&self) -> f64 {
        (0.5 * self.card.cgg_intrinsic() + self.card.cgdo) * self.nfin as f64
    }

    /// Drain junction capacitance to ground (farads), all fins.
    #[must_use]
    pub fn cdb(&self) -> f64 {
        self.card.cjd * self.nfin as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;

    fn nfet(temp: f64) -> FinFet {
        FinFet::new(&ModelCard::nominal(Polarity::N), temp, 1)
    }

    fn pfet(temp: f64) -> FinFet {
        FinFet::new(&ModelCard::nominal(Polarity::P), temp, 1)
    }

    #[test]
    fn zero_bias_zero_current() {
        let d = nfet(300.0);
        assert_eq!(d.ids(0.0, 0.0), 0.0);
        assert_eq!(d.ids(0.7, 0.0), 0.0);
    }

    #[test]
    fn ids_monotone_in_vgs() {
        let d = nfet(300.0);
        let mut last = -1.0;
        for i in 0..=70 {
            let vgs = i as f64 * 0.01;
            let ids = d.ids(vgs, 0.7);
            assert!(ids > last, "non-monotone at vgs = {vgs}");
            last = ids;
        }
    }

    #[test]
    fn ids_monotone_in_vds() {
        let d = nfet(300.0);
        let mut last = -1.0;
        for i in 0..=75 {
            let vds = i as f64 * 0.01;
            let ids = d.ids(0.7, vds);
            assert!(ids >= last, "non-monotone at vds = {vds}");
            last = ids;
        }
    }

    #[test]
    fn on_current_magnitude_is_plausible() {
        // 5-nm-class fins carry tens of microamps at nominal bias.
        let ion = nfet(300.0).ids(0.7, 0.7);
        assert!(ion > 15e-6 && ion < 150e-6, "Ion = {ion:.3e} A/fin");
    }

    #[test]
    fn cryo_collapses_leakage_but_not_drive() {
        let d300 = nfet(300.0);
        let d10 = nfet(10.0);
        let ioff300 = d300.ids(0.0, 0.7);
        let ioff10 = d10.ids(0.0, 0.7);
        assert!(
            ioff300 / ioff10 > 1e3,
            "Ioff should drop by orders of magnitude: {ioff300:.3e} -> {ioff10:.3e}"
        );
        let ion300 = d300.ids(0.7, 0.7);
        let ion10 = d10.ids(0.7, 0.7);
        let ratio = ion10 / ion300;
        assert!(
            (0.80..=1.15).contains(&ratio),
            "Ion should be only slightly affected, ratio = {ratio:.3}"
        );
    }

    #[test]
    fn cryo_raises_vth() {
        let d300 = nfet(300.0);
        let d10 = nfet(10.0);
        let increase = d10.vth() / d300.vth();
        assert!(
            (1.45..1.70).contains(&increase),
            "paper reports +47 % for n-FinFET, got {increase:.3}"
        );
        let p_increase = pfet(10.0).vth() / pfet(300.0).vth();
        assert!(
            (1.40..1.65).contains(&p_increase),
            "paper reports +39 % for p-FinFET, got {p_increase:.3}"
        );
    }

    #[test]
    fn pfet_sign_convention() {
        let d = pfet(300.0);
        let on = d.ids(-0.7, -0.7);
        assert!(on < 0.0, "p-FinFET on-current flows out of the drain");
        assert!(on.abs() > 5e-6);
        assert!(d.ids(0.0, -0.7).abs() < 1e-6, "off device leaks little");
    }

    #[test]
    fn source_drain_symmetry() {
        // Swapping source and drain mirrors the current.
        let d = nfet(300.0);
        let fwd = d.ids(0.5, 0.3);
        // With terminals swapped: vgs' = vgs - vds, vds' = -vds.
        let rev = d.ids(0.5 - 0.3, -0.3);
        assert!(
            (fwd + rev).abs() < 1e-9 * (fwd.abs() + 1.0),
            "fwd {fwd:e} rev {rev:e}"
        );
    }

    #[test]
    fn gm_and_gds_positive_in_on_state() {
        let d = nfet(300.0);
        assert!(d.gm(0.5, 0.7) > 0.0);
        assert!(d.gds(0.7, 0.35) > 0.0);
    }

    #[test]
    fn capacitances_scale_with_fins() {
        let card = ModelCard::nominal(Polarity::N);
        let one = FinFet::new(&card, 300.0, 1);
        let three = FinFet::new(&card, 300.0, 3);
        assert!((three.cgg() - 3.0 * one.cgg()).abs() < 1e-21);
        assert!((three.cgs() - 3.0 * one.cgs()).abs() < 1e-21);
        assert!((three.cgd() - 3.0 * one.cgd()).abs() < 1e-21);
        assert!((three.cdb() - 3.0 * one.cdb()).abs() < 1e-21);
    }

    #[test]
    fn current_scales_with_fins() {
        let card = ModelCard::nominal(Polarity::N);
        let one = FinFet::new(&card, 300.0, 1);
        let four = FinFet::new(&card, 300.0, 4);
        let r = four.ids(0.7, 0.7) / one.ids(0.7, 0.7);
        // Series resistance per fin also scales, so the ratio is exact.
        assert!((r - 4.0).abs() < 1e-6, "ratio = {r}");
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn zero_fins_panics() {
        let _ = FinFet::new(&ModelCard::nominal(Polarity::N), 300.0, 0);
    }

    #[test]
    fn subthreshold_swing_tightens_when_cold() {
        use crate::metrics::IvCurve;
        // Extract SS from sweeps over a current window safely above the
        // leakage floor at both temperatures.
        let c300 = IvCurve::sweep(&nfet(300.0), 0.05, 0.7, 280);
        let c10 = IvCurve::sweep(&nfet(10.0), 0.05, 0.7, 280);
        let ss300 = c300.subthreshold_swing(3e-11, 3e-8).unwrap();
        let ss10 = c10.subthreshold_swing(3e-11, 3e-8).unwrap();
        assert!(
            ss300 > 55.0 && ss300 < 85.0,
            "SS(300 K) = {ss300:.1} mV/dec"
        );
        assert!(ss10 > 5.0 && ss10 < 25.0, "SS(10 K) = {ss10:.1} mV/dec");
    }
}
